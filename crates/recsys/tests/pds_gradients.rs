//! The load-bearing correctness test of the whole reproduction: analytic
//! gradients of the attack losses with respect to the binarized importance
//! vector — computed by backpropagation through the recorded, unrolled PDS
//! training run — must match central finite differences of the same
//! quantity, for every action category.

use msopds_autograd::ndiff::numeric_grad;
use msopds_autograd::{Tape, Tensor};
use msopds_recdata::{DatasetSpec, PoisonAction};
use msopds_recsys::losses::{ca_loss, ia_loss};
use msopds_recsys::pds::{build_pds, PdsConfig, PlayerInput};

fn micro() -> msopds_recdata::Dataset {
    DatasetSpec::micro().generate(17)
}

fn cfg() -> PdsConfig {
    PdsConfig { inner_steps: 3, ..Default::default() }
}

/// Evaluates the IA loss at a given X̂ value vector (fresh tape each call).
fn ia_at(
    data: &msopds_recdata::Dataset,
    candidates: &[PoisonAction],
    xhat: &Tensor,
    users: &[usize],
    target: usize,
) -> f64 {
    let tape = Tape::new();
    let pds = build_pds(&tape, data, &[PlayerInput { candidates, xhat: xhat.clone() }], &cfg());
    ia_loss(&pds.scores(), users, target).item()
}

#[test]
fn pds_gradient_matches_finite_difference_for_ratings() {
    let data = micro();
    let users: Vec<usize> = (0..8).collect();
    let target = 4usize;
    let candidates: Vec<PoisonAction> = (0..6u32)
        .map(|u| PoisonAction::Rating { user: u, item: target as u32, value: 5.0 })
        .collect();
    let x0 = Tensor::from_vec(vec![0.5, 0.0, 1.0, 0.25, 0.75, 0.0], &[6]);

    let tape = Tape::new();
    let pds = build_pds(
        &tape,
        &data,
        &[PlayerInput { candidates: &candidates, xhat: x0.clone() }],
        &cfg(),
    );
    let loss = ia_loss(&pds.scores(), &users, target);
    let analytic = tape.grad(loss, &[pds.xhats[0]]).remove(0);
    let numeric = numeric_grad(|x| ia_at(&data, &candidates, x, &users, target), &x0, 1e-4);

    for i in 0..6 {
        let (a, n) = (analytic.get(i), numeric.get(i));
        let denom = 1.0f64.max(a.abs()).max(n.abs());
        assert!(
            ((a - n) / denom).abs() < 1e-3,
            "rating candidate {i}: analytic {a} vs numeric {n}"
        );
    }
}

#[test]
fn pds_gradient_matches_finite_difference_for_edges() {
    let data = micro();
    let users: Vec<usize> = (0..8).collect();
    let target = 7usize;
    // Pick candidate edges that do not already exist.
    let mut social = Vec::new();
    'outer: for a in 0..data.n_users() {
        for b in (a + 1)..data.n_users() {
            if !data.social.has_edge(a, b) {
                social.push(PoisonAction::SocialEdge { a: a as u32, b: b as u32 });
                if social.len() == 2 {
                    break 'outer;
                }
            }
        }
    }
    let mut candidates = social;
    for i in [1u32, 2, 3] {
        if !data.item_graph.has_edge(i as usize, target) {
            candidates.push(PoisonAction::ItemEdge { a: i, b: target as u32 });
        }
    }
    let k = candidates.len();
    assert!(k >= 4, "need edge candidates for the test");
    let x0 = Tensor::from_vec((0..k).map(|i| 0.2 * i as f64).collect(), &[k]);

    let tape = Tape::new();
    let pds = build_pds(
        &tape,
        &data,
        &[PlayerInput { candidates: &candidates, xhat: x0.clone() }],
        &cfg(),
    );
    let loss = ia_loss(&pds.scores(), &users, target);
    let analytic = tape.grad(loss, &[pds.xhats[0]]).remove(0);
    let numeric = numeric_grad(|x| ia_at(&data, &candidates, x, &users, target), &x0, 1e-4);

    for (i, candidate) in candidates.iter().enumerate() {
        let (a, n) = (analytic.get(i), numeric.get(i));
        let denom = 1.0f64.max(a.abs()).max(n.abs());
        assert!(
            ((a - n) / denom).abs() < 1e-3,
            "edge candidate {i} ({candidate:?}): analytic {a} vs numeric {n}"
        );
    }
}

#[test]
fn ca_loss_gradient_matches_finite_difference_mixed_capacity() {
    let data = micro();
    let audience: Vec<usize> = (3..9).collect();
    let competing: Vec<usize> = vec![2, 4, 6];
    let target = 2usize;
    let mut candidates = vec![
        PoisonAction::Rating { user: 3, item: target as u32, value: 5.0 },
        PoisonAction::Rating { user: 4, item: target as u32, value: 5.0 },
    ];
    'outer: for a in 0..data.n_users() {
        for b in (a + 1)..data.n_users() {
            if !data.social.has_edge(a, b) {
                candidates.push(PoisonAction::SocialEdge { a: a as u32, b: b as u32 });
                break 'outer;
            }
        }
    }
    let k = candidates.len();
    let x0 = Tensor::from_vec(vec![0.4; k], &[k]);

    let eval = |x: &Tensor| -> f64 {
        let tape = Tape::new();
        let pds = build_pds(
            &tape,
            &data,
            &[PlayerInput { candidates: &candidates, xhat: x.clone() }],
            &cfg(),
        );
        ca_loss(&pds.scores(), &audience, target, &competing).item()
    };

    let tape = Tape::new();
    let pds = build_pds(
        &tape,
        &data,
        &[PlayerInput { candidates: &candidates, xhat: x0.clone() }],
        &cfg(),
    );
    let loss = ca_loss(&pds.scores(), &audience, target, &competing);
    let analytic = tape.grad(loss, &[pds.xhats[0]]).remove(0);
    let numeric = numeric_grad(eval, &x0, 1e-4);

    for i in 0..k {
        let (a, n) = (analytic.get(i), numeric.get(i));
        let denom = 1.0f64.max(a.abs()).max(n.abs());
        assert!(((a - n) / denom).abs() < 1e-3, "candidate {i}: analytic {a} vs numeric {n}");
    }
}

/// Checks the analytic gradient of the IA loss against central finite
/// differences at `x0` for the given dataset/candidates, with the standard
/// relative tolerance.
fn check_ia_gradient(
    data: &msopds_recdata::Dataset,
    candidates: &[PoisonAction],
    x0: &Tensor,
    users: &[usize],
    target: usize,
) {
    let tape = Tape::new();
    let pds = build_pds(&tape, data, &[PlayerInput { candidates, xhat: x0.clone() }], &cfg());
    let loss = ia_loss(&pds.scores(), users, target);
    let analytic = tape.grad(loss, &[pds.xhats[0]]).remove(0);
    let numeric = numeric_grad(|x| ia_at(data, candidates, x, users, target), x0, 1e-4);
    for i in 0..candidates.len() {
        let (a, n) = (analytic.get(i), numeric.get(i));
        let denom = 1.0f64.max(a.abs()).max(n.abs());
        assert!(((a - n) / denom).abs() < 1e-3, "candidate {i}: analytic {a} vs numeric {n}");
        assert!(a.is_finite(), "candidate {i}: non-finite analytic gradient {a}");
    }
}

#[test]
fn pds_gradient_handles_zero_degree_target_item() {
    // The target item has no genuine ratings and no item-graph edges, so its
    // embedding is driven purely by the injected candidates. The gradient
    // through the unrolled run must stay finite and match finite differences.
    use msopds_het_graph::CsrGraph;
    use msopds_recdata::{Dataset, Rating, RatingMatrix};

    let ratings = RatingMatrix::from_ratings(
        4,
        5,
        &[
            Rating { user: 0, item: 0, value: 4.0 },
            Rating { user: 1, item: 1, value: 2.0 },
            Rating { user: 2, item: 2, value: 5.0 },
            Rating { user: 3, item: 3, value: 3.0 },
            Rating { user: 0, item: 1, value: 1.0 },
        ],
    );
    // Item 4 is fully isolated: zero ratings, zero item-graph degree.
    let social = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
    let items = CsrGraph::from_edges(5, &[(0, 1), (1, 2)]);
    let data = Dataset::new("zero-degree", ratings, social, items);
    let target = 4usize;
    assert_eq!(data.ratings.item_degree(target), 0);

    let candidates: Vec<PoisonAction> = (0..3u32)
        .map(|u| PoisonAction::Rating { user: u, item: target as u32, value: 5.0 })
        .collect();
    let x0 = Tensor::from_vec(vec![0.6, 0.2, 0.8], &[3]);
    let users: Vec<usize> = (0..4).collect();
    check_ia_gradient(&data, &candidates, &x0, &users, target);
}

#[test]
fn pds_gradient_at_saturated_budget_boundary() {
    // X̂ = 1 everywhere: the importance vector sits exactly at the budget
    // boundary where binarization saturates every candidate. The surrogate is
    // a continuous relaxation, so the gradient must still exist and match
    // finite differences there (central differences probe 1 ± ε).
    let data = micro();
    let users: Vec<usize> = (0..8).collect();
    let target = 3usize;
    let candidates: Vec<PoisonAction> = (0..5u32)
        .map(|u| PoisonAction::Rating { user: u, item: target as u32, value: 5.0 })
        .collect();
    let x0 = Tensor::from_vec(vec![1.0; 5], &[5]);
    check_ia_gradient(&data, &candidates, &x0, &users, target);
}

#[test]
fn pds_gradient_on_single_user_graph() {
    // Degenerate social structure: one user, empty social network. The
    // convolution has nothing to propagate, but the unrolled training run and
    // its backward pass must still be well-defined.
    use msopds_het_graph::CsrGraph;
    use msopds_recdata::{Dataset, Rating, RatingMatrix};

    let ratings = RatingMatrix::from_ratings(
        1,
        4,
        &[Rating { user: 0, item: 0, value: 4.0 }, Rating { user: 0, item: 1, value: 2.0 }],
    );
    let social = CsrGraph::empty(1);
    let items = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
    let data = Dataset::new("single-user", ratings, social, items);
    let target = 3usize;

    let candidates = vec![
        PoisonAction::Rating { user: 0, item: target as u32, value: 5.0 },
        PoisonAction::ItemEdge { a: 1, b: target as u32 },
    ];
    let x0 = Tensor::from_vec(vec![0.7, 0.3], &[2]);
    check_ia_gradient(&data, &candidates, &x0, &[0], target);
}

#[test]
fn second_order_hvp_matches_finite_difference_of_pds_gradient() {
    // The exact double-backward HVP through the unrolled surrogate — the
    // quantity CG consumes in Algorithm 1 step 9 — against finite differences
    // of the first-order gradient.
    let data = micro();
    let users: Vec<usize> = (0..6).collect();
    let target = 5usize;
    let candidates: Vec<PoisonAction> = (0..4u32)
        .map(|u| PoisonAction::Rating { user: u, item: target as u32, value: 1.0 })
        .collect();
    let x0 = Tensor::from_vec(vec![0.3, 0.6, 0.1, 0.9], &[4]);
    let v = Tensor::from_vec(vec![1.0, -0.5, 0.25, -1.0], &[4]);

    // Exact.
    let tape = Tape::new();
    let pds = build_pds(
        &tape,
        &data,
        &[PlayerInput { candidates: &candidates, xhat: x0.clone() }],
        &cfg(),
    );
    let loss = ia_loss(&pds.scores(), &users, target);
    let g = tape.grad_vars(loss, &[pds.xhats[0]])[0];
    let vc = tape.constant(v.clone());
    let hv = tape.grad(g.mul(vc).sum(), &[pds.xhats[0]]).remove(0);

    // Finite difference of the gradient.
    let grad_at = |x: &Tensor| -> Tensor {
        let t = Tape::new();
        let p = build_pds(
            &t,
            &data,
            &[PlayerInput { candidates: &candidates, xhat: x.clone() }],
            &cfg(),
        );
        let l = ia_loss(&p.scores(), &users, target);
        t.grad(l, &[p.xhats[0]]).remove(0)
    };
    let hv_fd = msopds_autograd::hvp::hvp_finite_diff(grad_at, &x0, &v);

    assert!(
        hv.max_abs_diff(&hv_fd) < 1e-4,
        "exact {:?} vs finite-diff {:?}",
        hv.to_vec(),
        hv_fd.to_vec()
    );
}
