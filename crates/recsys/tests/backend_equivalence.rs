//! Dense/sparse backend equivalence at the model level: the two `GraphOps`
//! backends must agree to ≤1e-10 on everything Algorithm 1 consumes — victim
//! training trajectories, PDS surrogate losses, and first- and second-order
//! X̂ derivatives through the poisoned adjacency.
//!
//! (They cannot agree bitwise: CSR row accumulation visits addends in a
//! different order than the dense matmul's inner product.)

use msopds_autograd::hvp::hvp_exact;
use msopds_autograd::{Tape, Tensor};
use msopds_recdata::{Dataset, DatasetSpec, PoisonAction};
use msopds_recsys::pds::PlayerInput;
use msopds_recsys::pds::{build_pds, PdsConfig};
use msopds_recsys::{losses, Backend, HetRec, HetRecConfig};

const TOL: f64 = 1e-10;

fn micro() -> Dataset {
    DatasetSpec::micro().generate(11)
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

#[test]
fn hetrec_training_loss_matches_across_backends() {
    let data = micro();
    let fit = |backend: Backend| {
        let cfg =
            HetRecConfig { epochs: 25, dim: 8, attention: false, backend, ..Default::default() };
        let mut model = HetRec::new(cfg, data.n_users(), data.n_items());
        let report = model.fit(&data);
        (report.epoch_loss, model)
    };
    let (loss_d, model_d) = fit(Backend::Dense);
    let (loss_s, model_s) = fit(Backend::Sparse);
    assert!(
        max_abs_diff(&loss_d, &loss_s) < TOL,
        "training losses diverged: {:e}",
        max_abs_diff(&loss_d, &loss_s)
    );
    for u in 0..4 {
        for i in 0..4 {
            assert!((model_d.predict(u, i) - model_s.predict(u, i)).abs() < TOL);
        }
    }
}

#[test]
fn hetrec_attention_path_is_backend_invariant() {
    // Attention materializes densely under every backend, so the trajectories
    // are *bit*-identical there.
    let data = micro();
    let fit = |backend: Backend| {
        let cfg =
            HetRecConfig { epochs: 10, dim: 8, attention: true, backend, ..Default::default() };
        let mut model = HetRec::new(cfg, data.n_users(), data.n_items());
        model.fit(&data).epoch_loss
    };
    assert_eq!(fit(Backend::Dense), fit(Backend::Sparse));
}

/// Mixed candidate set exercising every patch path: social edges, item edges,
/// and X̂-weighted ratings.
fn candidates(data: &Dataset) -> Vec<PoisonAction> {
    let mut c = Vec::new();
    let mut found = 0;
    'social: for a in 0..data.n_users() {
        for b in (a + 1)..data.n_users() {
            if !data.social.has_edge(a, b) {
                c.push(PoisonAction::SocialEdge { a: a as u32, b: b as u32 });
                found += 1;
                if found == 2 {
                    break 'social;
                }
            }
        }
    }
    'item: for a in 0..data.n_items() {
        for b in (a + 1)..data.n_items() {
            if !data.item_graph.has_edge(a, b) {
                c.push(PoisonAction::ItemEdge { a: a as u32, b: b as u32 });
                break 'item;
            }
        }
    }
    for u in 0..4u32 {
        c.push(PoisonAction::Rating { user: u, item: 2, value: 5.0 });
    }
    c
}

fn pds_cfg(backend: Backend) -> PdsConfig {
    PdsConfig { inner_steps: 4, backend, ..Default::default() }
}

#[test]
fn pds_losses_and_gradients_match_across_backends() {
    let data = micro();
    let cands = candidates(&data);
    let xhat0 = Tensor::from_vec(
        (0..cands.len()).map(|i| if i % 2 == 0 { 1.0 } else { 0.0 }).collect(),
        &[cands.len()],
    );
    let users: Vec<usize> = (0..8).collect();

    let run = |backend: Backend| {
        let tape = Tape::new();
        let build = build_pds(
            &tape,
            &data,
            &[PlayerInput { candidates: &cands, xhat: xhat0.clone() }],
            &pds_cfg(backend),
        );
        let loss = losses::ia_loss(&build.scores(), &users, 2);
        let grad = tape.grad(loss, &[build.xhats[0]]).remove(0);
        (build.inner_losses.clone(), build.user_final.value().to_vec(), grad.to_vec())
    };
    let (il_d, uf_d, g_d) = run(Backend::Dense);
    let (il_s, uf_s, g_s) = run(Backend::Sparse);
    assert!(max_abs_diff(&il_d, &il_s) < TOL, "inner losses: {:e}", max_abs_diff(&il_d, &il_s));
    assert!(max_abs_diff(&uf_d, &uf_s) < TOL, "final embeddings: {:e}", max_abs_diff(&uf_d, &uf_s));
    assert!(max_abs_diff(&g_d, &g_s) < TOL, "X̂ gradients: {:e}", max_abs_diff(&g_d, &g_s));
    assert!(g_s.iter().any(|v| v.abs() > 1e-12), "gradient must be non-trivial");
}

#[test]
fn pds_hvp_matches_across_backends() {
    // Second order: the exact HVP of the adversarial loss w.r.t. X̂ — the
    // quantity the CG Stackelberg solve consumes — must agree too.
    let data = micro();
    let cands = candidates(&data);
    let xhat0 = Tensor::from_vec(vec![0.5; cands.len()], &[cands.len()]);
    let v = Tensor::from_vec(
        (0..cands.len()).map(|i| ((i as f64) * 0.7).sin()).collect(),
        &[cands.len()],
    );
    let users: Vec<usize> = (0..8).collect();

    let run = |backend: Backend| {
        let tape = Tape::new();
        let build = build_pds(
            &tape,
            &data,
            &[PlayerInput { candidates: &cands, xhat: xhat0.clone() }],
            &pds_cfg(backend),
        );
        let loss = losses::ia_loss(&build.scores(), &users, 2);
        hvp_exact(&tape, loss, build.xhats[0], &v).to_vec()
    };
    let hv_d = run(Backend::Dense);
    let hv_s = run(Backend::Sparse);
    assert!(max_abs_diff(&hv_d, &hv_s) < TOL, "HVPs diverged: {:e}", max_abs_diff(&hv_d, &hv_s));
    assert!(hv_s.iter().any(|x| x.abs() > 1e-12), "HVP must be non-trivial");
}
