//! Property tests for the graph substrate.

use msopds_het_graph::{build_item_graph, graph_stats, CsrGraph};
use proptest::prelude::*;

fn edge_list(n: usize, max_edges: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..n, 0..n), 0..max_edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adjacency_is_symmetric(edges in edge_list(20, 60)) {
        let g = CsrGraph::from_edges(20, &edges);
        for a in 0..20 {
            for b in g.neighbors(a) {
                prop_assert!(g.has_edge(b, a), "asymmetry between {a} and {b}");
            }
        }
    }

    #[test]
    fn no_self_loops_and_degree_sum_is_twice_edges(edges in edge_list(15, 50)) {
        let g = CsrGraph::from_edges(15, &edges);
        let degree_sum: usize = (0..15).map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
        for u in 0..15 {
            prop_assert!(!g.has_edge(u, u));
        }
    }

    #[test]
    fn edges_roundtrip_is_identity(edges in edge_list(12, 40)) {
        let g = CsrGraph::from_edges(12, &edges);
        let rebuilt = CsrGraph::from_edges(12, &g.edges());
        prop_assert_eq!(g, rebuilt);
    }

    #[test]
    fn with_edges_is_superset(edges in edge_list(10, 20), extra in edge_list(10, 10)) {
        let g = CsrGraph::from_edges(10, &edges);
        let g2 = g.with_edges(10, &extra);
        for (a, b) in g.edges() {
            prop_assert!(g2.has_edge(a, b), "edge ({a},{b}) lost");
        }
        for &(a, b) in &extra {
            if a != b {
                prop_assert!(g2.has_edge(a, b), "extra edge ({a},{b}) missing");
            }
        }
        prop_assert!(g2.num_edges() >= g.num_edges());
    }

    #[test]
    fn components_never_increase_when_adding_edges(
        edges in edge_list(12, 15),
        extra in edge_list(12, 5),
    ) {
        let g = CsrGraph::from_edges(12, &edges);
        let g2 = g.with_edges(12, &extra);
        prop_assert!(g2.connected_components() <= g.connected_components());
    }

    #[test]
    fn stats_are_internally_consistent(edges in edge_list(18, 70)) {
        let g = CsrGraph::from_edges(18, &edges);
        let s = graph_stats(&g);
        prop_assert_eq!(s.nodes, 18);
        prop_assert_eq!(s.edges, g.num_edges());
        prop_assert!(s.mean_degree <= s.max_degree as f64 + 1e-12);
        prop_assert!((0.0..=1.0).contains(&s.isolated_fraction));
        prop_assert!((0.0..=1.0).contains(&s.clustering));
    }

    #[test]
    fn item_graph_threshold_is_monotone(
        raters in proptest::collection::vec(
            proptest::collection::btree_set(0usize..10, 0..6), 2..8)
    ) {
        let lists: Vec<Vec<usize>> =
            raters.iter().map(|s| s.iter().copied().collect()).collect();
        let loose = build_item_graph(10, &lists, 0.3);
        let strict = build_item_graph(10, &lists, 0.7);
        // A stricter threshold can only remove edges.
        for (a, b) in strict.edges() {
            prop_assert!(loose.has_edge(a, b));
        }
    }
}
