//! # msopds-het-graph
//!
//! Graph substrate for the heterogeneous recommender reproduction: CSR
//! adjacency storage for the social network 𝒢ᵤ and item graph 𝒢ᵢ of
//! Definition 1, co-rating item-graph construction (§VI-A.1), synthetic
//! social-network generators calibrated to the paper's datasets, and the
//! statistics used to validate them.
//!
//! ```
//! use msopds_het_graph::{CsrGraph, generate};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let social = generate::barabasi_albert(100, 3, &mut rng);
//! assert_eq!(social.num_nodes(), 100);
//! let poisoned = social.with_edges(100, &[(0, 99)]);
//! assert!(poisoned.has_edge(0, 99));
//! ```

#![warn(missing_docs)]

pub mod csr;
pub mod generate;
pub mod item_graph;
pub mod stats;

pub use csr::{CsrBuilder, CsrGraph};
pub use item_graph::build_item_graph;
pub use stats::{degree_histogram, graph_stats, transitivity, GraphStats};
