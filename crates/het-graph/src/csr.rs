//! Compressed sparse row (CSR) storage for undirected graphs.

use serde::{Deserialize, Serialize};

/// An undirected graph in CSR form with sorted neighbor lists.
///
/// Node ids are dense `0..n`. Self-loops and parallel edges are rejected at
/// construction. The structure is immutable; use [`CsrGraph::with_edges`] to
/// derive a graph with extra edges (how poisoned graphs 𝒢̂ are produced).
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl CsrGraph {
    /// Builds a graph on `n` nodes from an undirected edge list.
    ///
    /// Duplicate edges (in either orientation) and self-loops are ignored.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of bounds for {n} nodes");
            if a == b {
                continue;
            }
            adj[a].push(b as u32);
            adj[b].push(a as u32);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len());
        }
        Self { offsets, neighbors }
    }

    /// An edgeless graph on `n` nodes.
    pub fn empty(n: usize) -> Self {
        Self { offsets: vec![0; n + 1], neighbors: Vec::new() }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Sorted neighbor list of `u`.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.neighbors[self.offsets[u]..self.offsets[u + 1]].iter().map(|&v| v as usize)
    }

    /// Degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Whether the undirected edge `(a, b)` exists.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        let range = &self.neighbors[self.offsets[a]..self.offsets[a + 1]];
        range.binary_search(&(b as u32)).is_ok()
    }

    /// All undirected edges, each reported once with `a < b`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.num_edges());
        for a in 0..self.num_nodes() {
            for b in self.neighbors(a) {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// A new graph with `extra` edges merged in (duplicates ignored) and the
    /// node count grown to `n` if larger than the current count.
    pub fn with_edges(&self, n: usize, extra: &[(usize, usize)]) -> Self {
        let n = n.max(self.num_nodes());
        let mut all = self.edges();
        all.extend_from_slice(extra);
        Self::from_edges(n, &all)
    }

    /// Mean degree across nodes.
    pub fn mean_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            return 0.0;
        }
        self.neighbors.len() as f64 / self.num_nodes() as f64
    }

    /// Resident bytes of the CSR arrays (offsets + neighbor list) — the
    /// memory footprint the scale bench tracks for million-user worlds.
    pub fn resident_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * std::mem::size_of::<u32>()
    }

    /// A 64-bit structural fingerprint (FNV-1a over the CSR arrays).
    ///
    /// Two graphs with the same fingerprint are, for caching purposes, the
    /// same graph: the CSR form is canonical (sorted, deduplicated neighbor
    /// lists), so equal structures always hash equally, and a 64-bit digest
    /// makes accidental collisions negligible at this workspace's cache sizes.
    /// Used to key derived-tensor caches (see `msopds-recsys::convolve`).
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |x: u64| {
            for byte in x.to_le_bytes() {
                h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.offsets.len() as u64);
        for &o in &self.offsets {
            eat(o as u64);
        }
        for &v in &self.neighbors {
            eat(u64::from(v));
        }
        h
    }

    /// Number of connected components (isolated nodes count as components).
    pub fn connected_components(&self) -> usize {
        let n = self.num_nodes();
        let mut seen = vec![false; n];
        let mut components = 0;
        let mut stack = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            components += 1;
            seen[start] = true;
            stack.push(start);
            while let Some(u) = stack.pop() {
                for v in self.neighbors(u) {
                    if !seen[v] {
                        seen[v] = true;
                        stack.push(v);
                    }
                }
            }
        }
        components
    }
}

/// Streaming construction of a [`CsrGraph`] without per-node `Vec`s.
///
/// [`CsrGraph::from_edges`] allocates one `Vec` per node — fine at paper
/// scale, ruinous at a million nodes (allocator overhead and pointer-chasing
/// dominate). The builder instead buffers flat directed half-edges, then
/// finishes with a counting sort into the canonical CSR arrays: O(E) memory,
/// two linear passes, no per-node allocation. Edges may arrive in any order
/// and any chunking; the canonical form (sorted, deduplicated neighbor
/// lists) makes the result independent of arrival order.
#[derive(Clone, Debug)]
pub struct CsrBuilder {
    n: usize,
    /// Directed half-edges, two per undirected edge.
    half: Vec<(u32, u32)>,
}

impl CsrBuilder {
    /// A builder for a graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize + 1, "CsrBuilder caps nodes at u32 range");
        Self { n, half: Vec::new() }
    }

    /// Pre-reserves space for `edges` undirected edges.
    pub fn with_capacity(n: usize, edges: usize) -> Self {
        let mut b = Self::new(n);
        b.half.reserve(edges * 2);
        b
    }

    /// Adds one undirected edge. Self-loops are ignored; duplicates are
    /// deduplicated at [`CsrBuilder::finish`].
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        let n = self.n;
        assert!(a < n && b < n, "edge ({a},{b}) out of bounds for {n} nodes");
        if a == b {
            return;
        }
        self.half.push((a as u32, b as u32));
        self.half.push((b as u32, a as u32));
    }

    /// Adds a chunk of undirected edges.
    pub fn add_edges<I: IntoIterator<Item = (usize, usize)>>(&mut self, edges: I) {
        for (a, b) in edges {
            self.add_edge(a, b);
        }
    }

    /// Undirected edges buffered so far (before dedup).
    pub fn buffered_edges(&self) -> usize {
        self.half.len() / 2
    }

    /// Counting-sorts the buffered half-edges into a canonical [`CsrGraph`].
    pub fn finish(self) -> CsrGraph {
        let n = self.n;
        let mut offsets = vec![0usize; n + 1];
        for &(a, _) in &self.half {
            offsets[a as usize + 1] += 1;
        }
        for i in 0..n {
            let (lo, hi) = (offsets[i], offsets[i + 1]);
            offsets[i + 1] = lo + hi;
        }
        let mut neighbors = vec![0u32; self.half.len()];
        let mut next = offsets[..n].to_vec();
        for &(a, b) in &self.half {
            let slot = next[a as usize];
            next[a as usize] += 1;
            neighbors[slot] = b;
        }
        drop(self.half);
        // Sort + dedup each row in place, compacting left. The write cursor
        // never passes a row's read start, so the copy is safe.
        let mut write = 0usize;
        let mut row_start = 0usize;
        for u in 0..n {
            let row_end = offsets[u + 1];
            neighbors[row_start..row_end].sort_unstable();
            let mut prev: Option<u32> = None;
            for k in row_start..row_end {
                let v = neighbors[k];
                if prev != Some(v) {
                    neighbors[write] = v;
                    write += 1;
                    prev = Some(v);
                }
            }
            offsets[u + 1] = write;
            row_start = row_end;
        }
        neighbors.truncate(write);
        neighbors.shrink_to_fit();
        CsrGraph { offsets, neighbors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_basics() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert!(g.has_edge(0, 2) && g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn edges_roundtrip() {
        let edges = vec![(0, 3), (1, 2), (0, 1)];
        let g = CsrGraph::from_edges(4, &edges);
        let mut got = g.edges();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1), (0, 3), (1, 2)]);
        assert_eq!(CsrGraph::from_edges(4, &got), g);
    }

    #[test]
    fn with_edges_merges_and_grows() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let g2 = g.with_edges(5, &[(0, 1), (3, 4)]);
        assert_eq!(g2.num_nodes(), 5);
        assert_eq!(g2.num_edges(), 2);
        assert!(g2.has_edge(3, 4));
        // Original untouched.
        assert_eq!(g.num_nodes(), 3);
    }

    #[test]
    fn components() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(g.connected_components(), 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(CsrGraph::empty(4).connected_components(), 4);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(0);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.mean_degree(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_edge_panics() {
        let _ = CsrGraph::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn builder_matches_from_edges() {
        let edges = vec![(0, 3), (1, 2), (0, 1), (1, 0), (2, 2), (4, 0), (0, 4)];
        let reference = CsrGraph::from_edges(5, &edges);
        let mut b = CsrBuilder::with_capacity(5, edges.len());
        b.add_edges(edges.iter().copied());
        assert_eq!(b.finish(), reference);
        // Arrival order and chunking do not matter: feed reversed, in chunks.
        let mut b2 = CsrBuilder::new(5);
        for chunk in edges.iter().rev().collect::<Vec<_>>().chunks(2) {
            b2.add_edges(chunk.iter().map(|&&e| e));
        }
        assert_eq!(b2.finish(), reference);
    }

    #[test]
    fn builder_empty_and_isolated() {
        assert_eq!(CsrBuilder::new(0).finish(), CsrGraph::empty(0));
        let g = CsrBuilder::new(4).finish();
        assert_eq!(g, CsrGraph::empty(4));
        assert!(g.resident_bytes() >= 5 * std::mem::size_of::<usize>());
    }

    #[test]
    fn fingerprint_tracks_structure() {
        let g1 = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let g2 = CsrGraph::from_edges(3, &[(1, 2), (0, 1), (1, 0)]); // same graph
        let g3 = CsrGraph::from_edges(3, &[(0, 1), (0, 2)]);
        let g4 = CsrGraph::from_edges(4, &[(0, 1), (1, 2)]); // extra isolated node
        assert_eq!(g1.fingerprint(), g2.fingerprint());
        assert_ne!(g1.fingerprint(), g3.fingerprint());
        assert_ne!(g1.fingerprint(), g4.fingerprint());
        assert_ne!(CsrGraph::empty(2).fingerprint(), CsrGraph::empty(3).fingerprint());
    }
}
