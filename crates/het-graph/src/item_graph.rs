//! Item-graph construction from co-rating patterns.
//!
//! Following §VI-A.1 of the paper (after ConsisRec [12]): *"the item graph
//! 𝒢ᵢ is created by connecting items that share over 50 % of users that rated
//! them in the rating record."* We use the overlap coefficient
//! `|raters(i) ∩ raters(j)| / min(|raters(i)|, |raters(j)|)` and connect pairs
//! strictly above the threshold.

use crate::csr::CsrGraph;

/// Builds the item graph from per-item sorted rater lists.
///
/// `raters[i]` must be the strictly-increasing list of user ids that rated
/// item `i`. Items with no raters get no edges. Pairs are connected when
/// their rater-overlap coefficient exceeds `threshold` (the paper uses 0.5).
///
/// Candidate pairs are enumerated through an inverted user→items index, so
/// runtime is proportional to the co-rating mass rather than to `|I|²`.
pub fn build_item_graph(n_users: usize, raters: &[Vec<usize>], threshold: f64) -> CsrGraph {
    let n_items = raters.len();
    for list in raters {
        debug_assert!(list.windows(2).all(|w| w[0] < w[1]), "rater lists must be sorted+unique");
    }
    // Inverted index: user -> items rated.
    let mut by_user: Vec<Vec<u32>> = vec![Vec::new(); n_users];
    for (item, list) in raters.iter().enumerate() {
        for &u in list {
            assert!(u < n_users, "user id {u} out of range ({n_users} users)");
            by_user[u].push(item as u32);
        }
    }
    // Count co-raters per item pair (i < j).
    let mut counts: std::collections::HashMap<(u32, u32), u32> = std::collections::HashMap::new();
    for items in &by_user {
        for (a_pos, &a) in items.iter().enumerate() {
            for &b in &items[a_pos + 1..] {
                let key = if a < b { (a, b) } else { (b, a) };
                *counts.entry(key).or_insert(0) += 1;
            }
        }
    }
    let mut edges = Vec::new();
    for (&(a, b), &shared) in &counts {
        let (ra, rb) = (raters[a as usize].len(), raters[b as usize].len());
        let denom = ra.min(rb) as f64;
        if denom > 0.0 && shared as f64 / denom > threshold {
            edges.push((a as usize, b as usize));
        }
    }
    CsrGraph::from_edges(n_items, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connects_items_with_shared_raters() {
        // Items 0 and 1 share both raters; item 2 shares none.
        let raters = vec![vec![0, 1], vec![0, 1, 2], vec![3]];
        let g = build_item_graph(4, &raters, 0.5);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 2));
    }

    #[test]
    fn threshold_is_strict() {
        // Overlap coefficient exactly 0.5: must NOT connect at threshold 0.5.
        let raters = vec![vec![0, 1], vec![1, 2]];
        let g = build_item_graph(3, &raters, 0.5);
        assert!(!g.has_edge(0, 1));
        let g2 = build_item_graph(3, &raters, 0.49);
        assert!(g2.has_edge(0, 1));
    }

    #[test]
    fn unrated_items_are_isolated() {
        let raters = vec![vec![], vec![0], vec![0]];
        let g = build_item_graph(1, &raters, 0.4);
        assert_eq!(g.degree(0), 0);
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn overlap_uses_smaller_set() {
        // Item 0 rated by {0..9}, item 1 rated by {0,1}: overlap = 2/2 = 1.
        let raters = vec![(0..10).collect::<Vec<_>>(), vec![0, 1]];
        let g = build_item_graph(10, &raters, 0.5);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn empty_input() {
        let g = build_item_graph(0, &[], 0.5);
        assert_eq!(g.num_nodes(), 0);
    }
}
