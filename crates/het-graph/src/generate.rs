//! Random social-network generators.
//!
//! The paper's datasets (Ciao, Epinions, LibraryThing) come with trust/social
//! networks exhibiting heavy-tailed degree distributions. The synthetic
//! substitutes here provide the same qualitative structure:
//! Barabási–Albert preferential attachment (heavy tail), Watts–Strogatz
//! (high clustering), and Erdős–Rényi (baseline control).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::csr::CsrGraph;

/// Barabási–Albert preferential attachment: each new node attaches to `m`
/// existing nodes with probability proportional to degree.
///
/// Produces the heavy-tailed degree distribution characteristic of social
/// trust networks.
///
/// # Panics
/// Panics if `m == 0` or `n < m + 1`.
pub fn barabasi_albert<R: Rng>(n: usize, m: usize, rng: &mut R) -> CsrGraph {
    assert!(m > 0, "attachment count m must be positive");
    assert!(n > m, "need more than m = {m} nodes, got {n}");
    let mut edges: Vec<(usize, usize)> = Vec::new();
    // Repeated-node list: sampling uniformly from it is degree-proportional.
    let mut targets: Vec<usize> = (0..=m).collect();
    // Seed clique on the first m+1 nodes.
    for a in 0..=m {
        for b in (a + 1)..=m {
            edges.push((a, b));
        }
    }
    let mut pool: Vec<usize> = Vec::new();
    for a in 0..=m {
        for _ in 0..m {
            pool.push(a);
        }
    }
    for v in (m + 1)..n {
        targets.clear();
        while targets.len() < m {
            let candidate = *pool.choose(rng).expect("pool is non-empty");
            if !targets.contains(&candidate) {
                targets.push(candidate);
            }
        }
        for &t in &targets {
            edges.push((v, t));
            pool.push(v);
            pool.push(t);
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbors per
/// side and rewiring probability `beta`.
///
/// # Panics
/// Panics if `k == 0` or `2k >= n`.
pub fn watts_strogatz<R: Rng>(n: usize, k: usize, beta: f64, rng: &mut R) -> CsrGraph {
    assert!(k > 0 && 2 * k < n, "watts_strogatz needs 0 < 2k < n (k={k}, n={n})");
    let mut edges = Vec::with_capacity(n * k);
    for u in 0..n {
        for d in 1..=k {
            let mut v = (u + d) % n;
            if rng.gen_bool(beta) {
                // Rewire to a uniform non-self target; collisions are dropped
                // by CSR dedup, slightly lowering the edge count, as in the
                // standard formulation.
                v = rng.gen_range(0..n);
                if v == u {
                    v = (v + 1) % n;
                }
            }
            edges.push((u, v));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Erdős–Rényi `G(n, p)` random graph.
pub fn erdos_renyi<R: Rng>(n: usize, p: f64, rng: &mut R) -> CsrGraph {
    let mut edges = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(p) {
                edges.push((a, b));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Draws a Barabási–Albert graph whose expected edge count approximates
/// `target_edges`, by choosing the attachment parameter `m ≈ E/n`.
pub fn social_network_like<R: Rng>(n: usize, target_edges: usize, rng: &mut R) -> CsrGraph {
    let m = attachment_m(n, target_edges);
    barabasi_albert(n, m, rng)
}

/// The attachment parameter `m ≈ E/n` shared by [`social_network_like`] and
/// its streaming counterpart.
pub fn attachment_m(n: usize, target_edges: usize) -> usize {
    let m = (target_edges as f64 / n as f64).round().max(1.0) as usize;
    m.min(n.saturating_sub(2)).max(1)
}

/// splitmix64 — the keyed hash behind the streaming generators. Finalizing
/// a composed key through two rounds decorrelates nearby `(v, j)` pairs.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` keyed on `(seed, v, j)` — no sequential RNG
/// state, so any caller computing the same key gets the same draw.
fn keyed_unit(seed: u64, v: u64, j: u64) -> f64 {
    let r = splitmix64(splitmix64(seed ^ v.rotate_left(32)) ^ j);
    (r >> 11) as f64 / (1u64 << 53) as f64
}

/// The attachment targets of node `v` in the *streaming* heavy-tailed
/// generator: `m` distinct nodes `< v`, each drawn as `⌊v·r²⌋` with `r`
/// keyed on `(seed, v, j)`.
///
/// The `r²` bias reproduces Barabási–Albert's expected degree profile
/// (`deg(u) ∝ √(n/u)`) without the sequential repeated-node pool, so a
/// node's edges depend only on `(seed, v)` — **chunk-size invariant** by
/// construction: generating rows `0..n` in one pass or in any partition of
/// row ranges yields the identical edge set.
///
/// # Panics
/// Panics unless `m < v` (earlier nodes form the seed clique).
pub fn attachment_targets(seed: u64, m: usize, v: usize) -> Vec<usize> {
    assert!(v > m, "node {v} is inside the seed clique (m = {m})");
    let mut targets = Vec::with_capacity(m);
    let mut j = 0u64;
    let retry_cap = 64 * (m as u64 + 1);
    while targets.len() < m {
        if j >= retry_cap {
            // Pathologically collided small-v draw: fill from the lowest
            // free ids (still a pure function of (seed, v)).
            for u in 0..v {
                if !targets.contains(&u) {
                    targets.push(u);
                    if targets.len() == m {
                        break;
                    }
                }
            }
            break;
        }
        let r = keyed_unit(seed, v as u64, j);
        let u = (((r * r) * v as f64) as usize).min(v - 1);
        if !targets.contains(&u) {
            targets.push(u);
        }
        j += 1;
    }
    targets
}

/// Appends the edges *owned by* nodes `range` of the streaming attachment
/// graph on `n` nodes: seed-clique edges `(a, b), a < b ≤ m` belong to `b`,
/// and each later node `v` owns its `m` attachment edges. Every edge is
/// owned by exactly one node, so emitting all ranges of any partition of
/// `0..n` produces the full graph exactly once.
pub fn streaming_attachment_chunk(
    n: usize,
    m: usize,
    seed: u64,
    range: std::ops::Range<usize>,
    out: &mut Vec<(usize, usize)>,
) {
    assert!(m > 0, "attachment count m must be positive");
    assert!(n > m, "need more than m = {m} nodes, got {n}");
    for v in range.start..range.end.min(n) {
        if v <= m {
            for a in 0..v {
                out.push((a, v));
            }
        } else {
            for u in attachment_targets(seed, m, v) {
                out.push((v, u));
            }
        }
    }
}

/// The streaming counterpart of [`social_network_like`]: a heavy-tailed
/// graph with `≈ target_edges` edges built through [`crate::CsrBuilder`]
/// from keyed per-node draws. Unlike the Barabási–Albert generator it takes
/// a bare seed (no sequential RNG), and the result is identical however the
/// node range is chunked.
pub fn streaming_social_like(n: usize, target_edges: usize, seed: u64) -> CsrGraph {
    let m = attachment_m(n, target_edges);
    let mut builder = crate::CsrBuilder::with_capacity(n, target_edges);
    let mut buf = Vec::new();
    let chunk = 65_536;
    let mut v0 = 0;
    while v0 < n {
        buf.clear();
        streaming_attachment_chunk(n, m, seed, v0..(v0 + chunk).min(n), &mut buf);
        builder.add_edges(buf.iter().copied());
        v0 += chunk;
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn ba_edge_count() {
        let g = barabasi_albert(100, 3, &mut rng(1));
        // Seed clique C(4,2)=6 plus 3 per each of the 96 remaining nodes.
        assert_eq!(g.num_edges(), 6 + 96 * 3);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.connected_components(), 1);
    }

    #[test]
    fn ba_heavy_tail() {
        let g = barabasi_albert(500, 2, &mut rng(2));
        let max_deg = (0..500).map(|u| g.degree(u)).max().unwrap();
        let mean = g.mean_degree();
        // Hubs should be far above the mean degree.
        assert!(max_deg as f64 > 4.0 * mean, "max {max_deg}, mean {mean}");
    }

    #[test]
    fn ws_ring_without_rewiring() {
        let g = watts_strogatz(20, 2, 0.0, &mut rng(3));
        assert_eq!(g.num_edges(), 40);
        for u in 0..20 {
            assert_eq!(g.degree(u), 4);
            assert!(g.has_edge(u, (u + 1) % 20));
            assert!(g.has_edge(u, (u + 2) % 20));
        }
    }

    #[test]
    fn ws_rewiring_perturbs() {
        let g0 = watts_strogatz(50, 3, 0.0, &mut rng(4));
        let g1 = watts_strogatz(50, 3, 0.9, &mut rng(4));
        assert_ne!(g0, g1);
    }

    #[test]
    fn er_density() {
        let g = erdos_renyi(100, 0.1, &mut rng(5));
        let expected = 0.1 * (100.0 * 99.0 / 2.0);
        let got = g.num_edges() as f64;
        assert!((got - expected).abs() < 0.35 * expected, "got {got}, expected ~{expected}");
    }

    #[test]
    fn social_network_like_hits_target() {
        let g = social_network_like(200, 800, &mut rng(6));
        let got = g.num_edges() as f64;
        assert!((got - 800.0).abs() < 200.0, "got {got} edges");
    }

    #[test]
    fn generators_are_seeded_deterministic() {
        let a = barabasi_albert(50, 2, &mut rng(7));
        let b = barabasi_albert(50, 2, &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn streaming_social_is_chunk_invariant() {
        let (n, e, seed) = (500, 1500, 42u64);
        let reference = streaming_social_like(n, e, seed);
        // Rebuild from hand-chosen uneven chunkings: identical graph.
        for chunks in [vec![0, 1, 2, 499, 500], vec![0, 137, 138, 400, 500]] {
            let m = attachment_m(n, e);
            let mut b = crate::CsrBuilder::new(n);
            let mut buf = Vec::new();
            for w in chunks.windows(2) {
                buf.clear();
                streaming_attachment_chunk(n, m, seed, w[0]..w[1], &mut buf);
                b.add_edges(buf.iter().copied());
            }
            assert_eq!(b.finish(), reference);
        }
    }

    #[test]
    fn streaming_social_has_heavy_tail_and_target_edges() {
        let g = streaming_social_like(2000, 8000, 7);
        let got = g.num_edges() as f64;
        assert!((got - 8000.0).abs() < 2000.0, "got {got} edges");
        let max_deg = (0..2000).map(|u| g.degree(u)).max().unwrap();
        assert!(max_deg as f64 > 4.0 * g.mean_degree(), "max {max_deg} mean {}", g.mean_degree());
        assert_ne!(g, streaming_social_like(2000, 8000, 8), "seed must matter");
    }
}
