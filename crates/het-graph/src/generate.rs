//! Random social-network generators.
//!
//! The paper's datasets (Ciao, Epinions, LibraryThing) come with trust/social
//! networks exhibiting heavy-tailed degree distributions. The synthetic
//! substitutes here provide the same qualitative structure:
//! Barabási–Albert preferential attachment (heavy tail), Watts–Strogatz
//! (high clustering), and Erdős–Rényi (baseline control).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::csr::CsrGraph;

/// Barabási–Albert preferential attachment: each new node attaches to `m`
/// existing nodes with probability proportional to degree.
///
/// Produces the heavy-tailed degree distribution characteristic of social
/// trust networks.
///
/// # Panics
/// Panics if `m == 0` or `n < m + 1`.
pub fn barabasi_albert<R: Rng>(n: usize, m: usize, rng: &mut R) -> CsrGraph {
    assert!(m > 0, "attachment count m must be positive");
    assert!(n > m, "need more than m = {m} nodes, got {n}");
    let mut edges: Vec<(usize, usize)> = Vec::new();
    // Repeated-node list: sampling uniformly from it is degree-proportional.
    let mut targets: Vec<usize> = (0..=m).collect();
    // Seed clique on the first m+1 nodes.
    for a in 0..=m {
        for b in (a + 1)..=m {
            edges.push((a, b));
        }
    }
    let mut pool: Vec<usize> = Vec::new();
    for a in 0..=m {
        for _ in 0..m {
            pool.push(a);
        }
    }
    for v in (m + 1)..n {
        targets.clear();
        while targets.len() < m {
            let candidate = *pool.choose(rng).expect("pool is non-empty");
            if !targets.contains(&candidate) {
                targets.push(candidate);
            }
        }
        for &t in &targets {
            edges.push((v, t));
            pool.push(v);
            pool.push(t);
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbors per
/// side and rewiring probability `beta`.
///
/// # Panics
/// Panics if `k == 0` or `2k >= n`.
pub fn watts_strogatz<R: Rng>(n: usize, k: usize, beta: f64, rng: &mut R) -> CsrGraph {
    assert!(k > 0 && 2 * k < n, "watts_strogatz needs 0 < 2k < n (k={k}, n={n})");
    let mut edges = Vec::with_capacity(n * k);
    for u in 0..n {
        for d in 1..=k {
            let mut v = (u + d) % n;
            if rng.gen_bool(beta) {
                // Rewire to a uniform non-self target; collisions are dropped
                // by CSR dedup, slightly lowering the edge count, as in the
                // standard formulation.
                v = rng.gen_range(0..n);
                if v == u {
                    v = (v + 1) % n;
                }
            }
            edges.push((u, v));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Erdős–Rényi `G(n, p)` random graph.
pub fn erdos_renyi<R: Rng>(n: usize, p: f64, rng: &mut R) -> CsrGraph {
    let mut edges = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(p) {
                edges.push((a, b));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Draws a Barabási–Albert graph whose expected edge count approximates
/// `target_edges`, by choosing the attachment parameter `m ≈ E/n`.
pub fn social_network_like<R: Rng>(n: usize, target_edges: usize, rng: &mut R) -> CsrGraph {
    let m = (target_edges as f64 / n as f64).round().max(1.0) as usize;
    let m = m.min(n.saturating_sub(2)).max(1);
    barabasi_albert(n, m, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn ba_edge_count() {
        let g = barabasi_albert(100, 3, &mut rng(1));
        // Seed clique C(4,2)=6 plus 3 per each of the 96 remaining nodes.
        assert_eq!(g.num_edges(), 6 + 96 * 3);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.connected_components(), 1);
    }

    #[test]
    fn ba_heavy_tail() {
        let g = barabasi_albert(500, 2, &mut rng(2));
        let max_deg = (0..500).map(|u| g.degree(u)).max().unwrap();
        let mean = g.mean_degree();
        // Hubs should be far above the mean degree.
        assert!(max_deg as f64 > 4.0 * mean, "max {max_deg}, mean {mean}");
    }

    #[test]
    fn ws_ring_without_rewiring() {
        let g = watts_strogatz(20, 2, 0.0, &mut rng(3));
        assert_eq!(g.num_edges(), 40);
        for u in 0..20 {
            assert_eq!(g.degree(u), 4);
            assert!(g.has_edge(u, (u + 1) % 20));
            assert!(g.has_edge(u, (u + 2) % 20));
        }
    }

    #[test]
    fn ws_rewiring_perturbs() {
        let g0 = watts_strogatz(50, 3, 0.0, &mut rng(4));
        let g1 = watts_strogatz(50, 3, 0.9, &mut rng(4));
        assert_ne!(g0, g1);
    }

    #[test]
    fn er_density() {
        let g = erdos_renyi(100, 0.1, &mut rng(5));
        let expected = 0.1 * (100.0 * 99.0 / 2.0);
        let got = g.num_edges() as f64;
        assert!((got - expected).abs() < 0.35 * expected, "got {got}, expected ~{expected}");
    }

    #[test]
    fn social_network_like_hits_target() {
        let g = social_network_like(200, 800, &mut rng(6));
        let got = g.num_edges() as f64;
        assert!((got - 800.0).abs() < 200.0, "got {got} edges");
    }

    #[test]
    fn generators_are_seeded_deterministic() {
        let a = barabasi_albert(50, 2, &mut rng(7));
        let b = barabasi_albert(50, 2, &mut rng(7));
        assert_eq!(a, b);
    }
}
