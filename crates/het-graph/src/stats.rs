//! Graph statistics used to validate synthetic datasets against the paper's
//! published dataset characteristics.

use crate::csr::CsrGraph;

/// Summary statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Node count.
    pub nodes: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Fraction of isolated (degree-0) nodes.
    pub isolated_fraction: f64,
    /// Global clustering coefficient (transitivity).
    pub clustering: f64,
}

/// Computes [`GraphStats`] for `g`.
pub fn graph_stats(g: &CsrGraph) -> GraphStats {
    let n = g.num_nodes();
    let mut max_degree = 0;
    let mut isolated = 0;
    for u in 0..n {
        let d = g.degree(u);
        max_degree = max_degree.max(d);
        if d == 0 {
            isolated += 1;
        }
    }
    GraphStats {
        nodes: n,
        edges: g.num_edges(),
        mean_degree: g.mean_degree(),
        max_degree,
        isolated_fraction: if n == 0 { 0.0 } else { isolated as f64 / n as f64 },
        clustering: transitivity(g),
    }
}

/// Global clustering coefficient: `3·triangles / open-and-closed triplets`.
pub fn transitivity(g: &CsrGraph) -> f64 {
    let n = g.num_nodes();
    let mut triangles = 0usize;
    let mut triplets = 0usize;
    for u in 0..n {
        let d = g.degree(u);
        triplets += d * d.saturating_sub(1) / 2;
        let neigh: Vec<usize> = g.neighbors(u).collect();
        for (i, &a) in neigh.iter().enumerate() {
            for &b in &neigh[i + 1..] {
                if g.has_edge(a, b) {
                    triangles += 1;
                }
            }
        }
    }
    if triplets == 0 {
        0.0
    } else {
        // Each triangle is counted once per corner, i.e. 3 times total.
        triangles as f64 / triplets as f64
    }
}

/// Degree histogram up to the maximum degree.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let n = g.num_nodes();
    let max = (0..n).map(|u| g.degree(u)).max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for u in 0..n {
        hist[g.degree(u)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_is_fully_clustered() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!((transitivity(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_has_no_clustering() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(transitivity(&g), 0.0);
    }

    #[test]
    fn stats_of_path() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let s = graph_stats(&g);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 3);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.isolated_fraction, 0.0);
        assert!((s.mean_degree - 1.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2)]);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 5);
        assert_eq!(h[0], 2); // nodes 3, 4
        assert_eq!(h[2], 1); // node 1
    }
}
