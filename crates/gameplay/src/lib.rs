//! # msopds-gameplay
//!
//! The multiplayer poisoning game simulator: the attacker commits first, the
//! opponents respond sequentially (each planning a demotion Comprehensive
//! Attack with BOPDS on the observed, already-poisoned data), and the victim
//! Het-RecSys is retrained from scratch to measure the §VI-A.6 metrics.

#![warn(missing_docs)]

pub mod defense;
pub mod detectors;
pub mod game;

pub use defense::{
    detect_fakes, detection_quality, run_defended_game, DetectionQuality, DetectorConfig,
    SuspicionReport,
};
pub use detectors::{
    run_defended_game_with, DegreeOutlierDetector, DetectionReport, Detector, DistMetric,
    DistributionDetector, ShadowBanPolicy, SpectralDetector,
};
pub use game::{
    play_world, ranking_pool, run_game, score_world, AttackMethod, GameConfig, GameOutcome,
    PlayedWorld,
};
