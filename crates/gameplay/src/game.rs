//! The multiplayer poisoning game (§VI-B protocol).
//!
//! Sequence of play:
//! 1. the **attacker** plans on the clean data — baselines under IA, MSOPDS
//!    under MCA (anticipating the opponents), BOPDS/ablations under CA — and
//!    his poison is committed to the world;
//! 2. each **opponent** in turn observes the poisoned world (eCommerce data
//!    is public, §III-B) and plans a demotion Comprehensive Attack with
//!    BOPDS, committing 1-star hired ratings against the attacker's target;
//! 3. the **victim** Het-RecSys is retrained from scratch on the final world
//!    and the attacker's target item is scored: average predicted rating r̄
//!    over the target audience and HitRate@3 among the competing items.

use msopds_attacks::{Baseline, IaContext};
use msopds_core::{
    build_ca_capacity, plan_bopds, plan_msopds, prepare_planning_data, ActionToggles,
    CaCapacitySpec, Objective, PlannerConfig, PlayerSetup,
};
use msopds_recdata::{Dataset, Market, PoisonAction};
use msopds_recsys::metrics::{avg_predicted_rating, hit_rate_at_k};
use msopds_recsys::{HetRec, HetRecConfig};
use msopds_telemetry as telemetry;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Complete games played (attacker move, opponent moves, victim scoring).
static GAMES: telemetry::Counter = telemetry::Counter::new("gameplay.games");

/// The attacker's method under evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AttackMethod {
    /// One of the §VI-A.5 Injection Attack baselines.
    Baseline(Baseline),
    /// MSOPDS under MCA (anticipates the opponents), with a capacity-toggle
    /// mask for the Fig. 8 / Fig. 9 ablations.
    Msopds(ActionToggles),
    /// BOPDS under CA (full capacity, no opponent anticipation) — the §IV-D
    /// ablation.
    Bopds(ActionToggles),
}

impl AttackMethod {
    /// Display name for reports.
    pub fn name(&self) -> String {
        match self {
            AttackMethod::Baseline(b) => b.name().to_string(),
            AttackMethod::Msopds(_) => "MSOPDS".to_string(),
            AttackMethod::Bopds(_) => "BOPDS".to_string(),
        }
    }
}

/// Full game configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GameConfig {
    /// Victim model hyperparameters.
    pub victim: HetRecConfig,
    /// Planner (MSO + PDS) parameters for optimization-based attackers.
    pub planner: PlannerConfig,
    /// Planner parameters for the in-game opponents (usually the same).
    pub opponent_planner: PlannerConfig,
    /// Attacker budget `b` (§VI-A.3, default 5).
    pub attacker_b: usize,
    /// Number of opponents (Fig. 6 sweeps this).
    pub n_opponents: usize,
    /// Opponent budget `b_op` (§VI-A.4, default 2; Fig. 7 sweeps this).
    pub opponent_b: usize,
    /// Dataset scale divisor, used to scale IA filler counts.
    pub scale: f64,
    /// Base seed for attack randomness and the victim init.
    pub seed: u64,
    /// Kernel-pool lanes for tensor kernels while this game runs (`0` =
    /// inherit the process-wide pool configuration). Results are bit-identical
    /// for any value; this only trades latency (see DESIGN.md).
    pub kernel_threads: usize,
}

impl GameConfig {
    /// Paper-shaped defaults at a given dataset scale.
    pub fn at_scale(scale: f64) -> Self {
        Self {
            victim: HetRecConfig::default(),
            planner: PlannerConfig::default(),
            opponent_planner: PlannerConfig::default(),
            attacker_b: 5,
            n_opponents: 1,
            opponent_b: 2,
            scale,
            seed: 0,
            kernel_threads: 0,
        }
    }
}

/// Result of one game: the paper's two metrics plus bookkeeping.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GameOutcome {
    /// Attacker method name.
    pub method: String,
    /// Average predicted rating r̄ of the target over the target audience.
    pub avg_rating: f64,
    /// HitRate@3 among the competing items.
    pub hit_rate_at_3: f64,
    /// HitRate@10 among the extended ranking pool (see [`ranking_pool`]) —
    /// the attack × defense matrix metric.
    pub hit_rate_at_10: f64,
    /// Number of poison actions the attacker committed.
    pub attacker_actions: usize,
    /// Number of poison actions all opponents committed.
    pub opponent_actions: usize,
    /// Victim training RMSE (recommendation quality sanity check).
    pub victim_rmse: f64,
}

/// Runs one complete game and evaluates the attacker's target item.
///
/// `base` is the clean dataset; `market` the sampled demographics (player 0
/// is the attacker). Returns the §VI-A.6 metrics measured on the retrained
/// victim.
pub fn run_game(
    base: &Dataset,
    market: &Market,
    method: AttackMethod,
    cfg: &GameConfig,
) -> GameOutcome {
    let _span = telemetry::span("game");
    GAMES.incr();
    let played = play_world(base, market, method, cfg);
    score_world(&played.world, market, method, cfg, &played)
}

/// The poisoned world after both sides have moved, before victim training.
pub struct PlayedWorld {
    /// The fully-poisoned dataset.
    pub world: Dataset,
    /// Attacker action count.
    pub attacker_actions: usize,
    /// Total opponent action count.
    pub opponent_actions: usize,
}

/// Plays steps 1–2 of the protocol (attacker, then sequential opponents) and
/// returns the poisoned world. Exposed so defenses can intervene before the
/// victim trains (see [`crate::defense`]).
pub fn play_world(
    base: &Dataset,
    market: &Market,
    method: AttackMethod,
    cfg: &GameConfig,
) -> PlayedWorld {
    if cfg.kernel_threads > 0 {
        msopds_autograd::pool::configure_threads(cfg.kernel_threads);
    }
    let mut world = base.clone();
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed.wrapping_add(0x5eed));

    // ---- step 1: the attacker plans on the clean data -------------------------
    let attacker_span = telemetry::span("attacker_plan");
    let attacker_plan: Vec<PoisonAction> = match method {
        AttackMethod::Baseline(b) => {
            let ctx = IaContext { seed: cfg.seed, ..IaContext::scaled(cfg.attacker_b, cfg.scale) };
            b.plan(&mut world, &ctx, market.target_item, &cfg.planner, &mut rng)
        }
        AttackMethod::Msopds(toggles) | AttackMethod::Bopds(toggles) => {
            let spec = CaCapacitySpec { toggles, ..CaCapacitySpec::promote(cfg.attacker_b) };
            let capacity =
                build_ca_capacity(&mut world, &market.players[0], market.target_item, &spec);
            let attacker = PlayerSetup {
                capacity,
                objective: Objective::Comprehensive {
                    audience: market.target_audience.clone(),
                    target: market.target_item,
                    competing: market.competing_items.clone(),
                },
            };
            if matches!(method, AttackMethod::Msopds(_)) {
                // Anticipate each opponent's demotion capacity (MCA).
                let mut anticipation_world = world.clone();
                let opponents: Vec<PlayerSetup> = (0..cfg.n_opponents)
                    .map(|i| {
                        let assets = &market.players[(1 + i).min(market.players.len() - 1)];
                        let cap = build_ca_capacity(
                            &mut anticipation_world,
                            assets,
                            market.target_item,
                            &CaCapacitySpec::demote(cfg.opponent_b),
                        );
                        PlayerSetup {
                            capacity: cap,
                            objective: Objective::Demote {
                                audience: market.target_audience.clone(),
                                target: market.target_item,
                            },
                        }
                    })
                    .collect();
                let caps: Vec<&msopds_core::BuiltCapacity> = std::iter::once(&attacker.capacity)
                    .chain(opponents.iter().map(|o| &o.capacity))
                    .collect();
                let planning_data = prepare_planning_data(&anticipation_world, &caps);
                plan_msopds(&planning_data, &attacker, &opponents, &cfg.planner).full_plan
            } else {
                let planning_data = world.apply_poison(&attacker.capacity.fixed);
                plan_bopds(&planning_data, &attacker, &cfg.planner).full_plan
            }
        }
    };
    drop(attacker_span);
    world = world.apply_poison(&attacker_plan);

    // ---- step 2: opponents plan sequentially on the observed world ------------
    let opponents_span = telemetry::span("opponent_plans");
    let mut opponent_actions = 0usize;
    for i in 0..cfg.n_opponents {
        let assets = &market.players[(1 + i).min(market.players.len() - 1)];
        let mut opp_world = world.clone();
        let capacity = build_ca_capacity(
            &mut opp_world,
            assets,
            market.target_item,
            &CaCapacitySpec::demote(cfg.opponent_b),
        );
        let opponent = PlayerSetup {
            capacity,
            objective: Objective::Demote {
                audience: market.target_audience.clone(),
                target: market.target_item,
            },
        };
        let planning_data = opp_world.apply_poison(&opponent.capacity.fixed);
        let plan = plan_bopds(&planning_data, &opponent, &cfg.opponent_planner).full_plan;
        opponent_actions += plan.len();
        world = world.apply_poison(&plan);
    }

    drop(opponents_span);
    PlayedWorld { world, attacker_actions: attacker_plan.len(), opponent_actions }
}

/// Minimum ranking-pool size used for the HitRate@10 metric.
pub const HR10_POOL_MIN: usize = 15;

/// The ranking pool for HitRate@10: the market's competing items, extended
/// deterministically with the lowest item ids not already present until the
/// pool holds at least [`HR10_POOL_MIN`] entries. At paper scale the
/// competing set already covers this; at test scales the scaled-down market
/// pool (8 items) would make HR@10 degenerate. The extension depends only on
/// the item-id space, so every attack and defense configuration of one world
/// is ranked against the same pool.
pub fn ranking_pool(world: &Dataset, market: &Market) -> Vec<usize> {
    let mut pool = market.competing_items.clone();
    if !pool.contains(&market.target_item) {
        pool.push(market.target_item);
    }
    let mut next = 0usize;
    while pool.len() < HR10_POOL_MIN && next < world.n_items() {
        if !pool.contains(&next) {
            pool.push(next);
        }
        next += 1;
    }
    pool.sort_unstable();
    pool
}

/// Step 3 of the protocol: retrains the victim on `world` and scores the
/// attacker's target.
pub fn score_world(
    world: &Dataset,
    market: &Market,
    method: AttackMethod,
    cfg: &GameConfig,
    played: &PlayedWorld,
) -> GameOutcome {
    if cfg.kernel_threads > 0 {
        msopds_autograd::pool::configure_threads(cfg.kernel_threads);
    }
    let _span = telemetry::span("victim_fit");
    let victim_cfg = HetRecConfig { seed: cfg.seed.wrapping_add(97), ..cfg.victim };
    let mut victim = HetRec::new(victim_cfg, world.n_users(), world.n_items());
    victim.fit(world);

    GameOutcome {
        method: method.name(),
        avg_rating: avg_predicted_rating(&victim, &market.target_audience, market.target_item),
        hit_rate_at_3: hit_rate_at_k(
            &victim,
            &market.target_audience,
            market.target_item,
            &market.competing_items,
            3,
        ),
        hit_rate_at_10: hit_rate_at_k(
            &victim,
            &market.target_audience,
            market.target_item,
            &ranking_pool(world, market),
            10,
        ),
        attacker_actions: played.attacker_actions,
        opponent_actions: played.opponent_actions,
        victim_rmse: victim.rmse(world),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msopds_autograd::HvpMode;
    use msopds_core::MsoConfig;
    use msopds_recdata::{sample_market, DatasetSpec, DemographicsSpec};
    use msopds_recsys::pds::PdsConfig;

    fn quick_cfg() -> GameConfig {
        let planner = PlannerConfig {
            mso: MsoConfig {
                iters: 3,
                cg_iters: 2,
                hvp_mode: HvpMode::Exact,
                ..Default::default()
            },
            pds: PdsConfig { inner_steps: 3, ..Default::default() },
        };
        GameConfig {
            victim: HetRecConfig { epochs: 25, dim: 8, attention: false, ..Default::default() },
            planner,
            opponent_planner: planner,
            attacker_b: 3,
            n_opponents: 1,
            opponent_b: 2,
            scale: 8.0,
            seed: 1,
            kernel_threads: 0,
        }
    }

    fn setup() -> (Dataset, Market) {
        let data = DatasetSpec::micro().generate(6);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let market = sample_market(&data, &DemographicsSpec::default().scaled(8.0), 2, &mut rng);
        (data, market)
    }

    #[test]
    fn none_baseline_runs_clean() {
        let (data, market) = setup();
        let out = run_game(&data, &market, AttackMethod::Baseline(Baseline::None), &quick_cfg());
        assert_eq!(out.attacker_actions, 0);
        assert!(out.opponent_actions > 0, "opponents still act");
        assert!(out.avg_rating.is_finite());
        assert!((0.0..=1.0).contains(&out.hit_rate_at_3));
    }

    #[test]
    fn opponent_demotion_lowers_target() {
        // With the None attacker the world shape is identical across runs, so
        // the only difference is the opponents' 1-star ratings: the target's
        // retrained score must drop.
        let (data, market) = setup();
        let with_opp =
            run_game(&data, &market, AttackMethod::Baseline(Baseline::None), &quick_cfg());
        let cfg0 = GameConfig { n_opponents: 0, ..quick_cfg() };
        let without = run_game(&data, &market, AttackMethod::Baseline(Baseline::None), &cfg0);
        assert!(
            with_opp.avg_rating < without.avg_rating,
            "demotion should lower r̄: {} (1 opp) vs {} (0 opp)",
            with_opp.avg_rating,
            without.avg_rating
        );
    }

    #[test]
    fn msopds_runs_end_to_end() {
        let (data, market) = setup();
        let out =
            run_game(&data, &market, AttackMethod::Msopds(ActionToggles::all()), &quick_cfg());
        assert!(out.attacker_actions > 0);
        assert!(out.avg_rating.is_finite());
        assert_eq!(out.method, "MSOPDS");
    }

    #[test]
    fn zero_opponents_supported() {
        let (data, market) = setup();
        let cfg = GameConfig { n_opponents: 0, ..quick_cfg() };
        let out = run_game(&data, &market, AttackMethod::Bopds(ActionToggles::all()), &cfg);
        assert_eq!(out.opponent_actions, 0);
    }

    #[test]
    fn games_are_seed_deterministic() {
        let (data, market) = setup();
        let cfg = quick_cfg();
        let a = run_game(&data, &market, AttackMethod::Baseline(Baseline::Popular), &cfg);
        let b = run_game(&data, &market, AttackMethod::Baseline(Baseline::Popular), &cfg);
        assert_eq!(a.avg_rating, b.avg_rating);
        assert_eq!(a.hit_rate_at_3, b.hit_rate_at_3);
    }

    #[test]
    fn more_opponents_add_more_demotion_actions() {
        // World shapes match under the None attacker, so the opponent count
        // translates directly into demotion pressure.
        let (data, market) = setup();
        let cfg1 = quick_cfg();
        let cfg2 = GameConfig { n_opponents: 2, ..quick_cfg() };
        let zero = run_game(
            &data,
            &market,
            AttackMethod::Baseline(Baseline::None),
            &GameConfig { n_opponents: 0, ..quick_cfg() },
        );
        let one = run_game(&data, &market, AttackMethod::Baseline(Baseline::None), &cfg1);
        let two = run_game(&data, &market, AttackMethod::Baseline(Baseline::None), &cfg2);
        assert!(two.opponent_actions > one.opponent_actions);
        // Near the 1-star floor successive opponents saturate, so compare each
        // against the undefended reference rather than against each other.
        assert!(two.avg_rating < zero.avg_rating, "{} vs {}", two.avg_rating, zero.avg_rating);
        assert!(one.avg_rating < zero.avg_rating, "{} vs {}", one.avg_rating, zero.avg_rating);
    }
}
