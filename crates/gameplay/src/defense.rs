//! Fake-account detection defense (§VI-F's motivating observation).
//!
//! The paper notes that *"website moderators usually detect and remove fake
//! user accounts [86], [so] conducting poisoning actions via real users may
//! work better"*. This module makes that observation executable: a
//! feature-based detector scores every account on the signals moderators use
//! — account age proxies, rating burstiness, deviation, and social
//! embeddedness — and [`run_defended_game`] replays a game with detected
//! accounts' contributions removed before the victim trains.

use msopds_recdata::{Dataset, Rating, RatingMatrix};
use msopds_telemetry as telemetry;
use serde::{Deserialize, Serialize};

/// Accounts flagged by the detector across all [`detect_fakes`] calls.
static FLAGGED_ACCOUNTS: telemetry::Counter = telemetry::Counter::new("gameplay.defense.flagged");

/// Detector configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Score threshold above which an account is flagged.
    pub threshold: f64,
    /// Weight of the rating-deviation signal.
    pub w_deviation: f64,
    /// Weight of the extreme-rating-share signal.
    pub w_extreme: f64,
    /// Weight of the social-isolation signal.
    pub w_isolation: f64,
    /// Weight of the rating-concentration signal (all ratings on few items).
    pub w_concentration: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            threshold: 0.5,
            w_deviation: 0.3,
            w_extreme: 0.25,
            w_isolation: 0.25,
            w_concentration: 0.2,
        }
    }
}

/// Per-account suspicion report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SuspicionReport {
    /// Suspicion score per user id (higher = more suspicious), in `[0, 1]`.
    pub scores: Vec<f64>,
    /// Flagged user ids (score above threshold).
    pub flagged: Vec<usize>,
}

/// Scores every account on moderator-style signals.
///
/// * **deviation** — mean |rating − item mean| across the account's ratings
///   (poison accounts rate against consensus);
/// * **extreme share** — fraction of 1★/5★ ratings;
/// * **isolation** — no or few social connections relative to the dataset;
/// * **concentration** — ratings focused on very few items relative to the
///   account's activity.
pub fn detect_fakes(data: &Dataset, cfg: &DetectorConfig) -> SuspicionReport {
    let _span = telemetry::span("detect_fakes");
    let n = data.n_users();
    let mut scores = vec![0.0; n];
    let mean_degree = data.social.mean_degree().max(1.0);
    for (u, score) in scores.iter_mut().enumerate() {
        let ratings: Vec<Rating> = data.ratings.by_user(u).collect();
        if ratings.is_empty() {
            // No ratings at all: nothing to act on, nothing to detect.
            continue;
        }
        let deviation = ratings
            .iter()
            .map(|r| {
                let m = data.ratings.item_mean(r.item as usize).unwrap_or(r.value);
                (r.value - m).abs() / 4.0
            })
            .sum::<f64>()
            / ratings.len() as f64;
        let extreme = ratings.iter().filter(|r| r.value <= 1.0 || r.value >= 5.0).count() as f64
            / ratings.len() as f64;
        let isolation = 1.0 - (data.social.degree(u) as f64 / mean_degree).min(1.0);
        let distinct_items: std::collections::HashSet<u32> =
            ratings.iter().map(|r| r.item).collect();
        let concentration = 1.0 - distinct_items.len() as f64 / ratings.len() as f64;

        *score = (cfg.w_deviation * deviation
            + cfg.w_extreme * extreme
            + cfg.w_isolation * isolation
            + cfg.w_concentration * concentration)
            / (cfg.w_deviation + cfg.w_extreme + cfg.w_isolation + cfg.w_concentration);
    }
    let flagged: Vec<usize> = (0..n).filter(|&u| scores[u] > cfg.threshold).collect();
    FLAGGED_ACCOUNTS.add(flagged.len() as u64);
    SuspicionReport { scores, flagged }
}

/// Detection quality against the ground truth (fake ids are `>= n_real`).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DetectionQuality {
    /// Fraction of fakes flagged.
    pub recall: f64,
    /// Fraction of flags that are truly fake.
    pub precision: f64,
}

/// Evaluates a report against the dataset's fake-account ground truth.
pub fn detection_quality(data: &Dataset, report: &SuspicionReport) -> DetectionQuality {
    let n_fake = data.n_fake_users();
    if n_fake == 0 {
        return DetectionQuality { recall: 1.0, precision: 1.0 };
    }
    let true_pos = report.flagged.iter().filter(|&&u| data.is_fake(u)).count();
    DetectionQuality {
        recall: true_pos as f64 / n_fake as f64,
        precision: if report.flagged.is_empty() {
            1.0
        } else {
            true_pos as f64 / report.flagged.len() as f64
        },
    }
}

/// Removes the flagged accounts' ratings and social edges (the accounts keep
/// their ids so indices stay stable — a "shadow ban").
pub fn scrub(data: &Dataset, flagged: &[usize]) -> Dataset {
    let _span = telemetry::span("scrub");
    let flagged: std::collections::HashSet<usize> = flagged.iter().copied().collect();
    let mut ratings = RatingMatrix::new(data.n_users(), data.n_items());
    for r in data.ratings.ratings() {
        if !flagged.contains(&(r.user as usize)) {
            ratings.insert(*r);
        }
    }
    let social_edges: Vec<(usize, usize)> = data
        .social
        .edges()
        .into_iter()
        .filter(|(a, b)| !flagged.contains(a) && !flagged.contains(b))
        .collect();
    let social = msopds_het_graph::CsrGraph::from_edges(data.n_users(), &social_edges);
    Dataset {
        name: format!("{}-scrubbed", data.name),
        n_real_users: data.n_real_users,
        ratings,
        social,
        item_graph: data.item_graph.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msopds_recdata::{DatasetSpec, PoisonAction};

    fn poisoned_world() -> Dataset {
        let mut data = DatasetSpec::micro().generate(3);
        let fakes = data.add_fake_users(5);
        let mut actions = Vec::new();
        for &f in &fakes {
            // Classic shilling profile: all-5★ burst on a handful of items.
            for item in [0u32, 1, 2] {
                actions.push(PoisonAction::Rating { user: f as u32, item, value: 5.0 });
            }
        }
        data.apply_poison(&actions)
    }

    #[test]
    fn detector_flags_shilling_fakes() {
        let world = poisoned_world();
        let report = detect_fakes(&world, &DetectorConfig::default());
        let quality = detection_quality(&world, &report);
        assert!(quality.recall > 0.5, "recall {}", quality.recall);
        // Fakes score higher than the median real user.
        let mut real_scores: Vec<f64> = (0..world.n_real_users).map(|u| report.scores[u]).collect();
        real_scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = real_scores[real_scores.len() / 2];
        for u in world.n_real_users..world.n_users() {
            assert!(report.scores[u] > median, "fake {u} not above median real score");
        }
    }

    #[test]
    fn clean_users_mostly_unflagged() {
        let data = DatasetSpec::micro().generate(3);
        let report = detect_fakes(&data, &DetectorConfig::default());
        let flagged_real = report.flagged.len() as f64 / data.n_users() as f64;
        assert!(flagged_real < 0.2, "false positive rate {flagged_real}");
    }

    #[test]
    fn scores_are_bounded() {
        let world = poisoned_world();
        let report = detect_fakes(&world, &DetectorConfig::default());
        assert!(report.scores.iter().all(|s| (0.0..=1.0).contains(s)));
        assert_eq!(report.scores.len(), world.n_users());
    }

    #[test]
    fn scrub_removes_flagged_contributions() {
        let world = poisoned_world();
        let flagged: Vec<usize> = (world.n_real_users..world.n_users()).collect();
        let scrubbed = scrub(&world, &flagged);
        for &f in &flagged {
            assert_eq!(scrubbed.ratings.user_degree(f), 0);
            assert_eq!(scrubbed.social.degree(f), 0);
        }
        assert_eq!(scrubbed.n_users(), world.n_users(), "ids stay stable");
        assert!(scrubbed.ratings.len() < world.ratings.len());
    }

    #[test]
    fn detection_quality_without_fakes_is_perfect() {
        let data = DatasetSpec::micro().generate(1);
        let report = detect_fakes(&data, &DetectorConfig::default());
        let q = detection_quality(&data, &report);
        assert_eq!(q.recall, 1.0);
    }
}

/// Plays a full game, applies the detector, scrubs flagged accounts, and only
/// then trains the victim — the §VI-F scenario where moderators act between
/// the poisoning and the next model refresh.
///
/// Returns the defended outcome and the detector's measured quality.
pub fn run_defended_game(
    base: &Dataset,
    market: &msopds_recdata::Market,
    method: crate::game::AttackMethod,
    cfg: &crate::game::GameConfig,
    detector: &DetectorConfig,
) -> (crate::game::GameOutcome, DetectionQuality) {
    let _span = telemetry::span("defended_game");
    let played = crate::game::play_world(base, market, method, cfg);
    let report = detect_fakes(&played.world, detector);
    let quality = detection_quality(&played.world, &report);
    let scrubbed = scrub(&played.world, &report.flagged);
    let outcome = crate::game::score_world(&scrubbed, market, method, cfg, &played);
    (outcome, quality)
}

#[cfg(test)]
mod defended_game_tests {
    use super::*;
    use crate::game::{AttackMethod, GameConfig};
    use msopds_attacks::Baseline;
    use msopds_recdata::{sample_market, DatasetSpec, DemographicsSpec};
    use rand::SeedableRng;

    #[test]
    fn defended_game_runs_and_reports_quality() {
        let data = DatasetSpec::micro().generate(6);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let market = sample_market(&data, &DemographicsSpec::default().scaled(8.0), 1, &mut rng);
        let mut cfg = GameConfig::at_scale(8.0);
        cfg.victim.epochs = 20;
        cfg.victim.dim = 8;
        cfg.planner.mso.iters = 2;
        cfg.planner.pds.inner_steps = 2;
        cfg.opponent_planner = cfg.planner;
        let (outcome, quality) = run_defended_game(
            &data,
            &market,
            AttackMethod::Baseline(Baseline::Random),
            &cfg,
            &DetectorConfig::default(),
        );
        assert!(outcome.avg_rating.is_finite());
        assert!((0.0..=1.0).contains(&quality.recall));
        assert!((0.0..=1.0).contains(&quality.precision));
    }
}
