//! The pluggable moderator pipeline: detectors and shadow-ban policies.
//!
//! Each [`Detector`] scores accounts from their own rating profiles against
//! statistics of the *currently unbanned, active* population, iterating to a
//! fixed point (ban the outliers, re-estimate, repeat). Because the final
//! statistics are computed over exactly the surviving population, re-running
//! any detector on an already-scrubbed world reproduces those statistics and
//! bans nobody — shadow-banning is idempotent by construction, not by
//! threshold luck.
//!
//! Every score reads only `ratings.by_user(u)` for active users, and every
//! cross-user reduction is order-canonicalized (sorted summands, rank
//! statistics), so ban sets are exactly invariant under user permutation.
//!
//! A [`ShadowBanPolicy`] chains detectors: each stage detects on the world
//! the previous stage left behind, scrubs its bans (ids stay stable — a
//! shadow ban), and records a typed [`DetectionReport`].

use std::collections::BTreeSet;

use msopds_faultline as faultline;
use msopds_recdata::Dataset;
use msopds_telemetry as telemetry;
use serde::{Deserialize, Serialize};

use crate::defense::scrub;

/// Accounts banned across all [`ShadowBanPolicy::run`] calls.
static BANNED_ACCOUNTS: telemetry::Counter = telemetry::Counter::new("gameplay.detectors.banned");
/// Detector passes executed (one per fixed-point round).
static DETECTOR_ROUNDS: telemetry::Counter = telemetry::Counter::new("gameplay.detectors.rounds");

/// One detector stage's verdict on a world.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// Detector name (stable identifier, e.g. `"degree"`).
    pub detector: String,
    /// Ban threshold the scores were compared against.
    pub threshold: f64,
    /// Final per-user suspicion score (0 for inactive/banned-out users).
    pub scores: Vec<f64>,
    /// Banned user ids, ascending.
    pub banned: Vec<usize>,
    /// Fixed-point rounds the detector needed.
    pub rounds: usize,
}

/// A moderator-style anomaly detector over user rating profiles.
pub trait Detector: Send + Sync {
    /// Stable identifier (used in specs, reports, and golden traces).
    fn name(&self) -> &'static str;

    /// Ban threshold: a user is banned when its score strictly exceeds this.
    fn threshold(&self) -> f64;

    /// Minimum rating count for a user to be scored at all; users below it
    /// score 0 and are never banned. Must be ≥ 1 so scrubbed (zero-rating)
    /// accounts are invisible to re-runs.
    fn min_activity(&self) -> usize {
        1
    }

    /// Scores the given active users. Implementations must only read
    /// `data.ratings.by_user(u)` for `u ∈ active` (population statistics
    /// over `active` included) so that the fixed-point idempotence argument
    /// holds, and must reduce across users in a permutation-invariant order.
    fn score_active(&self, data: &Dataset, active: &[usize]) -> Vec<f64>;

    /// Runs the detector to its ban fixed point.
    fn detect(&self, data: &Dataset) -> DetectionReport {
        let _span = telemetry::span("detector");
        faultline::fault_point!("defense.detect");
        let n = data.n_users();
        let mut scores = vec![0.0; n];
        let mut banned: BTreeSet<usize> = BTreeSet::new();
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            DETECTOR_ROUNDS.incr();
            let active: Vec<usize> = (0..n)
                .filter(|&u| {
                    !banned.contains(&u) && data.ratings.user_degree(u) >= self.min_activity()
                })
                .collect();
            if active.is_empty() {
                break;
            }
            let s = self.score_active(data, &active);
            debug_assert_eq!(s.len(), active.len());
            let mut newly = Vec::new();
            for (&u, &su) in active.iter().zip(&s) {
                scores[u] = su;
                if su > self.threshold() {
                    newly.push(u);
                }
            }
            if newly.is_empty() {
                break;
            }
            for &u in &newly {
                banned.insert(u);
                scores[u] = 0.0;
            }
            // Re-score the survivors under the shrunken population; the
            // banned set only grows, so this terminates in ≤ n rounds.
        }
        // Banned users keep their last in-round score for diagnostics.
        let banned: Vec<usize> = banned.into_iter().collect();
        DetectionReport {
            detector: self.name().to_string(),
            threshold: self.threshold(),
            scores,
            banned,
            rounds,
        }
    }
}

/// Sums `values` in a canonical (sorted) order so the result is exactly
/// independent of the caller's iteration order — user permutations reorder
/// float summands, and unsorted summation would leak that into ban sets.
fn canonical_sum(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.total_cmp(b));
    values.iter().sum()
}

/// Median of `values` (canonical order; empty → 0).
fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Robust z-scores: `|x − median| / max(1.4826·MAD, floor)`.
fn robust_z(values: &[f64], mad_floor: f64) -> Vec<f64> {
    let med = median(values);
    let deviations: Vec<f64> = values.iter().map(|v| (v - med).abs()).collect();
    let mad = (1.4826 * median(&deviations)).max(mad_floor);
    values.iter().map(|v| (v - med).abs() / mad).collect()
}

// ---------------------------------------------------------------------------
// Degree outlier
// ---------------------------------------------------------------------------

/// Flags accounts whose rating-profile length is a robust outlier (two-sided
/// |z| on the active population's degree distribution) — injected fakes rate
/// either far fewer or far more items than the organic profile length.
#[derive(Clone, Copy, Debug)]
pub struct DegreeOutlierDetector {
    /// Robust-z ban threshold.
    pub threshold: f64,
    /// MAD floor (degrees are near-constant in synthetic worlds).
    pub mad_floor: f64,
}

impl Default for DegreeOutlierDetector {
    fn default() -> Self {
        Self { threshold: 6.5, mad_floor: 1.0 }
    }
}

impl Detector for DegreeOutlierDetector {
    fn name(&self) -> &'static str {
        "degree"
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn score_active(&self, data: &Dataset, active: &[usize]) -> Vec<f64> {
        let degrees: Vec<f64> =
            active.iter().map(|&u| data.ratings.user_degree(u) as f64).collect();
        robust_z(&degrees, self.mad_floor)
    }
}

// ---------------------------------------------------------------------------
// Rating-distribution outlier
// ---------------------------------------------------------------------------

/// Divergence measure for [`DistributionDetector`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistMetric {
    /// Smoothed Kullback–Leibler divergence user ‖ population.
    Kl,
    /// Pearson χ² statistic of the user histogram against the population.
    ChiSq,
}

/// Flags accounts whose star-value histogram diverges from the population's
/// (KL or χ² on smoothed 5-bin histograms) — shilling profiles are heavy on
/// extremes relative to organic raters.
#[derive(Clone, Copy, Debug)]
pub struct DistributionDetector {
    /// Divergence ban threshold.
    pub threshold: f64,
    /// Minimum profile length to score (short profiles are pure noise).
    pub min_ratings: usize,
    /// Which divergence to compute.
    pub metric: DistMetric,
    /// Additive smoothing per histogram bin.
    pub smoothing: f64,
}

impl DistributionDetector {
    /// KL-divergence variant at default thresholds.
    pub fn kl() -> Self {
        Self { threshold: 2.2, min_ratings: 5, metric: DistMetric::Kl, smoothing: 0.5 }
    }

    /// χ²-statistic variant at default thresholds.
    pub fn chi2() -> Self {
        Self { threshold: 9.0, min_ratings: 5, metric: DistMetric::ChiSq, smoothing: 0.5 }
    }
}

impl Default for DistributionDetector {
    fn default() -> Self {
        Self::kl()
    }
}

/// Smoothed 5-bin star histogram of one user's ratings, as probabilities.
fn star_histogram(data: &Dataset, u: usize, smoothing: f64) -> [f64; 5] {
    let mut bins = [smoothing; 5];
    let mut total = 5.0 * smoothing;
    for r in data.ratings.by_user(u) {
        let b = (r.value.round().clamp(1.0, 5.0) as usize) - 1;
        bins[b] += 1.0;
        total += 1.0;
    }
    bins.map(|b| b / total)
}

impl Detector for DistributionDetector {
    fn name(&self) -> &'static str {
        match self.metric {
            DistMetric::Kl => "distribution",
            DistMetric::ChiSq => "chi2",
        }
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn min_activity(&self) -> usize {
        self.min_ratings.max(1)
    }

    fn score_active(&self, data: &Dataset, active: &[usize]) -> Vec<f64> {
        let histograms: Vec<[f64; 5]> =
            active.iter().map(|&u| star_histogram(data, u, self.smoothing)).collect();
        // Population histogram: per-bin *median* across users, renormalized
        // — a coordinated burst of poison profiles cannot drag the reference
        // the way a mean would be dragged.
        let mut pop = [0.0; 5];
        for (b, p) in pop.iter_mut().enumerate() {
            let bin: Vec<f64> = histograms.iter().map(|h| h[b]).collect();
            *p = median(&bin).max(1e-6);
        }
        let total: f64 = pop.iter().sum();
        for p in &mut pop {
            *p /= total;
        }
        histograms
            .iter()
            .map(|h| match self.metric {
                DistMetric::Kl => {
                    (0..5).map(|b| h[b] * (h[b] / pop[b]).ln()).sum::<f64>().max(0.0)
                }
                DistMetric::ChiSq => (0..5).map(|b| (h[b] - pop[b]).powi(2) / pop[b]).sum(),
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Spectral outlier
// ---------------------------------------------------------------------------

/// Flags accounts whose rating vector has an outlying residual against the
/// population's top singular subspace (rank-1 power iteration over the
/// active users' profiles) — coordinated poison profiles sit off the organic
/// taste subspace.
#[derive(Clone, Copy, Debug)]
pub struct SpectralDetector {
    /// Robust-z ban threshold on the residual ratios.
    pub threshold: f64,
    /// Minimum profile length to score.
    pub min_ratings: usize,
    /// Power-iteration steps.
    pub iters: usize,
    /// MAD floor for the residual z-scores.
    pub mad_floor: f64,
}

impl Default for SpectralDetector {
    fn default() -> Self {
        Self { threshold: 8.0, min_ratings: 2, iters: 20, mad_floor: 0.08 }
    }
}

impl Detector for SpectralDetector {
    fn name(&self) -> &'static str {
        "spectral"
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn min_activity(&self) -> usize {
        self.min_ratings.max(1)
    }

    fn score_active(&self, data: &Dataset, active: &[usize]) -> Vec<f64> {
        let n_items = data.n_items();
        // Top right-singular vector of the active users' rating matrix by
        // power iteration on AᵀA, with a deterministic uniform init. Every
        // cross-user accumulation is sorted before summing so the vector is
        // exactly permutation-invariant.
        let mut v = vec![1.0 / (n_items as f64).sqrt(); n_items];
        for _ in 0..self.iters {
            // t_u = a_u · v (per-user; reads only that user's profile).
            let t: Vec<f64> = active
                .iter()
                .map(|&u| data.ratings.by_user(u).map(|r| r.value * v[r.item as usize]).sum())
                .collect();
            // w_i = Σ_u a_{u,i} · t_u, summands sorted per item.
            let mut contributions: Vec<Vec<f64>> = vec![Vec::new(); n_items];
            for (k, &u) in active.iter().enumerate() {
                for r in data.ratings.by_user(u) {
                    contributions[r.item as usize].push(r.value * t[k]);
                }
            }
            let w: Vec<f64> = contributions.into_iter().map(canonical_sum).collect();
            let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm <= f64::EPSILON {
                break;
            }
            v = w.into_iter().map(|x| x / norm).collect();
        }
        // Residual ratio of each profile against the rank-1 subspace.
        let residuals: Vec<f64> = active
            .iter()
            .map(|&u| {
                let norm2: f64 = data.ratings.by_user(u).map(|r| r.value * r.value).sum();
                let proj: f64 =
                    data.ratings.by_user(u).map(|r| r.value * v[r.item as usize]).sum();
                if norm2 <= f64::EPSILON {
                    0.0
                } else {
                    ((norm2 - proj * proj).max(0.0) / norm2).sqrt()
                }
            })
            .collect();
        robust_z(&residuals, self.mad_floor)
    }
}

// ---------------------------------------------------------------------------
// Shadow-ban policy
// ---------------------------------------------------------------------------

/// A composable moderator: an ordered chain of detector stages, each run on
/// the world the previous stage left behind, with its bans shadow-scrubbed.
pub struct ShadowBanPolicy {
    stages: Vec<Box<dyn Detector>>,
    name: String,
}

impl ShadowBanPolicy {
    /// The no-op moderator (zero stages).
    pub fn off() -> Self {
        Self { stages: Vec::new(), name: "off".to_string() }
    }

    /// All three detector families chained: degree → distribution → spectral.
    pub fn composed() -> Self {
        Self::from_spec("degree+distribution+spectral").expect("static spec")
    }

    /// Parses a policy spec: `"off"`, `"composed"`, or a `+`-chain of
    /// `degree` / `distribution` / `chi2` / `spectral` stage names.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        if spec == "off" {
            return Ok(Self::off());
        }
        if spec == "composed" {
            return Ok(Self::composed());
        }
        let mut stages: Vec<Box<dyn Detector>> = Vec::new();
        for part in spec.split('+') {
            let stage: Box<dyn Detector> = match part {
                "degree" => Box::new(DegreeOutlierDetector::default()),
                "distribution" => Box::new(DistributionDetector::kl()),
                "chi2" => Box::new(DistributionDetector::chi2()),
                "spectral" => Box::new(SpectralDetector::default()),
                other => return Err(format!("unknown detector `{other}` in policy spec")),
            };
            stages.push(stage);
        }
        Ok(Self { stages, name: spec.to_string() })
    }

    /// The built-in policy specs the attack × defense matrix sweeps.
    pub fn matrix_specs() -> [&'static str; 5] {
        ["off", "degree", "distribution", "spectral", "composed"]
    }

    /// The spec string this policy was built from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of detector stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True for the `off` policy.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Runs every stage in order, scrubbing between stages; returns the
    /// final (shadow-banned) world and one report per stage.
    pub fn run(&self, data: &Dataset) -> (Dataset, Vec<DetectionReport>) {
        let _span = telemetry::span("shadow_ban");
        let mut world = data.clone();
        let mut reports = Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            let report = stage.detect(&world);
            BANNED_ACCOUNTS.add(report.banned.len() as u64);
            if !report.banned.is_empty() {
                world = scrub(&world, &report.banned);
            }
            reports.push(report);
        }
        (world, reports)
    }
}

/// Replays a game with the policy's moderation applied between the players'
/// moves and the victim's retraining; returns the outcome and the per-stage
/// reports.
pub fn run_defended_game_with(
    base: &Dataset,
    market: &msopds_recdata::Market,
    method: crate::game::AttackMethod,
    cfg: &crate::game::GameConfig,
    policy: &ShadowBanPolicy,
) -> (crate::game::GameOutcome, Vec<DetectionReport>) {
    let _span = telemetry::span("policy_defended_game");
    let played = crate::game::play_world(base, market, method, cfg);
    let (moderated, reports) = policy.run(&played.world);
    let outcome = crate::game::score_world(&moderated, market, method, cfg, &played);
    (outcome, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msopds_recdata::{DatasetSpec, PoisonAction};

    fn clean() -> Dataset {
        DatasetSpec::micro().generate(3)
    }

    /// A blatant flood burst: each fake rates 40 items 5★ — far above the
    /// organic degree distribution and rank-one in item space.
    fn burst_world(n_fakes: usize) -> Dataset {
        let mut data = clean();
        let fakes = data.add_fake_users(n_fakes);
        let mut actions = Vec::new();
        for &f in &fakes {
            for item in 0..40u32 {
                actions.push(PoisonAction::Rating { user: f as u32, item, value: 5.0 });
            }
        }
        data.apply_poison(&actions)
    }

    #[test]
    fn degree_detector_flags_flood_bursts() {
        let world = burst_world(6);
        let report = DegreeOutlierDetector::default().detect(&world);
        assert!(!report.banned.is_empty(), "flood fakes should be degree outliers");
        assert!(report.banned.iter().all(|&u| world.is_fake(u)), "{:?}", report.banned);
    }

    #[test]
    fn spectral_detector_flags_flood_bursts() {
        let world = burst_world(6);
        let report = SpectralDetector::default().detect(&world);
        assert!(!report.banned.is_empty(), "rank-one floods should stand out spectrally");
        assert!(report.banned.iter().all(|&u| world.is_fake(u)), "{:?}", report.banned);
    }

    #[test]
    fn detectors_pass_clean_world() {
        let data = clean();
        for spec in ["degree", "distribution", "chi2", "spectral"] {
            let policy = ShadowBanPolicy::from_spec(spec).unwrap();
            let (_, reports) = policy.run(&data);
            assert!(
                reports[0].banned.is_empty(),
                "{spec} flagged {:?} on a clean world",
                reports[0].banned
            );
        }
    }

    #[test]
    fn off_policy_is_identity() {
        let world = burst_world(4);
        let (out, reports) = ShadowBanPolicy::off().run(&world);
        assert!(reports.is_empty());
        assert_eq!(out.ratings.len(), world.ratings.len());
    }

    #[test]
    fn composed_policy_reports_every_stage() {
        let world = burst_world(5);
        let (_, reports) = ShadowBanPolicy::composed().run(&world);
        assert_eq!(reports.len(), 3);
        assert_eq!(
            reports.iter().map(|r| r.detector.as_str()).collect::<Vec<_>>(),
            vec!["degree", "distribution", "spectral"]
        );
    }

    #[test]
    fn from_spec_rejects_unknown_stage() {
        assert!(ShadowBanPolicy::from_spec("degree+bogus").is_err());
    }

    #[test]
    fn reports_round_trip_through_serde() {
        let world = burst_world(3);
        let report = DegreeOutlierDetector::default().detect(&world);
        let json = serde_json::to_string(&report).unwrap();
        let back: DetectionReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
