//! Property suites for the detector zoo (ISSUE satellite 2).
//!
//! Four families of invariants, each exercised with proptest over seeds and
//! detector parameters:
//!
//! 1. **Shadow-ban idempotence** — running any policy on its own scrubbed
//!    output bans nobody (the fixed-point loop makes this structural, but the
//!    property pins it against regressions in scrub/scoring).
//! 2. **Clean-world safety** — default thresholds produce zero false
//!    positives on organic replay worlds across seeds and scales.
//! 3. **Permutation invariance** — relabeling users permutes the ban set
//!    exactly; detectors may only depend on per-user statistics, never on
//!    user-id order.
//! 4. **Budget conservation** — fake-user injection adds exactly the budget
//!    the `IaContext` resolves to, and scrubbing the full fake set restores
//!    the organic rating count.

use msopds_attacks::common::{inject_fakes, IaContext};
use msopds_gameplay::{
    DegreeOutlierDetector, Detector, DistributionDetector, ShadowBanPolicy, SpectralDetector,
};
use msopds_het_graph::CsrGraph;
use msopds_recdata::{Dataset, DatasetSpec, PoisonAction, Rating, RatingMatrix};
use proptest::prelude::*;

fn clean_world(seed: u64) -> Dataset {
    DatasetSpec::micro().generate(seed)
}

/// A blatant flood burst on top of a clean world: `n_fakes` accounts each
/// rate items `0..width` at 5★.
fn flood_world(seed: u64, n_fakes: usize, width: u32) -> Dataset {
    let mut data = clean_world(seed);
    let fakes = data.add_fake_users(n_fakes);
    let mut actions = Vec::new();
    for &f in &fakes {
        for item in 0..width {
            actions.push(PoisonAction::Rating { user: f as u32, item, value: 5.0 });
        }
    }
    data.apply_poison(&actions)
}

/// Rebuilds `data` with every user id `u` mapped to `perm[u]`.
///
/// `perm` must be a permutation of `0..n_users`. Fake-user bookkeeping is
/// dropped (`n_real_users` = all users): detectors never consult it, and the
/// permuted world would not keep fakes in a contiguous tail anyway.
fn permute_users(data: &Dataset, perm: &[usize]) -> Dataset {
    let n_users = data.ratings.n_users();
    assert_eq!(perm.len(), n_users);
    let ratings: Vec<Rating> = data
        .ratings
        .ratings()
        .iter()
        .map(|r| Rating { user: perm[r.user as usize] as u32, ..*r })
        .collect();
    let matrix = RatingMatrix::from_ratings(n_users, data.ratings.n_items(), &ratings);
    let social_edges: Vec<(usize, usize)> = data
        .social
        .edges()
        .into_iter()
        .map(|(a, b)| (perm[a], perm[b]))
        .collect();
    let social = CsrGraph::from_edges(n_users, &social_edges);
    let mut permuted = Dataset::new(
        format!("{}-permuted", data.name),
        matrix,
        social,
        data.item_graph.clone(),
    );
    permuted.n_real_users = n_users;
    permuted
}

/// An arbitrary permutation of `0..n` derived from proptest-supplied swaps.
fn permutation(n: usize, swaps: &[(usize, usize)]) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for &(a, b) in swaps {
        perm.swap(a % n, b % n);
    }
    perm
}

fn all_detectors() -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(DegreeOutlierDetector::default()),
        Box::new(DistributionDetector::kl()),
        Box::new(DistributionDetector::chi2()),
        Box::new(SpectralDetector::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// 1. Idempotence: scrub(world) is a fixed point of every policy.
    #[test]
    fn shadow_ban_is_idempotent(seed in 0u64..64, n_fakes in 1usize..8) {
        let world = flood_world(seed, n_fakes, 40);
        for spec in ShadowBanPolicy::matrix_specs() {
            let policy = ShadowBanPolicy::from_spec(spec).unwrap();
            let (scrubbed, _) = policy.run(&world);
            let (rescrubbed, reports) = policy.run(&scrubbed);
            for r in &reports {
                prop_assert!(
                    r.banned.is_empty(),
                    "{spec}/{} re-banned {:?} on its own output",
                    r.detector,
                    r.banned
                );
            }
            prop_assert_eq!(rescrubbed.ratings.len(), scrubbed.ratings.len());
        }
    }

    /// 2. Clean-world safety: defaults never flag organic users.
    #[test]
    fn no_false_positives_on_clean_worlds(seed in 0u64..64) {
        let world = clean_world(seed);
        for det in all_detectors() {
            let report = det.detect(&world);
            prop_assert!(
                report.banned.is_empty(),
                "{} flagged {:?} on clean seed {seed}",
                report.detector,
                report.banned
            );
        }
    }

    /// 3. Permutation invariance: bans follow the relabeling exactly.
    #[test]
    fn ban_set_is_invariant_to_user_permutation(
        seed in 0u64..16,
        n_fakes in 2usize..6,
        swaps in proptest::collection::vec((0usize..1000, 0usize..1000), 0..40),
    ) {
        let world = flood_world(seed, n_fakes, 40);
        let perm = permutation(world.ratings.n_users(), &swaps);
        let permuted = permute_users(&world, &perm);
        for det in all_detectors() {
            let base = det.detect(&world);
            let shuffled = det.detect(&permuted);
            let mut mapped: Vec<usize> = base.banned.iter().map(|&u| perm[u]).collect();
            mapped.sort_unstable();
            let mut got = shuffled.banned.clone();
            got.sort_unstable();
            prop_assert_eq!(
                mapped,
                got,
                "{} ban set did not commute with the permutation",
                base.detector
            );
        }
    }

    /// 4. Budget conservation: injection adds exactly the resolved budget,
    /// and scrubbing every fake restores the organic rating count.
    #[test]
    fn fake_injection_conserves_budget(seed in 0u64..32, b in 1usize..10, fillers in 0usize..6) {
        let mut data = clean_world(seed);
        let organic_users = data.n_real_users;
        let organic_ratings = data.ratings.len();

        let ctx = IaContext { b, fillers_per_fake: fillers, candidate_pool: 8, seed };
        let n_fake = ctx.fake_count(organic_users);
        let (fakes, fixed) = inject_fakes(&mut data, &ctx, 0);
        prop_assert_eq!(fakes.len(), n_fake);
        prop_assert_eq!(fixed.len(), n_fake);
        prop_assert!(fakes.iter().all(|&f| data.is_fake(f)));

        // Give every fake its filler budget on distinct non-target items.
        let mut actions = fixed;
        for (fi, &f) in fakes.iter().enumerate() {
            for j in 0..fillers {
                let item = 1 + ((fi * fillers + j) % (data.ratings.n_items() - 1));
                actions.push(PoisonAction::Rating {
                    user: f as u32,
                    item: item as u32,
                    value: 4.0,
                });
            }
        }
        let poisoned = data.apply_poison(&actions);
        prop_assert_eq!(
            poisoned.ratings.len(),
            organic_ratings + n_fake * (1 + fillers),
            "each fake contributes exactly 1 target rating + fillers"
        );

        // Scrubbing the complete fake set is exact: organic ratings survive.
        let all_fakes: Vec<usize> = (organic_users..poisoned.n_users()).collect();
        let scrubbed = msopds_gameplay::defense::scrub(&poisoned, &all_fakes);
        prop_assert_eq!(scrubbed.ratings.len(), organic_ratings);
    }
}

/// Non-proptest spot check: the composed policy's ban counts are stable
/// under repeated runs (determinism across invocations in one process).
#[test]
fn composed_policy_is_deterministic() {
    let world = flood_world(11, 5, 40);
    let (_, first) = ShadowBanPolicy::composed().run(&world);
    let (_, second) = ShadowBanPolicy::composed().run(&world);
    assert_eq!(first, second);
}
