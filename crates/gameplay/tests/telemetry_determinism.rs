//! End-to-end determinism: running the full multiplayer game with telemetry
//! recording enabled must produce bit-identical outcomes to running it with
//! recording off. Instrumentation observes the computation; it must never
//! perturb it.

use msopds_attacks::Baseline;
use msopds_autograd::HvpMode;
use msopds_core::{ActionToggles, MsoConfig, PlannerConfig};
use msopds_gameplay::{run_game, AttackMethod, GameConfig};
use msopds_recdata::{sample_market, Dataset, DatasetSpec, DemographicsSpec, Market};
use msopds_recsys::pds::PdsConfig;
use msopds_recsys::HetRecConfig;
use msopds_telemetry as telemetry;
use rand::SeedableRng;

fn quick_cfg() -> GameConfig {
    let planner = PlannerConfig {
        mso: MsoConfig { iters: 2, cg_iters: 2, hvp_mode: HvpMode::Exact, ..Default::default() },
        pds: PdsConfig { inner_steps: 2, ..Default::default() },
    };
    GameConfig {
        victim: HetRecConfig { epochs: 15, dim: 8, attention: false, ..Default::default() },
        planner,
        opponent_planner: planner,
        attacker_b: 3,
        n_opponents: 1,
        opponent_b: 2,
        scale: 8.0,
        seed: 1,
        kernel_threads: 0,
    }
}

fn setup() -> (Dataset, Market) {
    let data = DatasetSpec::micro().generate(6);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let market = sample_market(&data, &DemographicsSpec::default().scaled(8.0), 2, &mut rng);
    (data, market)
}

/// The planner-driven attacker exercises every instrumented layer: tape ops,
/// pooled kernels, cached adjacency tensors, CG, the unrolled PDS, and the
/// game protocol itself. Bit-identical outcomes with recording on and off
/// prove the telemetry layer is purely observational.
#[test]
fn telemetry_recording_does_not_perturb_outcomes() {
    let (data, market) = setup();
    let method = AttackMethod::Msopds(ActionToggles::all());
    let cfg = quick_cfg();

    telemetry::set_enabled(false);
    telemetry::reset();
    let off = run_game(&data, &market, method, &cfg);

    telemetry::set_enabled(true);
    telemetry::reset();
    let on = run_game(&data, &market, method, &cfg);
    let report = telemetry::report();
    telemetry::set_enabled(false);
    telemetry::reset();

    assert_eq!(off.avg_rating.to_bits(), on.avg_rating.to_bits(), "r̄ must be bit-identical");
    assert_eq!(
        off.hit_rate_at_3.to_bits(),
        on.hit_rate_at_3.to_bits(),
        "HR@3 must be bit-identical"
    );
    assert_eq!(off.victim_rmse.to_bits(), on.victim_rmse.to_bits());
    assert_eq!(off.attacker_actions, on.attacker_actions);
    assert_eq!(off.opponent_actions, on.opponent_actions);

    // The instrumented run actually recorded the end-to-end trace.
    assert!(report.span("game").is_some(), "game span missing");
    assert!(report.span("game/attacker_plan").is_some(), "attacker phase missing");
    assert!(report.span("game/victim_fit").is_some(), "victim fit missing");
    assert!(
        report.counter("autograd.tape.ops").is_some_and(|c| c.value > 0),
        "tape ops counter empty"
    );
    assert!(
        report.counter("recsys.pds.unroll_steps").is_some_and(|c| c.value > 0),
        "unroll counter empty"
    );
}

/// Same invariant for a cheap baseline attacker (no planner): the victim-fit
/// and defense paths alone must also be unperturbed by recording.
#[test]
fn baseline_game_is_deterministic_under_recording() {
    let (data, market) = setup();
    let method = AttackMethod::Baseline(Baseline::Random);
    let cfg = quick_cfg();

    telemetry::set_enabled(false);
    telemetry::reset();
    let off = run_game(&data, &market, method, &cfg);

    telemetry::set_enabled(true);
    telemetry::reset();
    let on = run_game(&data, &market, method, &cfg);
    telemetry::set_enabled(false);
    telemetry::reset();

    assert_eq!(off.avg_rating.to_bits(), on.avg_rating.to_bits());
    assert_eq!(off.hit_rate_at_3.to_bits(), on.hit_rate_at_3.to_bits());
    assert_eq!(off.attacker_actions, on.attacker_actions);
}
