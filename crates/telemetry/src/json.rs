//! Hand-rolled JSON writer and minimal parser for the metrics schema.
//!
//! The repo keeps external dependencies out of library crates, so the sink
//! writes JSON by hand and the round-trip tests parse it back with a small
//! recursive-descent reader rather than serde. Only the subset the metrics
//! schema needs is supported: objects, arrays, strings, and numbers.

/// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
pub(crate) fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number. `{:?}` gives the shortest representation
/// that round-trips through `f64` parsing; non-finite values (not valid
/// JSON) are written as `null`.
pub(crate) fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

/// Cursor over JSON input for the minimal recursive-descent parser.
pub(crate) struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(input: &'a str) -> Self {
        Self { bytes: input.as_bytes(), pos: 0 }
    }

    pub(crate) fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    /// Consumes `c` (after whitespace) or errors.
    pub(crate) fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.pos,
                self.bytes.get(self.pos).map(|&b| b as char)
            ))
        }
    }

    /// Consumes `c` if it is next (after whitespace); reports whether it did.
    pub(crate) fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Parses a JSON string literal, unescaping the subset the writer emits.
    pub(crate) fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        }
                        other => return Err(format!("unsupported escape '\\{}'", other as char)),
                    }
                }
                b => {
                    // Re-assemble multi-byte UTF-8 sequences byte by byte.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self.bytes.get(start..start + len).ok_or("truncated UTF-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos = start + len;
                }
            }
        }
    }

    /// Parses a JSON number as `f64`.
    pub(crate) fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>().map_err(|e| format!("bad number {text:?}: {e}"))
    }

    /// Parses a non-negative JSON integer exactly (no f64 round-trip, so
    /// counter values above 2^53 survive).
    pub(crate) fn unsigned(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<u64>().map_err(|e| format!("bad integer {text:?}: {e}"))
    }

    /// True when only whitespace remains.
    pub(crate) fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.bytes.len()
    }
}
