//! Snapshot report: span/counter/gauge rows plus the JSON and tree sinks.

use crate::json::{write_f64, write_str, Parser};

/// Aggregate for one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRow {
    /// `/`-joined stack of span names, e.g. `mso/iter/cg`.
    pub path: String,
    /// Number of times this exact path was entered and exited.
    pub count: u64,
    /// Total wall-clock nanoseconds across all entries.
    pub total_ns: u64,
}

/// Snapshot of one counter.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterRow {
    /// Counter name, e.g. `autograd.pool.hits`.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// Snapshot of one gauge.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeRow {
    /// Gauge name, e.g. `autograd.cg.last_residual`.
    pub name: String,
    /// Last stored value.
    pub value: f64,
}

/// A point-in-time snapshot of all metrics, produced by [`crate::report`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsReport {
    /// Span aggregates sorted by path.
    pub spans: Vec<SpanRow>,
    /// Counters sorted by name.
    pub counters: Vec<CounterRow>,
    /// Gauges sorted by name.
    pub gauges: Vec<GaugeRow>,
}

impl MetricsReport {
    /// The span row for `path`, if recorded.
    pub fn span(&self, path: &str) -> Option<&SpanRow> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// The counter row for `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<&CounterRow> {
        self.counters.iter().find(|c| c.name == name)
    }

    /// The gauge row for `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<&GaugeRow> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// Serializes to the machine-readable JSON schema:
    ///
    /// ```json
    /// {
    ///   "spans":    [{"path": "...", "count": 1, "total_ns": 123}],
    ///   "counters": [{"name": "...", "value": 42}],
    ///   "gauges":   [{"name": "...", "value": 0.5}]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"path\": ");
            write_str(&mut out, &s.path);
            out.push_str(&format!(", \"count\": {}, \"total_ns\": {}}}", s.count, s.total_ns));
        }
        out.push_str("\n  ],\n  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"name\": ");
            write_str(&mut out, &c.name);
            out.push_str(&format!(", \"value\": {}}}", c.value));
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        for (i, g) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"name\": ");
            write_str(&mut out, &g.name);
            out.push_str(", \"value\": ");
            write_f64(&mut out, g.value);
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses the schema emitted by [`Self::to_json`] without serde.
    pub fn from_json(input: &str) -> Result<Self, String> {
        let mut p = Parser::new(input);
        let mut report = MetricsReport::default();
        p.expect(b'{')?;
        if !p.eat(b'}') {
            loop {
                let key = p.string()?;
                p.expect(b':')?;
                p.expect(b'[')?;
                if !p.eat(b']') {
                    loop {
                        match key.as_str() {
                            "spans" => report.spans.push(parse_span(&mut p)?),
                            "counters" => report.counters.push(parse_counter(&mut p)?),
                            "gauges" => report.gauges.push(parse_gauge(&mut p)?),
                            other => return Err(format!("unknown section {other:?}")),
                        }
                        if !p.eat(b',') {
                            p.expect(b']')?;
                            break;
                        }
                    }
                }
                if !p.eat(b',') {
                    p.expect(b'}')?;
                    break;
                }
            }
        }
        if !p.at_end() {
            return Err("trailing content after report".into());
        }
        Ok(report)
    }

    /// Renders the human-readable tree summary: spans indented by depth with
    /// counts and total milliseconds, followed by counters and gauges.
    pub fn render_tree(&self) -> String {
        let mut out = String::from("telemetry summary\n");
        if self.spans.is_empty() {
            out.push_str("  (no spans recorded)\n");
        }
        for s in &self.spans {
            let depth = s.path.matches('/').count();
            let name = s.path.rsplit('/').next().unwrap_or(&s.path);
            let ms = s.total_ns as f64 / 1.0e6;
            out.push_str(&format!(
                "  {:indent$}{name}  count={}  total={ms:.3}ms\n",
                "",
                s.count,
                indent = depth * 2,
            ));
        }
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            for c in &self.counters {
                out.push_str(&format!("  {} = {}\n", c.name, c.value));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges\n");
            for g in &self.gauges {
                out.push_str(&format!("  {} = {}\n", g.name, g.value));
            }
        }
        out
    }
}

fn parse_span(p: &mut Parser<'_>) -> Result<SpanRow, String> {
    let mut row = SpanRow { path: String::new(), count: 0, total_ns: 0 };
    parse_object(p, |key, p| {
        match key {
            "path" => row.path = p.string()?,
            "count" => row.count = p.unsigned()?,
            "total_ns" => row.total_ns = p.unsigned()?,
            other => return Err(format!("unknown span field {other:?}")),
        }
        Ok(())
    })?;
    Ok(row)
}

fn parse_counter(p: &mut Parser<'_>) -> Result<CounterRow, String> {
    let mut row = CounterRow { name: String::new(), value: 0 };
    parse_object(p, |key, p| {
        match key {
            "name" => row.name = p.string()?,
            "value" => row.value = p.unsigned()?,
            other => return Err(format!("unknown counter field {other:?}")),
        }
        Ok(())
    })?;
    Ok(row)
}

fn parse_gauge(p: &mut Parser<'_>) -> Result<GaugeRow, String> {
    let mut row = GaugeRow { name: String::new(), value: 0.0 };
    parse_object(p, |key, p| {
        match key {
            "name" => row.name = p.string()?,
            "value" => row.value = p.number()?,
            other => return Err(format!("unknown gauge field {other:?}")),
        }
        Ok(())
    })?;
    Ok(row)
}

fn parse_object(
    p: &mut Parser<'_>,
    mut field: impl FnMut(&str, &mut Parser<'_>) -> Result<(), String>,
) -> Result<(), String> {
    p.expect(b'{')?;
    if p.eat(b'}') {
        return Ok(());
    }
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        field(&key, p)?;
        if !p.eat(b',') {
            p.expect(b'}')?;
            return Ok(());
        }
    }
}
