//! Hierarchical RAII spans timed on the monotonic clock.
//!
//! Each thread keeps a stack of active span names; entering a span pushes its
//! name, and dropping the guard pops it and folds the elapsed time into a
//! process-global aggregate keyed by the `/`-joined path. A loop that enters
//! the same span many times therefore produces one row with `count == n`
//! rather than `n` rows.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::report::SpanRow;

thread_local! {
    static STACK: std::cell::RefCell<Vec<&'static str>> = const { std::cell::RefCell::new(Vec::new()) };
}

#[derive(Default, Clone, Copy)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
}

fn aggregates() -> &'static Mutex<BTreeMap<String, SpanAgg>> {
    static AGG: OnceLock<Mutex<BTreeMap<String, SpanAgg>>> = OnceLock::new();
    AGG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Enters a span named `name`, timed until the returned guard drops.
///
/// When recording is off the guard is inert and the call costs one atomic
/// load. Span names are `&'static str` so the hot enter path allocates
/// nothing; the path string is only built once, at drop, on the recording
/// path.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { live: None };
    }
    let depth = STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(name);
        s.len()
    });
    SpanGuard { live: Some(LiveSpan { depth, start: Instant::now() }) }
}

/// Depth of the current thread's active span stack (0 outside any span, or
/// whenever recording is off).
pub fn current_span_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

struct LiveSpan {
    depth: usize,
    start: Instant,
}

/// RAII guard returned by [`span`]; records the elapsed time on drop.
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        let elapsed = live.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let path = STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards drop in reverse entry order under normal control flow;
            // truncating (rather than popping once) keeps the stack coherent
            // even if an inner guard leaked past its scope.
            let path = s[..live.depth.min(s.len())].join("/");
            s.truncate(live.depth.saturating_sub(1));
            path
        });
        if path.is_empty() {
            return;
        }
        let mut agg = aggregates().lock().unwrap_or_else(|e| e.into_inner());
        let entry = agg.entry(path).or_default();
        entry.count += 1;
        entry.total_ns += elapsed;
    }
}

/// Snapshot of every span aggregate, sorted by path (BTreeMap order), which
/// places children right after their parents in the tree rendering.
pub(crate) fn rows() -> Vec<SpanRow> {
    aggregates()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(path, agg)| SpanRow { path: path.clone(), count: agg.count, total_ns: agg.total_ns })
        .collect()
}

/// Clears all span aggregates.
pub(crate) fn reset_all() {
    aggregates().lock().unwrap_or_else(|e| e.into_inner()).clear();
}
