//! Process-global typed counters and gauges.
//!
//! A [`Counter`] is declared as a `static` at the instrumentation site and
//! registers itself with the global registry on first touch, so the report
//! only lists metrics the program actually exercised. Updates are relaxed
//! atomic adds — monotone non-decreasing between [`reset`](crate::reset)s,
//! which the property tests assert.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::report::{CounterRow, GaugeRow};

/// A monotone event counter (e.g. CG iterations, pool hits).
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A new counter named `name`. Declare as `static` so registration and
    /// storage are both zero-allocation.
    pub const fn new(name: &'static str) -> Self {
        Self { name, value: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    /// The counter's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` when recording is on; a single atomic-load branch otherwise.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.ensure_registered();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 when recording is on.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            counters().lock().unwrap_or_else(|e| e.into_inner()).push(self);
        }
    }
}

/// A last-value gauge (e.g. the final CG residual of the latest solve).
pub struct Gauge {
    name: &'static str,
    bits: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    /// A new gauge named `name`; declare as `static`.
    pub const fn new(name: &'static str) -> Self {
        Self { name, bits: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    /// The gauge's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Stores `v` when recording is on.
    #[inline]
    pub fn set(&'static self, v: f64) {
        if !crate::enabled() {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            gauges().lock().unwrap_or_else(|e| e.into_inner()).push(self);
        }
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

fn counters() -> &'static Mutex<Vec<&'static Counter>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static Counter>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn gauges() -> &'static Mutex<Vec<&'static Gauge>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static Gauge>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Snapshot of every registered counter, sorted by name.
pub(crate) fn counter_rows() -> Vec<CounterRow> {
    let mut rows: Vec<CounterRow> = counters()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|c| CounterRow { name: c.name.to_string(), value: c.get() })
        .collect();
    rows.sort_by(|a, b| a.name.cmp(&b.name));
    rows
}

/// Snapshot of every registered gauge, sorted by name.
pub(crate) fn gauge_rows() -> Vec<GaugeRow> {
    let mut rows: Vec<GaugeRow> = gauges()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|g| GaugeRow { name: g.name.to_string(), value: g.get() })
        .collect();
    rows.sort_by(|a, b| a.name.cmp(&b.name));
    rows
}

/// Zeroes every registered counter and gauge.
pub(crate) fn reset_all() {
    for c in counters().lock().unwrap_or_else(|e| e.into_inner()).iter() {
        c.value.store(0, Ordering::Relaxed);
    }
    for g in gauges().lock().unwrap_or_else(|e| e.into_inner()).iter() {
        g.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}
