//! # msopds-telemetry
//!
//! Lightweight observability for the MSOPDS attack/training stack:
//! hierarchical RAII [`span`]s timed on the monotonic clock, process-global
//! typed [`Counter`]s and [`Gauge`]s, and a sink that renders either a
//! human-readable tree summary or machine-readable JSON
//! ([`MetricsReport::to_json`]).
//!
//! ## Cost model
//!
//! Recording is **off by default**. Every recording call starts with a single
//! relaxed atomic load ([`enabled`]); when disabled, that branch is the entire
//! cost, so instrumented hot paths (tape pushes, buffer-pool lookups) stay at
//! kernel speed. The `force-off` cargo feature removes even that load by
//! compiling [`enabled`] to a constant `false`.
//!
//! Recording is switched on either programmatically ([`set_enabled`]) or via
//! the `MSOPDS_METRICS` environment variable, which the first [`enabled`]
//! check reads:
//!
//! * `MSOPDS_METRICS=1` (or any value other than `0`/`off`/`false`) — record,
//!   and [`export`] prints the tree summary to stderr;
//! * `MSOPDS_METRICS=path/to/metrics.json` (any value containing `/` or
//!   ending in `.json`) — record, and [`export`] writes JSON to that path.
//!
//! ## Usage
//!
//! ```
//! use msopds_telemetry as telemetry;
//!
//! static SOLVES: telemetry::Counter = telemetry::Counter::new("demo.solves");
//!
//! telemetry::set_enabled(true);
//! {
//!     let _outer = telemetry::span("plan");
//!     let _inner = telemetry::span("solve");
//!     SOLVES.incr();
//! }
//! let report = telemetry::report();
//! if !cfg!(feature = "force-off") {
//!     assert_eq!(report.span("plan/solve").unwrap().count, 1);
//! }
//! # telemetry::set_enabled(false);
//! # telemetry::reset();
//! ```
//!
//! Spans aggregate per *path* (the `/`-joined stack of active span names on
//! the current thread), so a loop that enters `mso/iter` twenty times shows
//! one row with `count = 20` rather than twenty rows. All state is
//! process-global and thread-safe; per-thread span stacks keep nesting
//! integrity without cross-thread locking on the enter path.

#![warn(missing_docs)]

mod counter;
mod json;
mod report;
mod span;

use std::path::{Path, PathBuf};
#[cfg(not(feature = "force-off"))]
use std::sync::atomic::{AtomicU8, Ordering};

pub use counter::{Counter, Gauge};
pub use report::{CounterRow, GaugeRow, MetricsReport, SpanRow};
pub use span::{current_span_depth, span, SpanGuard};

/// Tri-state recording flag: 0 = off, 1 = on, 2 = not yet initialized from
/// the environment.
#[cfg(not(feature = "force-off"))]
static STATE: AtomicU8 = AtomicU8::new(2);

/// True when telemetry recording is on.
///
/// The first call reads `MSOPDS_METRICS` (see the crate docs); later calls
/// are a single relaxed atomic load. With the `force-off` feature this is a
/// constant `false` and the compiler removes instrumented code entirely.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "force-off")]
    {
        false
    }
    #[cfg(not(feature = "force-off"))]
    {
        match STATE.load(Ordering::Relaxed) {
            0 => false,
            1 => true,
            _ => init_from_env(),
        }
    }
}

#[cfg(not(feature = "force-off"))]
#[cold]
fn init_from_env() -> bool {
    let on = env_value().is_some();
    STATE.store(on as u8, Ordering::Relaxed);
    on
}

/// Turns recording on or off, overriding the environment. A no-op under the
/// `force-off` feature.
pub fn set_enabled(on: bool) {
    let _ = on;
    #[cfg(not(feature = "force-off"))]
    STATE.store(on as u8, Ordering::Relaxed);
}

/// The `MSOPDS_METRICS` value when it requests recording, else `None`.
fn env_value() -> Option<String> {
    let v = std::env::var("MSOPDS_METRICS").ok()?;
    let t = v.trim();
    if t.is_empty() || t == "0" || t.eq_ignore_ascii_case("off") || t.eq_ignore_ascii_case("false")
    {
        return None;
    }
    Some(t.to_string())
}

/// The JSON output path requested by `MSOPDS_METRICS`, when its value looks
/// like a file path (contains `/` or ends in `.json`).
pub fn env_metrics_path() -> Option<PathBuf> {
    let v = env_value()?;
    if v.contains('/') || v.ends_with(".json") {
        Some(PathBuf::from(v))
    } else {
        None
    }
}

/// Zeroes every counter and gauge and clears all span aggregates.
///
/// Counters stay registered (they are `static`s), so a later [`report`] shows
/// them at zero rather than dropping them.
pub fn reset() {
    counter::reset_all();
    span::reset_all();
}

/// Snapshots the current metrics into a [`MetricsReport`].
pub fn report() -> MetricsReport {
    MetricsReport {
        spans: span::rows(),
        counters: counter::counter_rows(),
        gauges: counter::gauge_rows(),
    }
}

/// Exports the current metrics if recording is on: JSON to `out` (falling
/// back to the `MSOPDS_METRICS` path), or the human-readable tree to stderr
/// when no path is configured. Does nothing when recording is off.
pub fn export(out: Option<&Path>) {
    if !enabled() {
        return;
    }
    let report = report();
    let path = out.map(Path::to_path_buf).or_else(env_metrics_path);
    match path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, report.to_json()) {
                eprintln!("telemetry: failed to write {}: {e}", path.display());
            } else {
                eprintln!("telemetry: metrics written to {}", path.display());
            }
        }
        None => eprintln!("{}", report.render_tree()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recording flag and registries are process-global; tests in this
    // crate serialize on this lock before toggling them.
    pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        reset();
        static C: Counter = Counter::new("test.disabled");
        C.add(5);
        {
            let _s = span("test-disabled-span");
            assert_eq!(current_span_depth(), 0);
        }
        let r = report();
        assert!(r.span("test-disabled-span").is_none());
        assert!(r.counter("test.disabled").is_none());
    }

    #[cfg(not(feature = "force-off"))]
    #[test]
    fn enabled_round_trip() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        reset();
        static C: Counter = Counter::new("test.enabled");
        static G: Gauge = Gauge::new("test.gauge");
        C.add(2);
        C.incr();
        G.set(0.25);
        {
            let _outer = span("outer");
            let _inner = span("inner");
            assert_eq!(current_span_depth(), 2);
        }
        let r = report();
        assert_eq!(r.counter("test.enabled").unwrap().value, 3);
        assert_eq!(r.gauge("test.gauge").unwrap().value, 0.25);
        assert_eq!(r.span("outer").unwrap().count, 1);
        assert_eq!(r.span("outer/inner").unwrap().count, 1);
        set_enabled(false);
        reset();
    }

    #[cfg(feature = "force-off")]
    #[test]
    fn force_off_ignores_set_enabled() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        assert!(!enabled());
        static C: Counter = Counter::new("test.force-off");
        C.incr();
        let _s = span("forced-off");
        assert_eq!(current_span_depth(), 0);
        assert!(report().counter("test.force-off").is_none());
    }
}
