//! Unit + property tests for the telemetry subsystem: span nesting integrity,
//! counter monotonicity, and JSON sink round-trips through the crate's own
//! serde-free hand parser.

use msopds_telemetry as telemetry;
use proptest::prelude::*;
use telemetry::{CounterRow, GaugeRow, MetricsReport, SpanRow};

/// Recording state and the metric registries are process-global; every test
/// that toggles or reads them serializes on this lock.
#[cfg(not(feature = "force-off"))]
static GLOBAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(not(feature = "force-off"))]
fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Span nesting integrity
// ---------------------------------------------------------------------------

/// Enters `names[0] / names[1] / …` recursively, asserting the tracked depth
/// matches the call structure at every level, and returns the deepest depth
/// observed.
#[cfg(not(feature = "force-off"))]
fn nest(names: &[&'static str], base_depth: usize) -> usize {
    let Some((head, rest)) = names.split_first() else {
        return base_depth;
    };
    let _guard = telemetry::span(head);
    assert_eq!(telemetry::current_span_depth(), base_depth + 1, "depth tracks entry");
    let deepest = nest(rest, base_depth + 1);
    assert_eq!(telemetry::current_span_depth(), base_depth + 1, "children fully unwound");
    deepest
}

#[cfg(not(feature = "force-off"))]
#[test]
fn span_tree_depth_matches_call_structure() {
    let _l = lock();
    telemetry::set_enabled(true);
    telemetry::reset();
    let deepest = nest(&["a", "b", "c", "d"], 0);
    assert_eq!(deepest, 4);
    assert_eq!(telemetry::current_span_depth(), 0, "every start has a matching end");
    let r = telemetry::report();
    for path in ["a", "a/b", "a/b/c", "a/b/c/d"] {
        assert_eq!(r.span(path).map(|s| s.count), Some(1), "missing or miscounted {path}");
    }
    telemetry::set_enabled(false);
    telemetry::reset();
}

#[cfg(not(feature = "force-off"))]
#[test]
fn sibling_spans_aggregate_per_path() {
    let _l = lock();
    telemetry::set_enabled(true);
    telemetry::reset();
    {
        let _outer = telemetry::span("loop");
        for _ in 0..5 {
            let _inner = telemetry::span("body");
        }
    }
    let r = telemetry::report();
    assert_eq!(r.span("loop").unwrap().count, 1);
    assert_eq!(r.span("loop/body").unwrap().count, 5, "loop entries fold into one row");
    assert!(r.span("body").is_none(), "child path is always parent-qualified");
    telemetry::set_enabled(false);
    telemetry::reset();
}

#[cfg(not(feature = "force-off"))]
#[test]
fn span_timing_is_monotonic_and_contained() {
    let _l = lock();
    telemetry::set_enabled(true);
    telemetry::reset();
    {
        let _outer = telemetry::span("outer");
        let _inner = telemetry::span("inner");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let r = telemetry::report();
    let outer = r.span("outer").unwrap().total_ns;
    let inner = r.span("outer/inner").unwrap().total_ns;
    assert!(inner >= 2_000_000, "sleep must register: {inner}ns");
    assert!(outer >= inner, "parent wall-clock contains the child: {outer} < {inner}");
    telemetry::set_enabled(false);
    telemetry::reset();
}

#[cfg(not(feature = "force-off"))]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary nesting depths always unwind to zero, with one aggregate row
    /// per distinct prefix path.
    #[test]
    fn random_nesting_depth_unwinds(depth in 0usize..8) {
        const NAMES: [&str; 8] = ["s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7"];
        let _l = lock();
        telemetry::set_enabled(true);
        telemetry::reset();
        let deepest = nest(&NAMES[..depth], 0);
        prop_assert_eq!(deepest, depth);
        prop_assert_eq!(telemetry::current_span_depth(), 0);
        prop_assert_eq!(telemetry::report().spans.len(), depth);
        telemetry::set_enabled(false);
        telemetry::reset();
    }

    /// Counters only move up, by exactly the amount added.
    #[test]
    fn counter_is_monotone(adds in proptest::collection::vec(0u64..1000, 0..40)) {
        static C: telemetry::Counter = telemetry::Counter::new("test.monotone");
        let _l = lock();
        telemetry::set_enabled(true);
        telemetry::reset();
        let mut expected = 0u64;
        let mut last = C.get();
        for add in adds {
            C.add(add);
            expected += add;
            let now = C.get();
            prop_assert!(now >= last, "counter moved backwards: {last} -> {now}");
            prop_assert_eq!(now, expected);
            last = now;
        }
        telemetry::set_enabled(false);
        telemetry::reset();
    }
}

// ---------------------------------------------------------------------------
// JSON sink round-trips (hand parser; no recording required, so these also
// run under --features force-off)
// ---------------------------------------------------------------------------

fn row_strategy() -> impl Strategy<Value = MetricsReport> {
    let path = proptest::collection::vec(0usize..5, 1..4)
        .prop_map(|segs| segs.iter().map(|s| format!("seg{s}")).collect::<Vec<_>>().join("/"));
    let spans = proptest::collection::vec(
        (path, 0u64..10_000, 0u64..1_000_000_000).prop_map(|(path, count, total_ns)| SpanRow {
            path,
            count,
            total_ns,
        }),
        0..6,
    );
    let counters = proptest::collection::vec(
        (0usize..6, 0u64..u64::MAX / 2)
            .prop_map(|(n, value)| CounterRow { name: format!("counter.{n}"), value }),
        0..6,
    );
    let gauges = proptest::collection::vec(
        (0usize..6, (0i64..2_000_000).prop_map(|m| m as f64 / 1024.0 - 500.0))
            .prop_map(|(n, value)| GaugeRow { name: format!("gauge.{n}"), value }),
        0..6,
    );
    (spans, counters, gauges).prop_map(|(spans, counters, gauges)| MetricsReport {
        spans,
        counters,
        gauges,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// to_json → from_json is the identity, including exact f64 gauge bits.
    #[test]
    fn json_round_trips(report in row_strategy()) {
        let json = report.to_json();
        let parsed = MetricsReport::from_json(&json).expect("parse own output");
        prop_assert_eq!(&parsed, &report);
        // And a second trip through the writer is textually stable.
        prop_assert_eq!(parsed.to_json(), json);
    }
}

#[test]
fn json_escapes_special_characters() {
    let report = MetricsReport {
        spans: vec![SpanRow { path: "we\"ird\\name\nwith\ttabs".into(), count: 1, total_ns: 2 }],
        counters: vec![CounterRow { name: "unicode.τ∆".into(), value: 7 }],
        gauges: vec![GaugeRow { name: "g".into(), value: 0.1 + 0.2 }],
    };
    let parsed = MetricsReport::from_json(&report.to_json()).unwrap();
    assert_eq!(parsed, report);
}

#[test]
fn json_rejects_malformed_input() {
    assert!(MetricsReport::from_json("").is_err());
    assert!(MetricsReport::from_json("{\"spans\": [").is_err());
    assert!(MetricsReport::from_json("{\"bogus\": [{}]}").is_err());
    assert!(MetricsReport::from_json("{} trailing").is_err());
}

#[test]
fn empty_report_round_trips() {
    let report = MetricsReport::default();
    let parsed = MetricsReport::from_json(&report.to_json()).unwrap();
    assert_eq!(parsed, report);
    assert!(report.render_tree().contains("no spans recorded"));
}

#[cfg(not(feature = "force-off"))]
#[test]
fn recorded_report_round_trips_and_renders() {
    static HITS: telemetry::Counter = telemetry::Counter::new("test.rt.hits");
    static LOAD: telemetry::Gauge = telemetry::Gauge::new("test.rt.load");
    let _l = lock();
    telemetry::set_enabled(true);
    telemetry::reset();
    {
        let _a = telemetry::span("phase");
        let _b = telemetry::span("step");
        HITS.add(3);
        LOAD.set(0.625);
    }
    let report = telemetry::report();
    let parsed = MetricsReport::from_json(&report.to_json()).unwrap();
    assert_eq!(parsed.counter("test.rt.hits").unwrap().value, 3);
    assert_eq!(parsed.gauge("test.rt.load").unwrap().value, 0.625);
    assert_eq!(parsed.span("phase/step").unwrap().count, 1);
    let tree = report.render_tree();
    assert!(tree.contains("phase"), "tree lists spans:\n{tree}");
    assert!(tree.contains("test.rt.hits = 3"), "tree lists counters:\n{tree}");
    telemetry::set_enabled(false);
    telemetry::reset();
}
