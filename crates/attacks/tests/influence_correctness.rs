//! Influence-estimation correctness: the CG-solved Newton direction must
//! agree with brute-force references on a tiny world.
//!
//! Two references are used:
//! * an **explicit dense solve** — the Hessian `H = ∂²L/∂X̂²` is
//!   materialized column-by-column with the same tape HVP idiom the CG
//!   apply uses, and `(H + λI)s = g` is solved by Gaussian elimination;
//! * **brute-force leave-one-rating-out retraining** — the surrogate is
//!   retrained with each candidate rating individually perturbed (central
//!   difference on its X̂ entry) and the measured IA-loss deltas give the
//!   reference ranking.

use msopds_attacks::common::{inject_fakes, IaContext};
use msopds_attacks::{influence_scores, InfluenceConfig};
use msopds_autograd::{Tape, Tensor};
use msopds_recdata::{Dataset, DatasetSpec, PoisonAction};
use msopds_recsys::losses::ia_loss;
use msopds_recsys::pds::{build_pds, PdsConfig, PlayerInput};

const INNER_STEPS: usize = 2;

/// Tiny fixture: micro world with one injected probe fake and a small pool.
fn fixture() -> (Dataset, usize, Vec<usize>, usize) {
    let mut data = DatasetSpec::micro().generate(7);
    let ctx = IaContext { b: 2, fillers_per_fake: 3, candidate_pool: 6, seed: 0 };
    let target = 0;
    let (fakes, _) = inject_fakes(&mut data, &ctx, target);
    let pool: Vec<usize> = vec![1, 2, 3, 5, 8, 13];
    (data, fakes[0], pool, target)
}

fn probe_candidates(probe: usize, pool: &[usize]) -> Vec<PoisonAction> {
    pool.iter()
        .map(|&i| PoisonAction::Rating { user: probe as u32, item: i as u32, value: 5.0 })
        .collect()
}

/// IA loss of the surrogate retrained with importance vector `xhat`.
fn retrained_loss(data: &Dataset, probe: usize, pool: &[usize], target: usize, xhat: &[f64]) -> f64 {
    let candidates = probe_candidates(probe, pool);
    let tape = Tape::new();
    let pds = build_pds(
        &tape,
        data,
        &[PlayerInput {
            candidates: &candidates,
            xhat: Tensor::from_vec(xhat.to_vec(), &[xhat.len()]),
        }],
        &PdsConfig { inner_steps: INNER_STEPS, seed: 0, ..Default::default() },
    );
    let real_users: Vec<usize> = (0..data.n_real_users).collect();
    ia_loss(&pds.scores(), &real_users, target).item()
}

/// Gradient and explicit Hessian of the IA loss w.r.t. X̂ at zero, via the
/// same tape the attack records (HVPs on basis vectors).
fn grad_and_hessian(
    data: &Dataset,
    probe: usize,
    pool: &[usize],
    target: usize,
) -> (Vec<f64>, Vec<Vec<f64>>) {
    let candidates = probe_candidates(probe, pool);
    let p = pool.len();
    let tape = Tape::new();
    let pds = build_pds(
        &tape,
        data,
        &[PlayerInput { candidates: &candidates, xhat: Tensor::zeros(&[p]) }],
        &PdsConfig { inner_steps: INNER_STEPS, seed: 0, ..Default::default() },
    );
    let xhat = pds.xhats[0];
    let real_users: Vec<usize> = (0..data.n_real_users).collect();
    let ia = ia_loss(&pds.scores(), &real_users, target);
    let g = tape.grad_vars(ia, &[xhat])[0];
    let g_vec = g.value().to_vec();
    let mut h = Vec::with_capacity(p);
    for j in 0..p {
        let mut e = vec![0.0; p];
        e[j] = 1.0;
        let vc = tape.constant(Tensor::from_vec(e, &[p]));
        let gv = g.mul(vc).sum();
        h.push(tape.grad(gv, &[xhat]).remove(0).to_vec());
    }
    (g_vec, h)
}

/// Solves `(H + λI)s = g` by Gaussian elimination with partial pivoting.
fn dense_solve(h: &[Vec<f64>], g: &[f64], damping: f64) -> Vec<f64> {
    let n = g.len();
    let mut a: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let mut row: Vec<f64> = h[i].clone();
            row[i] += damping;
            row.push(g[i]);
            row
        })
        .collect();
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty system");
        a.swap(col, pivot);
        assert!(a[col][col].abs() > 1e-14, "singular damped Hessian");
        for row in 0..n {
            if row != col {
                let f = a[row][col] / a[col][col];
                for k in col..=n {
                    a[row][k] -= f * a[col][k];
                }
            }
        }
    }
    (0..n).map(|i| a[i][n] / a[i][i]).collect()
}

fn argsort(scores: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));
    idx
}

#[test]
fn cg_newton_direction_matches_dense_solve_to_1e6() {
    let (data, probe, pool, target) = fixture();
    let cfg = InfluenceConfig {
        inner_steps: INNER_STEPS,
        cg_iters: 50,
        cg_tol: 1e-12,
        ..Default::default()
    };
    let (scores, diag) = influence_scores(&data, probe, &pool, target, &cfg, 0);
    assert!(!diag.degraded, "tiny-world solve degraded: {diag:?}");

    let (g, h) = grad_and_hessian(&data, probe, &pool, target);
    let reference = dense_solve(&h, &g, cfg.damping);

    let scale = reference.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    for (j, (&got, &want)) in scores.iter().zip(&reference).enumerate() {
        assert!(
            (got - want).abs() <= 1e-6 * scale,
            "candidate {j}: CG {got} vs dense {want} (scale {scale})"
        );
    }
    assert_eq!(argsort(&scores), argsort(&reference), "rank ordering diverged");
}

#[test]
fn influence_ranking_matches_leave_one_out_retraining() {
    let (data, probe, pool, target) = fixture();
    // Huge damping collapses the Newton direction onto the (scaled) raw
    // gradient, which is exactly what per-rating retraining measures.
    let cfg = InfluenceConfig {
        inner_steps: INNER_STEPS,
        cg_iters: 50,
        cg_tol: 1e-12,
        damping: 1e6,
    };
    let (scores, diag) = influence_scores(&data, probe, &pool, target, &cfg, 0);
    assert!(!diag.degraded);

    // Brute force: retrain the surrogate with each candidate rating's X̂
    // entry perturbed ±ε (central difference — leave-one-out around zero).
    let eps = 1e-4;
    let p = pool.len();
    let deltas: Vec<f64> = (0..p)
        .map(|j| {
            let mut up = vec![0.0; p];
            up[j] = eps;
            let mut dn = vec![0.0; p];
            dn[j] = -eps;
            (retrained_loss(&data, probe, &pool, target, &up)
                - retrained_loss(&data, probe, &pool, target, &dn))
                / (2.0 * eps)
        })
        .collect();

    // Rank ordering must agree wherever the brute-force scores are not
    // numerically tied (gap > 1e-6).
    for a in 0..p {
        for b in 0..p {
            if deltas[a] + 1e-6 < deltas[b] {
                assert!(
                    scores[a] < scores[b],
                    "brute force ranks {} before {} ({} vs {}), influence says {} vs {}",
                    pool[a],
                    pool[b],
                    deltas[a],
                    deltas[b],
                    scores[a],
                    scores[b],
                );
            }
        }
    }
}
