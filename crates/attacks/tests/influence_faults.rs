//! CG-failure drills for the influence attack: an unusable `SolveStatus`
//! must degrade the estimate (raw-gradient ordering), never abort the run.
//!
//! Requires `--features fault-injection`; without it the whole file is
//! compiled out.
#![cfg(feature = "fault-injection")]

use std::sync::Mutex;

use msopds_attacks::common::{inject_fakes, IaContext};
use msopds_attacks::{influence_attack, influence_scores, InfluenceConfig};
use msopds_autograd::cg::SolveStatus;
use msopds_faultline as faultline;
use msopds_recdata::{DatasetSpec, PoisonAction};
use rand::SeedableRng;

/// Fault plans are process-global; drills must not overlap.
static ARMED: Mutex<()> = Mutex::new(());

fn with_plan<T>(plan: &str, f: impl FnOnce() -> T) -> T {
    let _guard = ARMED.lock().unwrap_or_else(|e| e.into_inner());
    faultline::set_plan(Some(faultline::FaultPlan::parse(plan).expect("valid plan")));
    let out = f();
    faultline::set_plan(None);
    out
}

#[test]
fn nan_rhs_degrades_scores_to_raw_gradient() {
    let mut data = DatasetSpec::micro().generate(7);
    let ctx = IaContext { b: 2, fillers_per_fake: 3, candidate_pool: 6, seed: 0 };
    let (fakes, _) = inject_fakes(&mut data, &ctx, 0);
    let pool: Vec<usize> = vec![1, 2, 3, 5, 8, 13];

    let (scores, diag) = with_plan("seed=1;cg.solve.rhs=nan@1.0", || {
        influence_scores(&data, fakes[0], &pool, 0, &InfluenceConfig::default(), 0)
    });
    assert!(diag.degraded, "NaN right-hand side must degrade the solve");
    assert_eq!(diag.status, SolveStatus::NonFiniteRhs);
    assert_eq!(scores.len(), pool.len());
    // Degraded scores are the sanitized raw gradient — always sortable.
    assert!(scores.iter().all(|s| s.is_finite()));

    // Clean control run on the same inputs is not degraded.
    let (_, clean) = influence_scores(&data, fakes[0], &pool, 0, &InfluenceConfig::default(), 0);
    assert!(!clean.degraded);
}

#[test]
fn degraded_solve_still_fills_the_attack_budget() {
    let plan = with_plan("seed=2;cg.solve.rhs=nan@1.0", || {
        let mut data = DatasetSpec::micro().generate(3);
        let ctx = IaContext { b: 3, fillers_per_fake: 4, candidate_pool: 12, seed: 1 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        influence_attack(&mut data, &ctx, 0, &InfluenceConfig::default(), &mut rng)
    });
    // The attack survives the breakdown and still emits a full-budget,
    // well-formed plan.
    let ctx = IaContext { b: 3, fillers_per_fake: 4, candidate_pool: 12, seed: 1 };
    let n_fake = ctx.fake_count(60);
    assert_eq!(plan.len(), n_fake + n_fake * ctx.fillers_per_fake);
    for a in &plan {
        match a {
            PoisonAction::Rating { value, .. } => assert!((1.0..=5.0).contains(value)),
            other => panic!("unexpected action {other:?}"),
        }
    }
}

#[test]
fn intermittent_faults_never_panic_the_attack() {
    // A 50 %-rate NaN corruption flips between degraded and clean solves;
    // every run must still produce a valid plan.
    with_plan("seed=9;cg.solve.rhs=nan@0.5", || {
        for seed in 0..4 {
            let mut data = DatasetSpec::micro().generate(seed);
            let ctx = IaContext { b: 2, fillers_per_fake: 3, candidate_pool: 8, seed };
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let plan = influence_attack(&mut data, &ctx, 1, &InfluenceConfig::default(), &mut rng);
            assert!(!plan.is_empty());
        }
    });
}
