//! S-attack (Fang et al. [52]): influence-function-based filler selection
//! against a graph-based recommender.
//!
//! The original formulates filler choice as an optimization scored by
//! influence functions. We realize the same mechanism with a one-shot
//! influence estimate: a single-step PDS surrogate is recorded with one
//! representative fake account rating every candidate item, and the gradient
//! of the IA loss with respect to those candidate entries is the influence
//! score of each item. The most negative scores (largest promotion effect)
//! are selected as fillers; filler values are drawn from the fitted normal,
//! as in the original.

use msopds_autograd::Tape;
use msopds_recdata::{Dataset, PoisonAction};
use msopds_recsys::pds::{build_pds, PdsConfig, PlayerInput};
use rand::Rng;

use crate::common::{filler_actions, fit_rating_stats, inject_fakes, IaContext};

/// Runs the S-attack: scores candidates by influence, selects the top set
/// (shared across fakes), and returns the full plan.
pub fn s_attack<R: Rng>(
    data: &mut Dataset,
    ctx: &IaContext,
    target_item: usize,
    rng: &mut R,
) -> Vec<PoisonAction> {
    let stats = fit_rating_stats(data);
    let (fakes, mut plan) = inject_fakes(data, ctx, target_item);
    let probe = *fakes.first().expect("at least one fake");

    // Candidate set: the probe fake rates every item (bounded by pool size).
    use rand::seq::SliceRandom;
    let pool: Vec<usize> = (0..data.n_items())
        .filter(|&i| i != target_item)
        .collect::<Vec<_>>()
        .choose_multiple(rng, ctx.candidate_pool.min(data.n_items().saturating_sub(1)))
        .copied()
        .collect();
    let candidates: Vec<PoisonAction> = pool
        .iter()
        .map(|&i| PoisonAction::Rating { user: probe as u32, item: i as u32, value: 5.0 })
        .collect();

    // One-shot influence: gradient of the IA loss w.r.t. the candidate
    // entries of a briefly-trained surrogate.
    let tape = Tape::new();
    let pds = build_pds(
        &tape,
        data,
        &[PlayerInput {
            candidates: &candidates,
            xhat: msopds_autograd::Tensor::zeros(&[candidates.len()]),
        }],
        &PdsConfig { inner_steps: 2, seed: ctx.seed, ..Default::default() },
    );
    let real_users: Vec<usize> = (0..data.n_real_users).collect();
    let ia = msopds_recsys::losses::ia_loss(&pds.scores(), &real_users, target_item);
    let influence = tape.grad(ia, &[pds.xhats[0]]).remove(0);

    // Most negative gradient = largest decrease of the IA loss when selected.
    let mut scored: Vec<(f64, usize)> =
        influence.data().iter().copied().zip(pool.iter().copied()).collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite influence scores"));
    let fillers: Vec<usize> = scored.iter().take(ctx.fillers_per_fake).map(|&(_, i)| i).collect();

    let chosen: Vec<Vec<usize>> = fakes.iter().map(|_| fillers.clone()).collect();
    plan.extend(filler_actions(&fakes, &chosen, stats, rng));
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use msopds_recdata::DatasetSpec;
    use rand::SeedableRng;

    #[test]
    fn s_attack_selects_shared_fillers() {
        let mut data = DatasetSpec::micro().generate(1);
        let ctx = IaContext::scaled(4, 8.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let plan = s_attack(&mut data, &ctx, 0, &mut rng);
        let n_fake = ctx.fake_count(60);
        assert_eq!(plan.len(), n_fake + n_fake * ctx.fillers_per_fake);

        // Every fake rates the same filler set.
        use std::collections::{BTreeSet, HashMap};
        let mut per_fake: HashMap<u32, BTreeSet<u32>> = HashMap::new();
        for a in &plan {
            if let PoisonAction::Rating { user, item, .. } = a {
                if *item != 0 {
                    per_fake.entry(*user).or_default().insert(*item);
                }
            }
        }
        let sets: Vec<_> = per_fake.values().collect();
        assert!(sets.windows(2).all(|w| w[0] == w[1]), "filler sets differ between fakes");
    }

    #[test]
    fn s_attack_never_rates_target_as_filler() {
        let mut data = DatasetSpec::micro().generate(2);
        let ctx = IaContext::scaled(3, 8.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let target = 7;
        let plan = s_attack(&mut data, &ctx, target, &mut rng);
        let target_ratings = plan
            .iter()
            .filter(|a| matches!(a, PoisonAction::Rating { item, .. } if *item as usize == target))
            .count();
        // Exactly the unconditional 5-star per fake, never a filler duplicate.
        assert_eq!(target_ratings, ctx.fake_count(60));
    }
}
