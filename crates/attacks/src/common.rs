//! Shared scaffolding for the Injection Attack baselines (§VI-A.5).
//!
//! All baselines operate under 𝒞_IA (eq. 4): they inject `b% · |𝒰|` fake
//! accounts, every fake gives a 5-star rating to the target item, and each
//! fake additionally rates a set of *filler items*. The baselines differ only
//! in how fillers are chosen (and, for PGA, how their values are set). Filler
//! ratings default to draws from a normal distribution fitted to the real
//! ratings, following Fang et al. [49] (§VI footnote 8).

use msopds_recdata::{Dataset, Market, PoisonAction};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Scale-aware parameters shared by every IA baseline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IaContext {
    /// Budget parameter `b`: fakes = b % of the real user count.
    pub b: usize,
    /// Filler items per fake user (paper: 100; scaled down with the data).
    pub fillers_per_fake: usize,
    /// Candidate item pool per fake for the optimization-based baselines.
    pub candidate_pool: usize,
    /// RNG seed for the attack's own randomness.
    pub seed: u64,
}

impl IaContext {
    /// Paper-shaped defaults scaled by `1/scale`.
    pub fn scaled(b: usize, scale: f64) -> Self {
        Self {
            b,
            fillers_per_fake: ((100.0 / scale).round() as usize).max(3),
            candidate_pool: ((200.0 / scale).round() as usize).max(10),
            seed: 0,
        }
    }

    /// Number of fake users for `n_real` real users.
    pub fn fake_count(&self, n_real: usize) -> usize {
        ((self.b as f64 / 100.0 * n_real as f64).ceil() as usize).max(1)
    }
}

/// Mean and standard deviation of the real ratings, used to sample filler
/// values.
#[derive(Clone, Copy, Debug)]
pub struct RatingStats {
    /// Mean star value.
    pub mean: f64,
    /// Standard deviation of star values.
    pub std: f64,
}

/// Fits [`RatingStats`] to the dataset's ratings.
pub fn fit_rating_stats(data: &Dataset) -> RatingStats {
    let ratings = data.ratings.ratings();
    assert!(!ratings.is_empty(), "cannot fit rating stats on empty data");
    let mean = ratings.iter().map(|r| r.value).sum::<f64>() / ratings.len() as f64;
    let var = ratings.iter().map(|r| (r.value - mean).powi(2)).sum::<f64>() / ratings.len() as f64;
    RatingStats { mean, std: var.sqrt().max(0.1) }
}

/// Samples a whole-star filler rating from `N(mean, std)` clamped to `[1, 5]`.
pub fn sample_filler_rating<R: Rng>(stats: RatingStats, rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (stats.mean + stats.std * z).round().clamp(1.0, 5.0)
}

/// Injects the fake accounts and their unconditional 5-star target ratings;
/// returns `(fake ids, fixed actions)`.
pub fn inject_fakes(
    data: &mut Dataset,
    ctx: &IaContext,
    target_item: usize,
) -> (Vec<usize>, Vec<PoisonAction>) {
    let n_fake = ctx.fake_count(data.n_real_users);
    let fakes = data.add_fake_users(n_fake);
    let fixed = fakes
        .iter()
        .map(|&f| PoisonAction::Rating { user: f as u32, item: target_item as u32, value: 5.0 })
        .collect();
    (fakes, fixed)
}

/// Builds filler rating actions for each fake over per-fake item choices.
pub fn filler_actions<R: Rng>(
    fakes: &[usize],
    chosen: &[Vec<usize>],
    stats: RatingStats,
    rng: &mut R,
) -> Vec<PoisonAction> {
    assert_eq!(fakes.len(), chosen.len());
    let mut out = Vec::new();
    for (&f, items) in fakes.iter().zip(chosen) {
        for &i in items {
            out.push(PoisonAction::Rating {
                user: f as u32,
                item: i as u32,
                value: sample_filler_rating(stats, rng),
            });
        }
    }
    out
}

/// The evaluation context a baseline may inspect (target, audience, pool).
/// Baselines under IA ignore opponents by definition (Table II).
#[derive(Clone, Debug)]
pub struct TargetContext<'a> {
    /// The sampled market.
    pub market: &'a Market,
}

impl TargetContext<'_> {
    /// The attacker's target item.
    pub fn target_item(&self) -> usize {
        self.market.target_item
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msopds_recdata::DatasetSpec;
    use rand::SeedableRng;

    #[test]
    fn stats_fit_reasonable() {
        let data = DatasetSpec::micro().generate(1);
        let stats = fit_rating_stats(&data);
        assert!(stats.mean > 1.0 && stats.mean < 5.0);
        assert!(stats.std > 0.0 && stats.std < 3.0);
    }

    #[test]
    fn filler_ratings_are_valid_stars() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let stats = RatingStats { mean: 3.4, std: 1.1 };
        for _ in 0..200 {
            let v = sample_filler_rating(stats, &mut rng);
            assert!((1.0..=5.0).contains(&v));
            assert_eq!(v, v.round());
        }
    }

    #[test]
    fn inject_fakes_count_scales_with_b() {
        let mut d2 = DatasetSpec::micro().generate(1);
        let mut d5 = d2.clone();
        let (f2, fixed2) = inject_fakes(&mut d2, &IaContext::scaled(2, 8.0), 0);
        let (f5, _) = inject_fakes(&mut d5, &IaContext::scaled(5, 8.0), 0);
        assert!(f5.len() > f2.len());
        assert_eq!(fixed2.len(), f2.len());
        assert_eq!(f2.len(), (0.02f64 * 60.0).ceil() as usize);
    }

    #[test]
    fn ia_context_scaling() {
        let ctx = IaContext::scaled(5, 8.0);
        assert_eq!(ctx.fillers_per_fake, 13);
        assert_eq!(ctx.candidate_pool, 25);
        let full = IaContext::scaled(5, 1.0);
        assert_eq!(full.fillers_per_fake, 100);
    }
}
