//! Revisit Attack (RevAdv, Tang et al. [3]): bi-level optimization with
//! gradients computed through the RecSys training process.
//!
//! RevAdv is exactly the bi-level formulation of Definition 2 instantiated
//! over the Injection Attack capacity 𝒞_IA — which in this workspace is
//! BOPDS over [`msopds_core::build_ia_capacity`] with the eq. (3) objective.

use msopds_core::{
    build_ia_capacity, plan_bopds, IaCapacitySpec, Objective, PlannerConfig, PlayerSetup,
};
use msopds_recdata::{Dataset, PoisonAction};
use rand::Rng;

use crate::common::IaContext;

/// Runs RevAdv: builds 𝒞_IA, optimizes filler selection through the unrolled
/// surrogate training, and returns the full plan.
pub fn rev_adv_attack<R: Rng>(
    data: &mut Dataset,
    ctx: &IaContext,
    target_item: usize,
    cfg: &PlannerConfig,
    rng: &mut R,
) -> Vec<PoisonAction> {
    let spec = IaCapacitySpec::new(ctx.b, ctx.fillers_per_fake, ctx.candidate_pool);
    let capacity = build_ia_capacity(data, target_item, &spec, rng);
    let planning_data = data.apply_poison(&capacity.fixed);
    let real_users: Vec<usize> = (0..data.n_real_users).collect();
    let player = PlayerSetup {
        capacity,
        objective: Objective::Inject { users: real_users, target: target_item },
    };
    let outcome = plan_bopds(&planning_data, &player, cfg);
    outcome.full_plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use msopds_autograd::HvpMode;
    use msopds_core::MsoConfig;
    use msopds_recdata::DatasetSpec;
    use msopds_recsys::pds::PdsConfig;
    use rand::SeedableRng;

    fn quick_cfg() -> PlannerConfig {
        PlannerConfig {
            mso: MsoConfig {
                iters: 3,
                cg_iters: 2,
                hvp_mode: HvpMode::Exact,
                ..Default::default()
            },
            pds: PdsConfig { inner_steps: 2, ..Default::default() },
        }
    }

    #[test]
    fn rev_adv_plan_respects_budget() {
        let mut data = DatasetSpec::micro().generate(1);
        let ctx = IaContext { b: 3, fillers_per_fake: 5, candidate_pool: 15, seed: 0 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let plan = rev_adv_attack(&mut data, &ctx, 0, &quick_cfg(), &mut rng);
        let n_fake = ctx.fake_count(60);
        assert_eq!(plan.len(), n_fake + n_fake * ctx.fillers_per_fake);
    }

    #[test]
    fn rev_adv_selects_within_candidate_pool() {
        let mut data = DatasetSpec::micro().generate(2);
        let ctx = IaContext { b: 2, fillers_per_fake: 4, candidate_pool: 10, seed: 0 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let plan = rev_adv_attack(&mut data, &ctx, 3, &quick_cfg(), &mut rng);
        for a in &plan {
            if let PoisonAction::Rating { user, .. } = a {
                assert!(data.is_fake(*user as usize), "RevAdv only acts through fakes");
            }
        }
    }
}
