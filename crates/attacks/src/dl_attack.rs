//! DLAttack-style deep-learning poisoning (ARLib's white-box DLAttack).
//!
//! The fake interaction profiles are optimized *directly* by gradient
//! descent through a pre-trained MF surrogate: a leaf matrix of logits (one
//! row per fake, one column per candidate item) is squashed into star
//! ratings and trained to maximize the surrogate-predicted alignment of the
//! rated items with the target while staying close to real rating
//! statistics. After optimization, each fake's top-valued candidates become
//! its filler ratings.
//!
//! Budgets follow the original's `maliciousUserSize` / `maliciousFeedbackSize`
//! semantics (see [`resolve_budgets`]): `0` means "match the average real
//! profile length", values `≥ 1` are absolute counts, and fractions scale
//! the user/item population.

use msopds_autograd::optim::Adam;
use msopds_autograd::{Tape, Tensor};
use msopds_recdata::{Dataset, PoisonAction};
use msopds_recsys::{MatrixFactorization, MfConfig};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::common::IaContext;

/// DLAttack hyperparameters and budget limits.
#[derive(Clone, Copy, Debug)]
pub struct DlAttackConfig {
    /// Fake-account budget: `< 1` = fraction of the real user count,
    /// `≥ 1` = absolute count.
    pub malicious_user_size: f64,
    /// Per-fake feedback budget: `0` = average real profile length,
    /// `(0, 1)` = fraction of the item count, `≥ 1` = absolute count.
    pub malicious_feedback_size: f64,
    /// Gradient steps on the fake-profile logits.
    pub steps: usize,
    /// Weight of the target-alignment (promotion) term.
    pub alpha: f64,
    /// Weight of the plausibility (rating-statistics) penalty.
    pub beta: f64,
    /// Adam learning rate.
    pub lr: f64,
}

impl Default for DlAttackConfig {
    fn default() -> Self {
        Self {
            malicious_user_size: 0.03,
            malicious_feedback_size: 0.0,
            steps: 60,
            alpha: 1.0,
            beta: 0.5,
            lr: 0.1,
        }
    }
}

/// Resolves the `(fake users, fillers per fake)` budgets from the config's
/// `malicious_user_size` / `malicious_feedback_size`, with the original's
/// case split: feedback `0` → `⌊total interactions / users⌋`, `≥ 1` →
/// absolute, fraction → `⌊fraction · items⌋`; users `< 1` →
/// `⌊fraction · real users⌋`, `≥ 1` → absolute. Both floors are 1.
pub fn resolve_budgets(data: &Dataset, cfg: &DlAttackConfig) -> (usize, usize) {
    let n_fillers = if cfg.malicious_feedback_size == 0.0 {
        data.ratings.len() / data.n_users().max(1)
    } else if cfg.malicious_feedback_size >= 1.0 {
        cfg.malicious_feedback_size as usize
    } else {
        (cfg.malicious_feedback_size * data.n_items() as f64) as usize
    };
    let n_fake = if cfg.malicious_user_size < 1.0 {
        (cfg.malicious_user_size * data.n_real_users as f64) as usize
    } else {
        cfg.malicious_user_size as usize
    };
    (n_fake.max(1), n_fillers.max(1))
}

/// Runs the DLAttack-style poisoning and returns the full poison plan. Fake
/// users (per the resolved `malicious_user_size`) are injected into `data`
/// as a side effect; `ctx` supplies the candidate pool size and seed.
pub fn dl_attack<R: Rng>(
    data: &mut Dataset,
    ctx: &IaContext,
    target_item: usize,
    cfg: &DlAttackConfig,
    rng: &mut R,
) -> Vec<PoisonAction> {
    let (n_fake, n_fillers) = resolve_budgets(data, cfg);
    let fakes = data.add_fake_users(n_fake);
    let mut plan: Vec<PoisonAction> = fakes
        .iter()
        .map(|&f| PoisonAction::Rating { user: f as u32, item: target_item as u32, value: 5.0 })
        .collect();

    // Candidate item pool (never the target itself).
    let pool: Vec<usize> = (0..data.n_items())
        .filter(|&i| i != target_item)
        .collect::<Vec<_>>()
        .choose_multiple(rng, ctx.candidate_pool.min(data.n_items().saturating_sub(1)))
        .copied()
        .collect();
    let p = pool.len();
    if p == 0 {
        return plan;
    }

    // White-box surrogate: the attack differentiates through a trained MF
    // model's item space (recommenderModelRequired in the original).
    let mut mf = MatrixFactorization::new(
        MfConfig { epochs: 30, seed: ctx.seed, ..Default::default() },
        data.n_users(),
        data.n_items(),
    );
    mf.fit(data);
    let q = mf.item_factors();
    let d = mf.config().dim;
    let align: Vec<f64> =
        pool.iter().map(|&j| (0..d).map(|k| q.at(j, k) * q.at(target_item, k)).sum()).collect();
    let align_t = Tensor::from_vec(align, &[p]);
    let global_mean = data.ratings.global_mean().unwrap_or(3.0);

    // Outer optimization: the fake interaction logits are the decision
    // variables, trained by plain gradient steps through the surrogate.
    let mut orng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(ctx.seed ^ 0xd1a7);
    let mut logits = Tensor::randn(&[n_fake, p], 0.3, &mut orng);
    let mut opt = Adam::new(cfg.lr, 1);
    for _ in 0..cfg.steps {
        let tape = Tape::new();
        let l = tape.leaf(logits.clone());
        let profiles = l.sigmoid().scale(5.0);
        let promotion = profiles.mul(tape.constant(align_t.clone()).broadcast_rows(n_fake)).mean();
        let plaus = profiles.mean().add_scalar(-global_mean).square().mean();
        let loss = plaus.scale(cfg.beta).sub(promotion.scale(cfg.alpha));
        let grads = tape.grad(loss, &[l]);
        opt.tick();
        opt.step(0, &mut logits, &grads[0]);
    }

    // Each fake keeps its top-valued candidates as fillers.
    let tape = Tape::new();
    let profiles = tape.constant(logits).sigmoid().scale(5.0).value();
    for (fi, &f) in fakes.iter().enumerate() {
        let mut scored: Vec<(f64, usize)> = (0..p).map(|j| (profiles.at(fi, j), pool[j])).collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(value, item) in scored.iter().take(n_fillers.min(p)) {
            plan.push(PoisonAction::Rating {
                user: f as u32,
                item: item as u32,
                value: value.round().clamp(1.0, 5.0),
            });
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use msopds_recdata::DatasetSpec;
    use rand::SeedableRng;

    fn micro() -> Dataset {
        DatasetSpec::micro().generate(1)
    }

    #[test]
    fn feedback_zero_means_average_profile_length() {
        let data = micro();
        let cfg = DlAttackConfig { malicious_feedback_size: 0.0, ..Default::default() };
        let (_, n_fillers) = resolve_budgets(&data, &cfg);
        assert_eq!(n_fillers, (data.ratings.len() / data.n_users()).max(1));
    }

    #[test]
    fn feedback_at_least_one_is_absolute() {
        let data = micro();
        let cfg = DlAttackConfig { malicious_feedback_size: 7.0, ..Default::default() };
        assert_eq!(resolve_budgets(&data, &cfg).1, 7);
    }

    #[test]
    fn feedback_fraction_scales_item_count() {
        let data = micro();
        let cfg = DlAttackConfig { malicious_feedback_size: 0.1, ..Default::default() };
        assert_eq!(resolve_budgets(&data, &cfg).1, (0.1 * data.n_items() as f64) as usize);
    }

    #[test]
    fn user_fraction_scales_real_user_count() {
        let data = micro();
        let cfg = DlAttackConfig { malicious_user_size: 0.05, ..Default::default() };
        assert_eq!(resolve_budgets(&data, &cfg).0, (0.05 * 60.0) as usize);
    }

    #[test]
    fn user_at_least_one_is_absolute() {
        let data = micro();
        let cfg = DlAttackConfig { malicious_user_size: 4.0, ..Default::default() };
        assert_eq!(resolve_budgets(&data, &cfg).0, 4);
    }

    #[test]
    fn budgets_floor_at_one() {
        let data = micro();
        let cfg = DlAttackConfig {
            malicious_user_size: 0.001,
            malicious_feedback_size: 0.001,
            ..Default::default()
        };
        assert_eq!(resolve_budgets(&data, &cfg), (1, 1));
    }

    #[test]
    fn dl_attack_respects_resolved_budgets() {
        let mut data = micro();
        let ctx = IaContext { b: 2, fillers_per_fake: 3, candidate_pool: 15, seed: 1 };
        let cfg = DlAttackConfig {
            malicious_user_size: 3.0,
            malicious_feedback_size: 4.0,
            ..Default::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let plan = dl_attack(&mut data, &ctx, 0, &cfg, &mut rng);
        assert_eq!(data.n_fake_users(), 3);
        assert_eq!(plan.len(), 3 + 3 * 4);
        for a in &plan {
            if let PoisonAction::Rating { value, .. } = a {
                assert!((1.0..=5.0).contains(value));
            }
        }
    }

    #[test]
    fn dl_attack_is_deterministic_for_a_seed() {
        let run = || {
            let mut data = micro();
            let ctx = IaContext { b: 2, fillers_per_fake: 3, candidate_pool: 12, seed: 5 };
            let cfg = DlAttackConfig {
                malicious_user_size: 2.0,
                malicious_feedback_size: 3.0,
                steps: 20,
                ..Default::default()
            };
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            dl_attack(&mut data, &ctx, 1, &cfg, &mut rng)
        };
        assert_eq!(run(), run());
    }
}
