//! # msopds-attacks
//!
//! The Injection Attack baselines of §VI-A.5: None, Random, Popular [49],
//! PGA [13], S-attack [52], RevAdv [3] and Trial [54], plus the attack-zoo
//! additions Influence (arXiv 2002.08025) and DLAttack, all operating under
//! the 𝒞_IA capacity of eq. (4) (fake accounts + filler ratings) so the
//! Table III comparison structure is preserved.

#![warn(missing_docs)]

pub mod common;
pub mod dl_attack;
pub mod heuristic;
pub mod influence;
pub mod pga;
pub mod registry;
pub mod rev_adv;
pub mod s_attack;
pub mod trial;

pub use common::{fit_rating_stats, IaContext, RatingStats};
pub use dl_attack::{dl_attack, resolve_budgets, DlAttackConfig};
pub use influence::{influence_attack, influence_scores, InfluenceConfig, InfluenceDiag};
pub use registry::Baseline;
