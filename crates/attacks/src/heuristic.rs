//! Heuristic baselines: None, Random, and Popular (§VI-A.5).

use msopds_recdata::{Dataset, PoisonAction};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::common::{filler_actions, fit_rating_stats, inject_fakes, IaContext};

/// "None": the attacker does nothing (the clean-model reference row).
pub fn none_attack() -> Vec<PoisonAction> {
    Vec::new()
}

/// Random attack: each fake rates the target 5 stars plus uniformly random
/// filler items with normal-fitted ratings.
pub fn random_attack<R: Rng>(
    data: &mut Dataset,
    ctx: &IaContext,
    target_item: usize,
    rng: &mut R,
) -> Vec<PoisonAction> {
    let stats = fit_rating_stats(data);
    let (fakes, mut plan) = inject_fakes(data, ctx, target_item);
    let items: Vec<usize> = (0..data.n_items()).filter(|&i| i != target_item).collect();
    let chosen: Vec<Vec<usize>> = fakes
        .iter()
        .map(|_| {
            items.choose_multiple(rng, ctx.fillers_per_fake.min(items.len())).copied().collect()
        })
        .collect();
    plan.extend(filler_actions(&fakes, &chosen, stats, rng));
    plan
}

/// Popular attack [49], [84]: fillers are 90 % random and 10 % drawn from the
/// most-rated items, exploiting popularity-based co-rating paths.
pub fn popular_attack<R: Rng>(
    data: &mut Dataset,
    ctx: &IaContext,
    target_item: usize,
    rng: &mut R,
) -> Vec<PoisonAction> {
    let stats = fit_rating_stats(data);
    let popular: Vec<usize> = data
        .ratings
        .items_by_popularity()
        .into_iter()
        .filter(|&i| i != target_item)
        .take((data.n_items() / 10).max(5))
        .collect();
    let (fakes, mut plan) = inject_fakes(data, ctx, target_item);
    let items: Vec<usize> = (0..data.n_items()).filter(|&i| i != target_item).collect();

    let n_pop = (ctx.fillers_per_fake as f64 * 0.1).ceil() as usize;
    let n_rand = ctx.fillers_per_fake.saturating_sub(n_pop);
    let chosen: Vec<Vec<usize>> = fakes
        .iter()
        .map(|_| {
            let mut picks: Vec<usize> =
                popular.choose_multiple(rng, n_pop.min(popular.len())).copied().collect();
            picks.extend(items.choose_multiple(rng, n_rand.min(items.len())).copied());
            picks.sort_unstable();
            picks.dedup();
            picks
        })
        .collect();
    plan.extend(filler_actions(&fakes, &chosen, stats, rng));
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use msopds_recdata::DatasetSpec;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn none_is_empty() {
        assert!(none_attack().is_empty());
    }

    #[test]
    fn random_attack_shape() {
        let mut data = DatasetSpec::micro().generate(1);
        let ctx = IaContext::scaled(5, 8.0);
        let plan = random_attack(&mut data, &ctx, 0, &mut rng());
        let n_fake = ctx.fake_count(60);
        assert_eq!(data.n_fake_users(), n_fake);
        // One 5-star target rating per fake plus fillers.
        let target_ratings = plan
            .iter()
            .filter(|a| matches!(a, PoisonAction::Rating { item: 0, value, .. } if *value == 5.0))
            .count();
        assert!(target_ratings >= n_fake);
        assert_eq!(plan.len(), n_fake + n_fake * ctx.fillers_per_fake);
    }

    #[test]
    fn popular_attack_includes_popular_items() {
        let mut data = DatasetSpec::micro().generate(1);
        let most_popular = data.ratings.items_by_popularity()[0];
        let target = if most_popular == 0 { 1 } else { 0 };
        let ctx = IaContext::scaled(5, 4.0);
        let plan = popular_attack(&mut data, &ctx, target, &mut rng());
        let hits = plan
            .iter()
            .filter(|a| matches!(a, PoisonAction::Rating { item, .. } if *item as usize == most_popular))
            .count();
        assert!(hits > 0, "popular attack never touched the most popular item");
    }

    #[test]
    fn all_plans_are_valid_actions() {
        let mut data = DatasetSpec::micro().generate(2);
        let ctx = IaContext::scaled(3, 8.0);
        let plan = popular_attack(&mut data, &ctx, 2, &mut rng());
        // Applying must not panic and must grow the rating count.
        let before = data.ratings.len();
        let poisoned = data.apply_poison(&plan);
        assert!(poisoned.ratings.len() > before);
    }
}
