//! Influence-function top-N attack (Fang et al., arXiv 2002.08025).
//!
//! Candidate filler items are scored by the *Newton-refined* influence of
//! upweighting each candidate rating on the target item's exposure: with the
//! IA loss `L` recorded through a short PDS surrogate unroll, the raw
//! gradient `g = ∂L/∂X̂` is refined into the influence direction
//! `s = (H + λI)⁻¹ g` where `H = ∂²L/∂X̂²`, solved with the existing
//! [`conjugate_gradient_multi`] machinery and Hessian-vector products taken
//! on the same tape. The most negative entries of `s` are the candidates
//! whose inclusion most decreases the IA loss (i.e. most promotes the
//! target), and the fake-user budget is filled greedily in that order.
//!
//! A CG breakdown degrades the attack — the raw gradient ordering is used
//! instead, with a typed [`InfluenceDiag`] recording the [`SolveStatus`] —
//! it never aborts the run.

use msopds_autograd::cg::{conjugate_gradient_multi, SolveStatus};
use msopds_autograd::{Tape, Tensor};
use msopds_recdata::{Dataset, PoisonAction};
use msopds_recsys::pds::{build_pds, PdsConfig, PlayerInput};
use rand::Rng;

use crate::common::{filler_actions, fit_rating_stats, inject_fakes, IaContext};

/// Influence-solve hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct InfluenceConfig {
    /// Inner unroll steps of the PDS surrogate the loss is recorded through.
    pub inner_steps: usize,
    /// CG iteration cap for the `(H + λI)⁻¹ g` solve.
    pub cg_iters: usize,
    /// CG residual tolerance.
    pub cg_tol: f64,
    /// Damping λ added to the Hessian diagonal.
    pub damping: f64,
}

impl Default for InfluenceConfig {
    fn default() -> Self {
        Self { inner_steps: 2, cg_iters: 12, cg_tol: 1e-10, damping: 1e-2 }
    }
}

/// What the influence estimation saw: the solve outcome and whether the
/// attack fell back to raw-gradient ordering.
#[derive(Clone, Debug)]
pub struct InfluenceDiag {
    /// Status of the `(H + λI)⁻¹ g` solve.
    pub status: SolveStatus,
    /// CG iterations spent.
    pub iterations: usize,
    /// Escalated-damping retries the solver needed.
    pub retries: usize,
    /// True when the solve was unusable and the scores are the raw gradient.
    pub degraded: bool,
}

/// Scores each pool item by its Newton-refined influence on the IA loss for
/// `target_item`, as rated 5-star by the (already injected) `probe` fake.
///
/// Returns one score per pool entry — more negative = stronger promotion —
/// plus the solve diagnostics. On an unusable solve the raw gradient is
/// returned (`degraded = true`); non-finite entries are zeroed so the caller
/// can always sort.
pub fn influence_scores(
    data: &Dataset,
    probe: usize,
    pool: &[usize],
    target_item: usize,
    cfg: &InfluenceConfig,
    seed: u64,
) -> (Vec<f64>, InfluenceDiag) {
    let candidates: Vec<PoisonAction> = pool
        .iter()
        .map(|&i| PoisonAction::Rating { user: probe as u32, item: i as u32, value: 5.0 })
        .collect();

    let tape = Tape::new();
    let pds = build_pds(
        &tape,
        data,
        &[PlayerInput { candidates: &candidates, xhat: Tensor::zeros(&[candidates.len()]) }],
        &PdsConfig { inner_steps: cfg.inner_steps, seed, ..Default::default() },
    );
    let xhat = pds.xhats[0];
    let real_users: Vec<usize> = (0..data.n_real_users).collect();
    let ia = msopds_recsys::losses::ia_loss(&pds.scores(), &real_users, target_item);

    // Gradient kept on the tape so it can be differentiated again for the
    // Hessian-vector products of the implicit solve (same idiom as eq. 9).
    let g = tape.grad_vars(ia, &[xhat])[0];
    let g_val = g.value();
    let shape = g_val.shape().to_vec();
    let rhs = g_val.to_vec();

    let sol = conjugate_gradient_multi(
        |dirs| {
            dirs.iter()
                .map(|&(_, v)| {
                    let vc = tape.constant(Tensor::from_vec(v.to_vec(), &shape));
                    let gv = g.mul(vc).sum();
                    tape.grad(gv, &[xhat]).remove(0).to_vec()
                })
                .collect()
        },
        &[rhs.clone()],
        cfg.cg_iters,
        cfg.cg_tol,
        cfg.damping,
    )
    .remove(0);

    let degraded = !sol.usable();
    let diag = InfluenceDiag {
        status: sol.status,
        iterations: sol.iterations,
        retries: sol.retries,
        degraded,
    };
    let raw = if degraded { rhs } else { sol.x };
    let scores = raw.into_iter().map(|s| if s.is_finite() { s } else { 0.0 }).collect();
    (scores, diag)
}

/// Runs the influence-function attack and returns the full poison plan.
///
/// Unlike [`crate::s_attack::s_attack`] (one shared filler set), the budget
/// is filled greedily: the influence-ranked pool is walked in order and each
/// fake takes the next `fillers_per_fake` strongest remaining candidates,
/// wrapping around once the ranking is exhausted.
pub fn influence_attack<R: Rng>(
    data: &mut Dataset,
    ctx: &IaContext,
    target_item: usize,
    cfg: &InfluenceConfig,
    rng: &mut R,
) -> Vec<PoisonAction> {
    let stats = fit_rating_stats(data);
    let (fakes, mut plan) = inject_fakes(data, ctx, target_item);
    let probe = *fakes.first().expect("at least one fake");

    use rand::seq::SliceRandom;
    let pool: Vec<usize> = (0..data.n_items())
        .filter(|&i| i != target_item)
        .collect::<Vec<_>>()
        .choose_multiple(rng, ctx.candidate_pool.min(data.n_items().saturating_sub(1)))
        .copied()
        .collect();
    if pool.is_empty() {
        return plan;
    }

    let (scores, _diag) = influence_scores(data, probe, &pool, target_item, cfg, ctx.seed);

    // Rank ascending: most negative influence first (strongest promotion).
    // Item id breaks exact ties so the ordering is fully deterministic.
    let mut ranked: Vec<(f64, usize)> = scores.iter().copied().zip(pool.iter().copied()).collect();
    ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let ranked: Vec<usize> = ranked.into_iter().map(|(_, i)| i).collect();

    // Greedy budget fill: fake `fi` takes the ranked slice starting at
    // `fi · fillers_per_fake`, wrapping — top candidates go to the first
    // fakes, and every fake still gets a distinct-slot filler set.
    let chosen: Vec<Vec<usize>> = (0..fakes.len())
        .map(|fi| {
            let start = (fi * ctx.fillers_per_fake) % ranked.len();
            (0..ctx.fillers_per_fake.min(ranked.len()))
                .map(|k| ranked[(start + k) % ranked.len()])
                .collect()
        })
        .collect();
    plan.extend(filler_actions(&fakes, &chosen, stats, rng));
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use msopds_recdata::DatasetSpec;
    use rand::SeedableRng;

    #[test]
    fn influence_attack_fills_the_budget() {
        let mut data = DatasetSpec::micro().generate(1);
        let ctx = IaContext { b: 3, fillers_per_fake: 4, candidate_pool: 12, seed: 0 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let plan = influence_attack(&mut data, &ctx, 0, &InfluenceConfig::default(), &mut rng);
        let n_fake = ctx.fake_count(60);
        assert_eq!(plan.len(), n_fake + n_fake * ctx.fillers_per_fake);
        for a in &plan {
            if let PoisonAction::Rating { value, .. } = a {
                assert!((1.0..=5.0).contains(value));
            }
        }
    }

    #[test]
    fn influence_attack_never_uses_target_as_filler() {
        let mut data = DatasetSpec::micro().generate(2);
        let ctx = IaContext { b: 2, fillers_per_fake: 3, candidate_pool: 10, seed: 0 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let target = 5;
        let plan = influence_attack(&mut data, &ctx, target, &InfluenceConfig::default(), &mut rng);
        let target_ratings = plan
            .iter()
            .filter(|a| matches!(a, PoisonAction::Rating { item, .. } if *item as usize == target))
            .count();
        assert_eq!(target_ratings, ctx.fake_count(60));
    }

    #[test]
    fn influence_attack_is_deterministic_for_a_seed() {
        let run = || {
            let mut data = DatasetSpec::micro().generate(3);
            let ctx = IaContext { b: 2, fillers_per_fake: 3, candidate_pool: 10, seed: 4 };
            let mut rng = rand::rngs::StdRng::seed_from_u64(11);
            influence_attack(&mut data, &ctx, 2, &InfluenceConfig::default(), &mut rng)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn influence_solve_converges_on_micro_world() {
        let mut data = DatasetSpec::micro().generate(1);
        let ctx = IaContext { b: 2, fillers_per_fake: 3, candidate_pool: 8, seed: 0 };
        let (fakes, _) = inject_fakes(&mut data, &ctx, 0);
        let pool: Vec<usize> = (1..9).collect();
        let (scores, diag) =
            influence_scores(&data, fakes[0], &pool, 0, &InfluenceConfig::default(), 0);
        assert_eq!(scores.len(), pool.len());
        assert!(!diag.degraded, "micro-world solve unexpectedly degraded: {:?}", diag);
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}
