//! Trial Attack (Wu et al. [54]): triple adversarial learning.
//!
//! Three modules trained jointly, as in the original:
//! * a **generator** mapping noise to fake rating profiles over a candidate
//!   item pool;
//! * a **discriminator** distinguishing real user profiles from generated
//!   ones (keeps the poison statistically plausible);
//! * an **influence module** scoring a profile's estimated effect on the
//!   attack objective — realized as a differentiable linear influence vector
//!   `inf_j = q_j · q_t` from a pre-trained MF surrogate, so profiles that
//!   co-rate items aligned with the target score higher.
//!
//! The generator's loss combines fooling the discriminator with maximizing
//! the influence score; after training, each fake account receives a
//! generated profile, and its top-valued items become the filler ratings.

use msopds_autograd::optim::Adam;
use msopds_autograd::{Tape, Tensor};
use msopds_recdata::{Dataset, PoisonAction};
use msopds_recsys::{MatrixFactorization, MfConfig};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::common::{inject_fakes, IaContext};

/// Trial attack hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct TrialConfig {
    /// Adversarial training steps.
    pub steps: usize,
    /// Noise dimensionality.
    pub z_dim: usize,
    /// Batch size per step.
    pub batch: usize,
    /// Weight of the influence term in the generator loss.
    pub alpha: f64,
    /// Adam learning rate for both networks.
    pub lr: f64,
}

impl Default for TrialConfig {
    fn default() -> Self {
        Self { steps: 40, z_dim: 8, batch: 16, alpha: 1.0, lr: 0.05 }
    }
}

/// Runs the Trial attack and returns the full poison plan.
pub fn trial_attack<R: Rng>(
    data: &mut Dataset,
    ctx: &IaContext,
    target_item: usize,
    cfg: &TrialConfig,
    rng: &mut R,
) -> Vec<PoisonAction> {
    let (fakes, mut plan) = inject_fakes(data, ctx, target_item);

    // Candidate item pool.
    let pool: Vec<usize> = (0..data.n_items())
        .filter(|&i| i != target_item)
        .collect::<Vec<_>>()
        .choose_multiple(rng, ctx.candidate_pool.min(data.n_items().saturating_sub(1)))
        .copied()
        .collect();
    let p = pool.len();
    if p == 0 {
        return plan;
    }

    // Real profiles over the pool (0 = unrated), for the discriminator.
    let mut real_profiles: Vec<Vec<f64>> = Vec::new();
    for u in 0..data.n_real_users {
        let mut prof = vec![0.0; p];
        let mut any = false;
        for r in data.ratings.by_user(u) {
            if let Some(j) = pool.iter().position(|&i| i == r.item as usize) {
                prof[j] = r.value;
                any = true;
            }
        }
        if any {
            real_profiles.push(prof);
        }
    }
    if real_profiles.is_empty() {
        real_profiles.push(vec![0.0; p]);
    }

    // Influence module: item alignment with the target from a quick MF fit.
    let mut mf = MatrixFactorization::new(
        MfConfig { epochs: 30, seed: ctx.seed, ..Default::default() },
        data.n_users(),
        data.n_items(),
    );
    mf.fit(data);
    let q = mf.item_factors();
    let d = mf.config().dim;
    let influence: Vec<f64> =
        pool.iter().map(|&j| (0..d).map(|k| q.at(j, k) * q.at(target_item, k)).sum()).collect();
    let inf_t = Tensor::from_vec(influence, &[p]);

    // Generator and discriminator parameters.
    let mut grng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(ctx.seed ^ 0x7777);
    let mut g_w = Tensor::randn(&[cfg.z_dim, p], 0.3, &mut grng);
    let mut g_b = Tensor::zeros(&[p]);
    let mut d_w = Tensor::randn(&[p, 1], 0.3, &mut grng);
    let mut d_b = Tensor::zeros(&[1]);
    let mut opt_g = Adam::new(cfg.lr, 2);
    let mut opt_d = Adam::new(cfg.lr, 2);

    let eps = 1e-6;
    for _ in 0..cfg.steps {
        let tape = Tape::new();
        let gw = tape.leaf(g_w.clone());
        let gb = tape.leaf(g_b.clone());
        let dw = tape.leaf(d_w.clone());
        let db = tape.leaf(d_b.clone());

        // Fake batch: profiles in [0, 5].
        let z = tape.constant(Tensor::randn(&[cfg.batch, cfg.z_dim], 1.0, rng));
        let fake = z.matmul(gw).add(gb.broadcast_rows(cfg.batch)).sigmoid().scale(5.0);

        // Real batch.
        let batch_real: Vec<&Vec<f64>> = (0..cfg.batch)
            .map(|_| real_profiles.choose(rng).expect("non-empty real profiles"))
            .collect();
        let real = tape.constant(Tensor::from_vec(
            batch_real.iter().flat_map(|v| v.iter().copied()).collect(),
            &[cfg.batch, p],
        ));

        fn d_of<'t>(
            x: msopds_autograd::Var<'t>,
            dw: msopds_autograd::Var<'t>,
            db: msopds_autograd::Var<'t>,
            batch: usize,
        ) -> msopds_autograd::Var<'t> {
            x.matmul(dw).reshape(&[batch]).add(db.expand(&[batch])).sigmoid()
        }

        // Discriminator: BCE on real vs detached fake.
        let d_real = d_of(real, dw, db, cfg.batch);
        let d_fake_det = d_of(fake.detach(), dw, db, cfg.batch);
        let d_loss = d_real
            .add_scalar(eps)
            .ln()
            .mean()
            .add(d_fake_det.neg().add_scalar(1.0 + eps).ln().mean())
            .neg();
        let gd = tape.grad(d_loss, &[dw, db]);
        opt_d.tick();
        opt_d.step(0, &mut d_w, &gd[0]);
        opt_d.step(1, &mut d_b, &gd[1]);

        // Generator: fool the discriminator + maximize influence.
        let d_fake = d_of(fake, dw, db, cfg.batch);
        let fool = d_fake.add_scalar(eps).ln().mean().neg();
        let infl = fake.mul(tape.constant(inf_t.clone()).broadcast_rows(cfg.batch)).mean();
        let g_loss = fool.sub(infl.scale(cfg.alpha));
        let gg = tape.grad(g_loss, &[gw, gb]);
        opt_g.tick();
        opt_g.step(0, &mut g_w, &gg[0]);
        opt_g.step(1, &mut g_b, &gg[1]);
    }

    // Generate one profile per fake; top-valued items become fillers.
    let tape = Tape::new();
    let gw = tape.constant(g_w);
    let gb = tape.constant(g_b);
    let z = tape.constant(Tensor::randn(&[fakes.len(), cfg.z_dim], 1.0, rng));
    let profiles = z.matmul(gw).add(gb.broadcast_rows(fakes.len())).sigmoid().scale(5.0).value();

    for (fi, &f) in fakes.iter().enumerate() {
        let mut scored: Vec<(f64, usize)> = (0..p).map(|j| (profiles.at(fi, j), pool[j])).collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite profile values"));
        for &(value, item) in scored.iter().take(ctx.fillers_per_fake) {
            plan.push(PoisonAction::Rating {
                user: f as u32,
                item: item as u32,
                value: value.round().clamp(1.0, 5.0),
            });
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use msopds_recdata::DatasetSpec;
    use rand::SeedableRng;

    #[test]
    fn trial_produces_budgeted_plan() {
        let mut data = DatasetSpec::micro().generate(1);
        let ctx = IaContext { b: 3, fillers_per_fake: 5, candidate_pool: 20, seed: 1 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let plan = trial_attack(&mut data, &ctx, 0, &TrialConfig::default(), &mut rng);
        let n_fake = ctx.fake_count(60);
        assert_eq!(plan.len(), n_fake + n_fake * ctx.fillers_per_fake);
        for a in &plan {
            if let PoisonAction::Rating { value, .. } = a {
                assert!((1.0..=5.0).contains(value));
            }
        }
    }

    #[test]
    fn trial_profiles_prefer_influential_items() {
        // With a strong influence weight, generated profiles should put more
        // mass on items than a pure-noise baseline would on average.
        let mut data = DatasetSpec::micro().generate(3);
        let ctx = IaContext { b: 2, fillers_per_fake: 3, candidate_pool: 15, seed: 2 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let plan = trial_attack(
            &mut data,
            &ctx,
            1,
            &TrialConfig { alpha: 5.0, steps: 60, ..Default::default() },
            &mut rng,
        );
        // Structural sanity: fillers exist and are not the target item.
        let fillers = plan
            .iter()
            .filter(|a| matches!(a, PoisonAction::Rating { item, .. } if *item != 1))
            .count();
        assert!(fillers > 0);
    }
}
