//! Projected Gradient Ascent attack (PGA, Li et al. [13]).
//!
//! PGA targets factorization-based collaborative filtering: the fake users'
//! *rating values* are continuous decision variables, optimized by gradient
//! ascent on the attack objective through the (unrolled) training of an MF
//! surrogate, and projected back into the valid star range after every step.

use std::sync::Arc;

use msopds_autograd::{Tape, Tensor};
use msopds_recdata::{Dataset, PoisonAction};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::common::{fit_rating_stats, inject_fakes, IaContext};

/// PGA hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct PgaConfig {
    /// Outer ascent steps on the fake rating values.
    pub outer_steps: usize,
    /// Ascent step size in stars per outer step (ℓ∞-normalized).
    pub step_size: f64,
    /// Unrolled MF training steps per evaluation.
    pub inner_steps: usize,
    /// Inner SGD learning rate.
    pub inner_lr: f64,
    /// MF latent dimensionality.
    pub dim: usize,
}

impl Default for PgaConfig {
    fn default() -> Self {
        Self { outer_steps: 6, step_size: 1.0, inner_steps: 4, inner_lr: 0.5, dim: 8 }
    }
}

/// Runs PGA: injects fakes, selects a random filler set per fake, optimizes
/// the filler rating values, and returns the full poison plan.
pub fn pga_attack<R: Rng>(
    data: &mut Dataset,
    ctx: &IaContext,
    target_item: usize,
    cfg: &PgaConfig,
    rng: &mut R,
) -> Vec<PoisonAction> {
    let stats = fit_rating_stats(data);
    let (fakes, mut plan) = inject_fakes(data, ctx, target_item);
    let items: Vec<usize> = (0..data.n_items()).filter(|&i| i != target_item).collect();

    // Fixed filler *positions*; PGA optimizes their *values*.
    let mut fake_idx = Vec::new(); // user ids of the fake ratings
    let mut item_idx = Vec::new();
    for &f in &fakes {
        for &i in items.choose_multiple(rng, ctx.fillers_per_fake.min(items.len())) {
            fake_idx.push(f);
            item_idx.push(i);
        }
    }
    let k = fake_idx.len();
    if k == 0 {
        return plan;
    }
    let mut values = Tensor::full(&[k], stats.mean);

    // Real rating index tensors, plus the fakes' fixed 5-star target ratings
    // (they are part of the attack and provide the gradient pathway from the
    // filler values to the target item's factors).
    let mut ru = Vec::new();
    let mut ri = Vec::new();
    let mut rv = Vec::new();
    for r in data.ratings.ratings() {
        ru.push(r.user as usize);
        ri.push(r.item as usize);
        rv.push(r.value);
    }
    for &f in &fakes {
        ru.push(f);
        ri.push(target_item);
        rv.push(5.0);
    }
    let mu = data.ratings.global_mean().expect("non-empty ratings");
    let (ru, ri) = (Arc::new(ru), Arc::new(ri));
    let target_t = Tensor::from_vec(rv, &[ru.len()]);
    let n_real_ratings = ru.len() as f64;
    let fake_u = Arc::new(fake_idx);
    let fake_i = Arc::new(item_idx);
    let real_users: Vec<usize> = (0..data.n_real_users).collect();

    let mut init_rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(ctx.seed);
    let p0 = Tensor::randn(&[data.n_users(), cfg.dim], 0.1, &mut init_rng);
    let q0 = Tensor::randn(&[data.n_items(), cfg.dim], 0.1, &mut init_rng);

    for _ in 0..cfg.outer_steps {
        let tape = Tape::new();
        let mut p = tape.leaf(p0.clone());
        let mut q = tape.leaf(q0.clone());
        let mut bu = tape.leaf(Tensor::zeros(&[data.n_users()]));
        let mut bi = tape.leaf(Tensor::zeros(&[data.n_items()]));
        let v = tape.leaf(values.clone());

        // Unrolled MF training over real + fake ratings; v enters the loss.
        for _ in 0..cfg.inner_steps {
            let pred_real = p
                .gather_rows(Arc::clone(&ru))
                .rowwise_dot(q.gather_rows(Arc::clone(&ri)))
                .add(bu.gather_elems(Arc::clone(&ru)))
                .add(bi.gather_elems(Arc::clone(&ri)))
                .add_scalar(mu);
            let loss_real = pred_real.sub(tape.constant(target_t.clone())).square().sum();
            let pred_fake = p
                .gather_rows(Arc::clone(&fake_u))
                .rowwise_dot(q.gather_rows(Arc::clone(&fake_i)))
                .add(bu.gather_elems(Arc::clone(&fake_u)))
                .add(bi.gather_elems(Arc::clone(&fake_i)))
                .add_scalar(mu);
            let loss_fake = pred_fake.sub(v).square().sum();
            let loss = loss_real.add(loss_fake).scale(1.0 / n_real_ratings);
            let g = tape.grad_vars(loss, &[p, q, bu, bi]);
            p = p.sub(g[0].scale(cfg.inner_lr));
            q = q.sub(g[1].scale(cfg.inner_lr));
            bu = bu.sub(g[2].scale(cfg.inner_lr));
            bi = bi.sub(g[3].scale(cfg.inner_lr));
        }

        // IA objective on the trained surrogate, ascended via v.
        let scores = msopds_recsys::losses::Scores {
            user_final: p,
            item_final: q,
            user_bias: bu,
            item_bias: bi,
        };
        let ia = msopds_recsys::losses::ia_loss(&scores, &real_users, target_item);
        let grad_v = tape.grad(ia, &[v]).remove(0);
        // PGD-style ℓ∞-normalized step: descend the IA loss (= ascend the
        // target's mean rating), then project back into the star range. The
        // normalization keeps the step meaningful even though the unrolled
        // surrogate's raw gradients are small.
        let gmax = grad_v.data().iter().fold(0.0f64, |m, g| m.max(g.abs()));
        if gmax > 0.0 {
            values = values.zip(&grad_v, |x, g| (x - cfg.step_size * g / gmax).clamp(1.0, 5.0));
        }
    }

    for j in 0..k {
        plan.push(PoisonAction::Rating {
            user: fake_u[j] as u32,
            item: fake_i[j] as u32,
            value: values.get(j).round().clamp(1.0, 5.0),
        });
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use msopds_recdata::DatasetSpec;
    use rand::SeedableRng;

    #[test]
    fn pga_produces_valid_plan() {
        let mut data = DatasetSpec::micro().generate(1);
        let ctx = IaContext::scaled(3, 8.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let plan = pga_attack(&mut data, &ctx, 0, &PgaConfig::default(), &mut rng);
        let n_fake = ctx.fake_count(60);
        assert_eq!(plan.len(), n_fake + n_fake * ctx.fillers_per_fake);
        for a in &plan {
            if let PoisonAction::Rating { value, .. } = a {
                assert!((1.0..=5.0).contains(value));
                assert_eq!(*value, value.round());
            }
        }
    }

    #[test]
    fn pga_optimization_changes_the_plan() {
        // With zero ascent steps PGA degenerates to mean-valued fillers;
        // the optimized run must differ, proving the gradient signal reaches
        // the decision variables.
        let run = |outer_steps: usize| {
            let mut data = DatasetSpec::micro().generate(4);
            let ctx = IaContext::scaled(5, 8.0);
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            let cfg = PgaConfig { outer_steps, ..Default::default() };
            pga_attack(&mut data, &ctx, 1, &cfg, &mut rng)
        };
        let unoptimized = run(0);
        let optimized = run(8);
        assert_eq!(unoptimized.len(), optimized.len(), "same structure");
        assert_ne!(unoptimized, optimized, "ascent steps had no effect on the plan");
    }

    #[test]
    fn pga_is_deterministic_given_seeds() {
        let run = || {
            let mut data = DatasetSpec::micro().generate(1);
            let ctx = IaContext::scaled(2, 8.0);
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            pga_attack(&mut data, &ctx, 0, &PgaConfig::default(), &mut rng)
        };
        assert_eq!(run(), run());
    }
}
