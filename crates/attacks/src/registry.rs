//! Named registry of the baseline attacks compared in §VI-A.5.

use msopds_core::PlannerConfig;
use msopds_recdata::{Dataset, PoisonAction};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::common::IaContext;
use crate::dl_attack::{dl_attack, DlAttackConfig};
use crate::heuristic::{none_attack, popular_attack, random_attack};
use crate::influence::{influence_attack, InfluenceConfig};
use crate::pga::{pga_attack, PgaConfig};
use crate::rev_adv::rev_adv_attack;
use crate::s_attack::s_attack;
use crate::trial::{trial_attack, TrialConfig};

/// The Injection Attack baselines of Table III.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Baseline {
    /// No attack (clean model).
    None,
    /// Random filler selection.
    Random,
    /// 90 % random / 10 % popular fillers [49], [84].
    Popular,
    /// Projected gradient ascent on an MF surrogate [13].
    Pga,
    /// Influence-scored filler selection [52].
    SAttack,
    /// Bi-level optimization through surrogate training [3].
    RevAdv,
    /// Triple adversarial learning [54].
    Trial,
    /// Influence-function top-N attack with a Newton-refined CG solve
    /// (arXiv 2002.08025).
    Influence,
    /// DLAttack-style direct gradient optimization of the fake profiles
    /// through a trained surrogate.
    DlAttack,
}

impl Baseline {
    /// All baselines in Table III row order, followed by the zoo additions.
    pub fn all() -> [Baseline; 9] {
        [
            Baseline::None,
            Baseline::Random,
            Baseline::Popular,
            Baseline::Pga,
            Baseline::SAttack,
            Baseline::RevAdv,
            Baseline::Trial,
            Baseline::Influence,
            Baseline::DlAttack,
        ]
    }

    /// The display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::None => "None",
            Baseline::Random => "Random",
            Baseline::Popular => "Popular",
            Baseline::Pga => "PGA",
            Baseline::SAttack => "S-attack",
            Baseline::RevAdv => "RevAdv",
            Baseline::Trial => "Trial",
            Baseline::Influence => "Influence",
            Baseline::DlAttack => "DLAttack",
        }
    }

    /// Plans this baseline's Injection Attack on `data` (fake users are
    /// injected into `data` as a side effect) and returns the poison plan.
    pub fn plan<R: Rng>(
        &self,
        data: &mut Dataset,
        ctx: &IaContext,
        target_item: usize,
        planner: &PlannerConfig,
        rng: &mut R,
    ) -> Vec<PoisonAction> {
        match self {
            Baseline::None => none_attack(),
            Baseline::Random => random_attack(data, ctx, target_item, rng),
            Baseline::Popular => popular_attack(data, ctx, target_item, rng),
            Baseline::Pga => pga_attack(data, ctx, target_item, &PgaConfig::default(), rng),
            Baseline::SAttack => s_attack(data, ctx, target_item, rng),
            Baseline::RevAdv => rev_adv_attack(data, ctx, target_item, planner, rng),
            Baseline::Trial => trial_attack(data, ctx, target_item, &TrialConfig::default(), rng),
            Baseline::Influence => {
                influence_attack(data, ctx, target_item, &InfluenceConfig::default(), rng)
            }
            Baseline::DlAttack => {
                // Map the shared IA budget onto the original's absolute
                // `maliciousUserSize`/`maliciousFeedbackSize` semantics so
                // every registry baseline plays under the same 𝒞_IA budget.
                let cfg = DlAttackConfig {
                    malicious_user_size: ctx.fake_count(data.n_real_users) as f64,
                    malicious_feedback_size: ctx.fillers_per_fake as f64,
                    ..Default::default()
                };
                dl_attack(data, ctx, target_item, &cfg, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msopds_autograd::HvpMode;
    use msopds_core::MsoConfig;
    use msopds_recdata::DatasetSpec;
    use msopds_recsys::pds::PdsConfig;
    use rand::SeedableRng;

    #[test]
    fn every_baseline_produces_a_plan() {
        let planner = PlannerConfig {
            mso: MsoConfig {
                iters: 2,
                cg_iters: 2,
                hvp_mode: HvpMode::Exact,
                ..Default::default()
            },
            pds: PdsConfig { inner_steps: 2, ..Default::default() },
        };
        for baseline in Baseline::all() {
            let mut data = DatasetSpec::micro().generate(1);
            let ctx = IaContext { b: 2, fillers_per_fake: 3, candidate_pool: 10, seed: 0 };
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            let plan = baseline.plan(&mut data, &ctx, 0, &planner, &mut rng);
            if baseline == Baseline::None {
                assert!(plan.is_empty());
            } else {
                assert!(!plan.is_empty(), "{} returned an empty plan", baseline.name());
                // The plan must apply cleanly.
                let _ = data.apply_poison(&plan);
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            Baseline::all().iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 9);
    }
}
