//! The stateful serving front end: caching, batching, and request metrics.

use std::sync::Arc;
use std::time::{Duration, Instant};

use msopds_telemetry::{self as telemetry, Counter, Gauge};

use crate::lru::LruCache;
use crate::model::{ScorePrecision, ScoredItem, ServingModel};

static BATCHES: Counter = Counter::new("serve.batches");
static QUERIES: Counter = Counter::new("serve.queries");
static CACHE_HITS: Counter = Counter::new("serve.cache.hits");
static CACHE_MISSES: Counter = Counter::new("serve.cache.misses");
static USERS_PER_SEC: Gauge = Gauge::new("serve.users_per_sec");
static P50_US: Gauge = Gauge::new("serve.latency.p50_us");
static P99_US: Gauge = Gauge::new("serve.latency.p99_us");

/// Engine knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// List length returned per user.
    pub top_k: usize,
    /// Hot-user LRU capacity; 0 disables caching.
    pub cache_capacity: usize,
    /// Scoring kernel used by [`ServeEngine::serve_batch`]; explicit
    /// per-batch overrides go through [`ServeEngine::serve_batch_with`].
    pub precision: ScorePrecision,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { top_k: 10, cache_capacity: 256, precision: ScorePrecision::Exact64 }
    }
}

/// Running totals accumulated across [`ServeEngine::serve_batch`] calls.
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// Batches served.
    pub batches: u64,
    /// User queries answered (cache hits included).
    pub queries: u64,
    /// Queries answered from the hot-user cache.
    pub cache_hits: u64,
    /// Queries not found in the cache at lookup time. Every query is either
    /// a hit or a miss (`cache_hits + cache_misses == queries`); duplicate
    /// missing users within one batch each count a miss but are scored once.
    pub cache_misses: u64,
    /// Per-batch wall-clock latencies, microseconds.
    pub latencies_us: Vec<u64>,
    /// Total wall-clock time inside `serve_batch`.
    pub total_time: Duration,
}

impl ServeStats {
    /// Condenses the running totals into summary rates and percentiles, and
    /// publishes them to the telemetry gauges.
    pub fn summarize(&self) -> ServeSummary {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let pct = |p: f64| -> u64 {
            if sorted.is_empty() {
                return 0;
            }
            let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            sorted[idx]
        };
        let secs = self.total_time.as_secs_f64();
        let summary = ServeSummary {
            batches: self.batches,
            queries: self.queries,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            users_per_sec: if secs > 0.0 { self.queries as f64 / secs } else { 0.0 },
            mean_us: if self.batches > 0 {
                self.total_time.as_micros() as f64 / self.batches as f64
            } else {
                0.0
            },
            p50_us: pct(0.50),
            p99_us: pct(0.99),
        };
        USERS_PER_SEC.set(summary.users_per_sec);
        P50_US.set(summary.p50_us as f64);
        P99_US.set(summary.p99_us as f64);
        summary
    }
}

/// Summary view of a serving run, suitable for logging or JSON export.
#[derive(Clone, Copy, Debug)]
pub struct ServeSummary {
    /// Batches served.
    pub batches: u64,
    /// User queries answered.
    pub queries: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Throughput over the whole run.
    pub users_per_sec: f64,
    /// Mean per-batch latency, microseconds.
    pub mean_us: f64,
    /// Median per-batch latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile per-batch latency, microseconds.
    pub p99_us: u64,
}

/// Why a snapshot hot-swap was refused. The engine keeps serving the running
/// model after a rejected swap — rejection is a per-call error, not a fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SwapError {
    /// The offered model was fitted on different graph structure than the
    /// running one: its `(social, item)` CSR fingerprints disagree. Serving
    /// it would silently answer for the wrong world.
    FingerprintMismatch {
        /// Fingerprints of the model currently serving.
        running: (u64, u64),
        /// Fingerprints of the rejected snapshot.
        offered: (u64, u64),
    },
    /// The offered model's `(n_users, n_items)` universe differs from the
    /// running one's — front ends validate ids against a fixed universe, so
    /// a swap may retrain the world but never resize it.
    ShapeMismatch {
        /// `(n_users, n_items)` of the model currently serving.
        running: (usize, usize),
        /// `(n_users, n_items)` of the rejected snapshot.
        offered: (usize, usize),
    },
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::FingerprintMismatch { running, offered } => write!(
                f,
                "snapshot fingerprints {offered:?} do not match the running dataset {running:?}"
            ),
            SwapError::ShapeMismatch { running, offered } => write!(
                f,
                "snapshot universe {offered:?} does not match the served universe {running:?}"
            ),
        }
    }
}

impl std::error::Error for SwapError {}

/// A stateful serving front end over an immutable [`ServingModel`].
///
/// Each `serve_batch` call deduplicates the uncached users of the batch,
/// scores them in one blocked matmul, refreshes the hot-user LRU, and
/// records latency. Caching never changes answers — the model is immutable
/// and its top-K order total — so a hit returns exactly what scoring would.
///
/// # Thread safety
///
/// `ServeEngine` is **not** `Sync`-shareable: every serve call mutates the
/// hot-user LRU and the running [`ServeStats`], so concurrent callers must
/// serialize through [`crate::SharedServeEngine`] (one mutex around the
/// whole lookup → score → insert → account critical section — that is what
/// keeps `cache_hits + cache_misses == queries` exact under concurrency).
/// The `serve.*` telemetry counters are atomic and may be incremented from
/// any engine in the process; the `serve.*` gauges published by
/// [`ServeStats::summarize`] are last-writer-wins process-global, so a
/// deployment with several engines should publish from one summary site.
pub struct ServeEngine {
    model: Arc<ServingModel>,
    cfg: ServeConfig,
    /// Keyed on `(user, precision)`: the two kernels round differently, so a
    /// Fast32 answer must never satisfy an Exact64 lookup (or vice versa) —
    /// mixing them would silently change served bits when callers alternate
    /// precisions on one engine.
    cache: LruCache<(u32, ScorePrecision), Arc<Vec<ScoredItem>>>,
    stats: ServeStats,
}

impl ServeEngine {
    /// A new engine serving `model` with knobs `cfg`.
    pub fn new(model: ServingModel, cfg: ServeConfig) -> Self {
        Self::new_shared(Arc::new(model), cfg)
    }

    /// [`ServeEngine::new`] over an already-shared model (hot-swap tiers keep
    /// the previous `Arc` alive until its last in-flight batch retires).
    pub fn new_shared(model: Arc<ServingModel>, cfg: ServeConfig) -> Self {
        let cache = LruCache::new(cfg.cache_capacity);
        Self { model, cfg, cache, stats: ServeStats::default() }
    }

    /// The underlying immutable model.
    pub fn model(&self) -> &ServingModel {
        &self.model
    }

    /// A shared handle to the underlying model (the `Arc` a hot-swap
    /// replaces).
    pub fn model_arc(&self) -> Arc<ServingModel> {
        Arc::clone(&self.model)
    }

    /// Atomically replaces the served model, returning the previous one.
    ///
    /// The offered model must carry the **same CSR fingerprints** as the
    /// running one — the snapshot-invalidation rule of DESIGN.md §12 applied
    /// to swaps: a replacement is a *retrained* model of the same world, not
    /// a model of a different graph. On mismatch the swap is refused with a
    /// typed [`SwapError`] and the engine keeps serving the running model.
    ///
    /// On success the hot-user LRU is cleared (its entries are answers from
    /// the outgoing model) while the running [`ServeStats`] carry over, so
    /// accounting spans swaps. Because the caller holds `&mut self`, a swap
    /// can never interleave with a `serve_batch` — every batch is answered
    /// entirely by one model.
    pub fn try_swap(&mut self, model: Arc<ServingModel>) -> Result<Arc<ServingModel>, SwapError> {
        if model.fingerprints() != self.model.fingerprints() {
            return Err(SwapError::FingerprintMismatch {
                running: self.model.fingerprints(),
                offered: model.fingerprints(),
            });
        }
        let running = (self.model.n_users(), self.model.n_items());
        let offered = (model.n_users(), model.n_items());
        if running != offered {
            return Err(SwapError::ShapeMismatch { running, offered });
        }
        self.cache.clear();
        Ok(std::mem::replace(&mut self.model, model))
    }

    /// The engine's configuration.
    pub fn config(&self) -> ServeConfig {
        self.cfg
    }

    /// Running totals so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Answers a batch of user queries with top-K lists, in query order,
    /// using the engine's configured [`ScorePrecision`]. Duplicate users
    /// within a batch are scored once.
    ///
    /// # Panics
    /// Panics if any user id is out of range for the model.
    pub fn serve_batch(&mut self, users: &[usize]) -> Vec<Arc<Vec<ScoredItem>>> {
        self.serve_batch_with(users, self.cfg.precision)
    }

    /// [`ServeEngine::serve_batch`] with an explicit scoring kernel. Cache
    /// entries are keyed on `(user, precision)`, so batches served at
    /// different precisions never see each other's lists.
    ///
    /// # Panics
    /// Panics if any user id is out of range for the model.
    pub fn serve_batch_with(
        &mut self,
        users: &[usize],
        precision: ScorePrecision,
    ) -> Vec<Arc<Vec<ScoredItem>>> {
        let _span = telemetry::span("serve_batch");
        let start = Instant::now();

        // Partition the batch into cache hits and misses; scoring dedupes
        // the missing users but every missed slot still counts as a miss.
        let mut answers: Vec<Option<Arc<Vec<ScoredItem>>>> = vec![None; users.len()];
        let mut misses: Vec<usize> = Vec::new();
        let mut miss_slots: u64 = 0;
        for (slot, &u) in users.iter().enumerate() {
            assert!(u < self.model.n_users(), "user id {u} out of range");
            if let Some(hit) = self.cache.get(&(u as u32, precision)) {
                self.stats.cache_hits += 1;
                answers[slot] = Some(Arc::clone(hit));
            } else {
                miss_slots += 1;
                if !misses.contains(&u) {
                    misses.push(u);
                }
            }
        }
        let hits = users.len() as u64 - miss_slots;

        // One blocked matmul (or f32 kernel pass) over all missing users.
        if !misses.is_empty() {
            let lists = self.model.top_k_batch_with(&misses, self.cfg.top_k, precision);
            for (&u, list) in misses.iter().zip(lists) {
                let shared = Arc::new(list);
                self.cache.insert((u as u32, precision), Arc::clone(&shared));
                for (slot, &q) in users.iter().enumerate() {
                    if q == u && answers[slot].is_none() {
                        answers[slot] = Some(Arc::clone(&shared));
                    }
                }
            }
        }

        let elapsed = start.elapsed();
        self.stats.batches += 1;
        self.stats.queries += users.len() as u64;
        self.stats.cache_misses += miss_slots;
        self.stats.latencies_us.push(elapsed.as_micros() as u64);
        self.stats.total_time += elapsed;
        BATCHES.incr();
        QUERIES.add(users.len() as u64);
        CACHE_HITS.add(hits);
        CACHE_MISSES.add(miss_slots);

        answers.into_iter().map(|a| a.expect("every slot answered")).collect()
    }

    /// Summarizes and publishes run metrics (see [`ServeStats::summarize`]).
    pub fn summary(&self) -> ServeSummary {
        self.stats.summarize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msopds_autograd::Tensor;
    use msopds_recsys::snapshot::{ModelKind, Snapshot, SnapshotHeader};
    use msopds_recsys::Backend;

    fn tiny_model() -> ServingModel {
        // 3 users × 4 items × d=2, hand-picked so scores are exact.
        let user = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        let item = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], &[4, 2]);
        let b_u = Tensor::from_vec(vec![0.1, 0.2, 0.3], &[3, 1]);
        let b_i = Tensor::from_vec(vec![0.0, 0.0, 0.0, 0.0], &[4, 1]);
        let snap = Snapshot {
            header: SnapshotHeader {
                kind: ModelKind::Mf,
                backend: Backend::Dense,
                seed: 7,
                social_fingerprint: 0,
                item_fingerprint: 0,
                n_users: 3,
                n_items: 4,
                mu: 3.0,
            },
            config_json: String::from("{}"),
            tensors: vec![
                (String::from("p"), user),
                (String::from("q"), item),
                (String::from("b_u"), b_u),
                (String::from("b_i"), b_i),
            ],
        };
        ServingModel::from_snapshot(&snap).expect("valid snapshot")
    }

    #[test]
    fn cached_answers_equal_fresh_answers() {
        let model = tiny_model();
        let mut engine = ServeEngine::new(
            model.clone(),
            ServeConfig { top_k: 3, cache_capacity: 8, ..ServeConfig::default() },
        );
        let first = engine.serve_batch(&[0, 1, 2]);
        let second = engine.serve_batch(&[2, 0]); // both should hit
        assert_eq!(*second[0], *first[2]);
        assert_eq!(*second[1], *first[0]);
        assert_eq!(engine.stats().cache_hits, 2);
        assert_eq!(engine.stats().cache_misses, 3);
        // And both match the model answered directly.
        assert_eq!(*first[1], model.top_k(1, 3));
    }

    #[test]
    fn duplicate_users_in_batch_are_scored_once() {
        let mut engine = ServeEngine::new(
            tiny_model(),
            ServeConfig { top_k: 2, cache_capacity: 8, ..ServeConfig::default() },
        );
        let out = engine.serve_batch(&[1, 1, 1]);
        // All three slots miss (hits + misses always equals queries), but
        // the user is scored once and cached: a follow-up query hits.
        assert_eq!(engine.stats().cache_misses, 3);
        assert_eq!(engine.stats().cache_hits, 0);
        assert_eq!(engine.stats().queries, 3);
        assert_eq!(*out[0], *out[1]);
        assert_eq!(*out[1], *out[2]);
        let again = engine.serve_batch(&[1]);
        assert_eq!(engine.stats().cache_hits, 1);
        assert_eq!(*again[0], *out[0]);
    }

    #[test]
    fn zero_capacity_cache_still_serves_correctly() {
        let model = tiny_model();
        let mut engine = ServeEngine::new(
            model.clone(),
            ServeConfig { top_k: 4, cache_capacity: 0, ..ServeConfig::default() },
        );
        let a = engine.serve_batch(&[0, 2]);
        let b = engine.serve_batch(&[0, 2]);
        assert_eq!(*a[0], *b[0]);
        assert_eq!(engine.stats().cache_hits, 0);
        assert_eq!(engine.stats().cache_misses, 4);
        assert_eq!(*a[1], model.top_k(2, 4));
    }

    #[test]
    fn mixed_precision_batches_never_share_cache_entries() {
        // tiny_model's user biases (0.1, 0.2, 0.3) are not exactly
        // representable in f32, so the two kernels must produce different
        // score bits for the same user — a cross-precision cache hit would
        // be observable corruption, not just staleness.
        let mut engine = ServeEngine::new(
            tiny_model(),
            ServeConfig { top_k: 4, cache_capacity: 8, ..ServeConfig::default() },
        );
        let exact = engine.serve_batch_with(&[1], ScorePrecision::Exact64);
        let fast = engine.serve_batch_with(&[1], ScorePrecision::Fast32);
        // Same user, two precisions: both lookups miss, nothing cross-hits.
        assert_eq!(engine.stats().cache_misses, 2);
        assert_eq!(engine.stats().cache_hits, 0);
        assert!(exact[0]
            .iter()
            .zip(fast[0].iter())
            .any(|(e, f)| e.score.to_bits() != f.score.to_bits()));
        // Each precision then hits its own entry and returns its own bits.
        let exact2 = engine.serve_batch_with(&[1], ScorePrecision::Exact64);
        let fast2 = engine.serve_batch_with(&[1], ScorePrecision::Fast32);
        assert_eq!(engine.stats().cache_hits, 2);
        assert_eq!(*exact2[0], *exact[0]);
        assert_eq!(*fast2[0], *fast[0]);
    }

    #[test]
    fn configured_precision_drives_serve_batch() {
        let model = tiny_model();
        let mut engine = ServeEngine::new(
            model.clone(),
            ServeConfig { top_k: 4, precision: ScorePrecision::Fast32, ..ServeConfig::default() },
        );
        let served = engine.serve_batch(&[2]);
        let direct = model.top_k_batch_with(&[2], 4, ScorePrecision::Fast32);
        assert_eq!(*served[0], direct[0]);
    }

    /// `tiny_model` with every embedding value doubled: same shapes and
    /// fingerprints, different answers — a retrained model of the same world.
    fn tiny_model_doubled() -> ServingModel {
        let user = Tensor::from_vec(vec![2.0, 0.0, 0.0, 2.0, 2.0, 2.0], &[3, 2]);
        let item = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0], &[4, 2]);
        let b_u = Tensor::from_vec(vec![0.2, 0.4, 0.6], &[3, 1]);
        let b_i = Tensor::from_vec(vec![0.0, 0.0, 0.0, 0.0], &[4, 1]);
        let snap = Snapshot {
            header: SnapshotHeader {
                kind: ModelKind::Mf,
                backend: Backend::Dense,
                seed: 8,
                social_fingerprint: 0,
                item_fingerprint: 0,
                n_users: 3,
                n_items: 4,
                mu: 3.0,
            },
            config_json: String::from("{}"),
            tensors: vec![
                (String::from("p"), user),
                (String::from("q"), item),
                (String::from("b_u"), b_u),
                (String::from("b_i"), b_i),
            ],
        };
        ServingModel::from_snapshot(&snap).expect("valid snapshot")
    }

    #[test]
    fn swap_clears_cache_and_serves_new_model() {
        let old = tiny_model();
        let new = tiny_model_doubled();
        let mut engine = ServeEngine::new(
            old.clone(),
            ServeConfig { top_k: 4, cache_capacity: 8, ..ServeConfig::default() },
        );
        let before = engine.serve_batch(&[0, 1]);
        assert_eq!(*before[0], old.top_k(0, 4));
        let prev = engine.try_swap(Arc::new(new.clone())).expect("fingerprints match");
        assert_eq!(prev.top_k(0, 4), old.top_k(0, 4));
        // The cache was cleared: the same users re-score (a miss each) and
        // the answers are the new model's, bit for bit.
        let after = engine.serve_batch(&[0, 1]);
        assert_eq!(*after[0], new.top_k(0, 4));
        assert_eq!(*after[1], new.top_k(1, 4));
        assert_eq!(engine.stats().cache_misses, 4);
        assert_eq!(engine.stats().queries, 4); // stats carried across the swap
    }

    #[test]
    fn swap_rejects_fingerprint_mismatch_and_keeps_serving() {
        let model = tiny_model();
        let mut engine = ServeEngine::new(model.clone(), ServeConfig::default());
        let snap_mismatch = Snapshot {
            header: SnapshotHeader {
                kind: ModelKind::Mf,
                backend: Backend::Dense,
                seed: 7,
                social_fingerprint: 0xDEAD,
                item_fingerprint: 0xBEEF,
                n_users: 3,
                n_items: 4,
                mu: 3.0,
            },
            config_json: String::from("{}"),
            tensors: vec![
                (String::from("p"), Tensor::from_vec(vec![0.0; 6], &[3, 2])),
                (String::from("q"), Tensor::from_vec(vec![0.0; 8], &[4, 2])),
                (String::from("b_u"), Tensor::from_vec(vec![0.0; 3], &[3, 1])),
                (String::from("b_i"), Tensor::from_vec(vec![0.0; 4], &[4, 1])),
            ],
        };
        let offered = ServingModel::from_snapshot(&snap_mismatch).expect("valid snapshot");
        let err = engine.try_swap(Arc::new(offered)).unwrap_err();
        assert_eq!(
            err,
            SwapError::FingerprintMismatch { running: (0, 0), offered: (0xDEAD, 0xBEEF) }
        );
        // Serving continues on the old model.
        let served = engine.serve_batch(&[2]);
        assert_eq!(*served[0], model.top_k(2, 10));
    }

    #[test]
    fn summary_percentiles_are_ordered() {
        let mut engine = ServeEngine::new(tiny_model(), ServeConfig::default());
        for _ in 0..10 {
            engine.serve_batch(&[0, 1, 2]);
        }
        let s = engine.summary();
        assert_eq!(s.batches, 10);
        assert_eq!(s.queries, 30);
        assert!(s.p50_us <= s.p99_us);
        assert!(s.users_per_sec > 0.0);
    }
}
