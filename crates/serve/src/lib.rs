//! # msopds-serve
//!
//! The first *read path* of the workspace: load a trained-model [`Snapshot`]
//! into an immutable [`ServingModel`] and answer batched top-K
//! recommendation queries, without retraining and without the write-side
//! crates (planners, games, experiment harness) anywhere on the call stack.
//!
//! ## Fidelity contract
//!
//! On the default [`ScorePrecision::Exact64`] path, served scores are
//! **bit-identical** to what the in-process model would predict:
//! [`ServingModel::score_batch`] reproduces the exact floating-point
//! association order of `HetRec::predict` / `MF::predict`
//! (`((μ + b_u) + b_i) + Σ_k u_k·i_k`, with the dot product accumulated in
//! `k` order by the pooled matmul kernel). That makes a snapshot + serve
//! round trip a *regression fixture*: any drift between served lists and
//! in-process evaluation is a bug, not noise.
//!
//! The opt-in [`ScorePrecision::Fast32`] path trades that bit fidelity for
//! throughput: the same association order evaluated in `f32` by a
//! lane-unrolled panel kernel, tolerance-bounded against the exact path
//! (≤ 1e-4 on the golden worlds) rather than bit-equal. It never runs
//! unless explicitly selected per engine/batch, and cache entries are keyed
//! on `(user, precision)` so the two paths cannot contaminate each other.
//!
//! ## Determinism contract
//!
//! Top-K lists — ties included — are identical for any kernel-pool lane
//! count (the matmul kernels are bit-deterministic per DESIGN.md §6) and for
//! any batch size (each output row depends only on its own user row).
//! Ordering is total: score descending, then item id ascending, compared
//! with `f64::total_cmp` so even exotic payloads order reproducibly.
//!
//! ## Layers
//!
//! * [`ServingModel`] — immutable scorer: `score_batch`, `top_k`,
//!   `top_k_batch` (the blocked score-matmul runs on the autograd worker
//!   pool);
//! * [`LruCache`] — a bounded, dependency-free LRU used for hot users;
//! * [`ServeEngine`] — stateful front end: per-user top-K cache, batch
//!   dedup, telemetry spans/counters and QPS / p50 / p99 latency tracking,
//!   plus fingerprint-checked model hot-swap ([`ServeEngine::try_swap`]);
//! * [`SharedServeEngine`] — the `Send + Sync` handle concurrent serving
//!   tiers (`msopds-serve-async`) use: one lock around the engine's whole
//!   batch-level critical section, so the hit/miss accounting invariant and
//!   swap atomicity survive concurrent callers.

#![warn(missing_docs)]

mod engine;
mod lru;
mod model;
mod shared;

pub use engine::{ServeConfig, ServeEngine, ServeStats, ServeSummary, SwapError};
pub use lru::LruCache;
pub use model::{ScorePrecision, ScoredItem, ServingModel};
pub use shared::SharedServeEngine;

pub use msopds_recsys::snapshot::{MappedSnapshot, Snapshot, SnapshotError, SnapshotSource};
