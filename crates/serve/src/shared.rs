//! A thread-safe handle over [`ServeEngine`] for concurrent serving tiers.
//!
//! `ServeEngine` itself takes `&mut self`: every serve call mutates the
//! hot-user LRU (lookups refresh recency, misses insert, full caches evict)
//! and the running [`ServeStats`] totals. None of that state is atomic, and
//! the *invariant* the engine promises — `cache_hits + cache_misses ==
//! queries`, duplicate misses scored once — spans the whole lookup → score →
//! insert → account sequence. Two callers interleaving inside that sequence
//! could double-score a user, miscount a hit as a miss, or tear the LRU's
//! recency stamps.
//!
//! [`SharedServeEngine`] makes the engine's batch granularity the
//! concurrency granularity: one mutex around the entire engine, held for the
//! full critical section of each batch. That is the right lock scope for the
//! async serving tier, whose dynamic batcher dispatches one coalesced batch
//! at a time anyway — the lock adds one uncontended acquisition per *batch*,
//! not per query. Hot-swaps ([`SharedServeEngine::try_swap`]) take the same
//! lock, so a swap can only happen *between* batches: every response is
//! computed entirely against one model, never a torn mix.
//!
//! The `serve.*` telemetry counters are atomics and remain exact under
//! concurrency. The `serve.*` *gauges* published by
//! [`ServeStats::summarize`] are process-global last-writer-wins; publishing
//! through [`SharedServeEngine::summary`] serializes them with serving, so
//! one shared engine never publishes a half-updated summary.

use std::sync::{Arc, Mutex, MutexGuard};

use crate::engine::{ServeConfig, ServeEngine, ServeStats, ServeSummary, SwapError};
use crate::model::{ScorePrecision, ScoredItem, ServingModel};

/// A cloneable, `Send + Sync` front end over one [`ServeEngine`].
///
/// All clones share the same engine (model, hot-user LRU, stats); each
/// method locks the engine for exactly one batch-level critical section.
/// See the module docs for why the whole engine is one lock domain.
#[derive(Clone)]
pub struct SharedServeEngine {
    inner: Arc<Mutex<ServeEngine>>,
}

impl SharedServeEngine {
    /// Wraps `engine` for shared use.
    pub fn new(engine: ServeEngine) -> Self {
        Self { inner: Arc::new(Mutex::new(engine)) }
    }

    /// The engine guard, recovering from a poisoned lock: the engine's state
    /// is batch-atomic (a panicking batch leaves no partial LRU or stats
    /// mutation observable to later batches that could violate the
    /// accounting invariant), so serving continues after a poisoned panic.
    fn lock(&self) -> MutexGuard<'_, ServeEngine> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// [`ServeEngine::serve_batch`] under the engine lock.
    ///
    /// # Panics
    /// Panics if any user id is out of range for the model.
    pub fn serve_batch(&self, users: &[usize]) -> Vec<Arc<Vec<ScoredItem>>> {
        self.lock().serve_batch(users)
    }

    /// [`ServeEngine::serve_batch_with`] under the engine lock.
    ///
    /// # Panics
    /// Panics if any user id is out of range for the model.
    pub fn serve_batch_with(
        &self,
        users: &[usize],
        precision: ScorePrecision,
    ) -> Vec<Arc<Vec<ScoredItem>>> {
        self.lock().serve_batch_with(users, precision)
    }

    /// [`ServeEngine::try_swap`] under the engine lock: the swap waits for
    /// any in-flight batch and the next batch serves the new model.
    pub fn try_swap(&self, model: Arc<ServingModel>) -> Result<Arc<ServingModel>, SwapError> {
        self.lock().try_swap(model)
    }

    /// A shared handle to the currently-served model.
    pub fn model_arc(&self) -> Arc<ServingModel> {
        self.lock().model_arc()
    }

    /// The engine's configuration.
    pub fn config(&self) -> ServeConfig {
        self.lock().config()
    }

    /// A snapshot of the running totals (cloned out under the lock, so the
    /// accounting invariant holds within the returned value).
    pub fn stats(&self) -> ServeStats {
        self.lock().stats().clone()
    }

    /// Summarizes and publishes run metrics under the engine lock (see
    /// [`ServeStats::summarize`] and the module docs on gauge publishing).
    pub fn summary(&self) -> ServeSummary {
        self.lock().summary()
    }

    /// Runs `f` with exclusive access to the engine — for maintenance that
    /// composes several engine calls into one critical section.
    pub fn with_engine<R>(&self, f: impl FnOnce(&mut ServeEngine) -> R) -> R {
        f(&mut self.lock())
    }
}

impl std::fmt::Debug for SharedServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedServeEngine").finish_non_exhaustive()
    }
}
