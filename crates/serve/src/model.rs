//! The immutable serving model and its batched scoring kernels.

use std::path::Path;
use std::sync::{Arc, OnceLock};

use msopds_autograd::{pool, Tensor};
use msopds_recsys::snapshot::{
    MappedSnapshot, ModelKind, Snapshot, SnapshotError, SnapshotSource,
};
use msopds_recsys::Backend;

/// Rows per scoring block in [`ServingModel::top_k_batch`]: 64 rows × a
/// few hundred items of f64 scores stay within L2 even on small cores,
/// which is what lets huge batches keep the per-user cost of medium ones.
const SCORE_BLOCK: usize = 64;

/// Lane width of the f32 fast-path kernel: item embeddings are packed into
/// panels of 8 items so the inner loop reads one contiguous 8-wide block per
/// embedding component (8 × f32 = one 256-bit vector register).
const F32_LANES: usize = 8;

/// Which scoring kernel a serving call runs.
///
/// [`Exact64`](ScorePrecision::Exact64) is the default and the only path the
/// golden traces exercise: every score is bit-identical to
/// [`ServingModel::predict`] and therefore to training. [`Fast32`]
/// (ScorePrecision::Fast32) is the opt-in throughput path: scores are
/// computed in `f32` with the **same association order** as the exact kernel
/// (`((μ + b_u) + b_i) + Σₖ uₖ·qₖ`, the dot product accumulated in `k`
/// order), so the only deviation is rounding — bounded by the tolerance
/// trace tests at 1e-4 on the golden worlds. Top-K *sets* may differ from
/// exact only where neighboring scores are closer than that rounding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ScorePrecision {
    /// Bit-exact `f64` scoring (the training association order).
    #[default]
    Exact64,
    /// Lane-unrolled `f32` scoring; tolerance-bounded, roughly 2× throughput.
    Fast32,
}

impl ScorePrecision {
    /// Canonical lowercase name (`exact64` | `fast32`).
    pub fn as_str(&self) -> &'static str {
        match self {
            ScorePrecision::Exact64 => "exact64",
            ScorePrecision::Fast32 => "fast32",
        }
    }

    /// The precision named by the `MSOPDS_PRECISION` environment variable,
    /// or `Exact64` when unset.
    ///
    /// # Panics
    /// Panics on an unrecognized value — a misspelled precision must not
    /// silently serve different numbers.
    pub fn from_env() -> Self {
        match std::env::var("MSOPDS_PRECISION") {
            Ok(s) => s.parse().unwrap_or_else(|e: String| panic!("MSOPDS_PRECISION: {e}")),
            Err(_) => ScorePrecision::Exact64,
        }
    }
}

impl std::str::FromStr for ScorePrecision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "exact64" | "exact" | "f64" => Ok(ScorePrecision::Exact64),
            "fast32" | "fast" | "f32" => Ok(ScorePrecision::Fast32),
            other => Err(format!("unknown precision {other:?} (expected exact64|fast32)")),
        }
    }
}

impl std::fmt::Display for ScorePrecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One entry of a top-K answer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredItem {
    /// Item id.
    pub item: u32,
    /// Predicted rating (unclamped, same scale as `HetRec::predict`).
    pub score: f64,
}

/// Where one model tensor's payload lives: copied onto the heap (the classic
/// path) or still inside a shared snapshot mapping (the zero-copy path of
/// [`ServingModel::open`] with [`SnapshotSource::Mmap`]). Both hand out the
/// same row-major `&[f64]`, so every kernel downstream is storage-agnostic
/// and bit-identical across the two.
#[derive(Clone)]
enum Store {
    Owned(Tensor),
    Mapped { map: Arc<MappedSnapshot>, name: &'static str, rows: usize, cols: usize },
}

impl Store {
    fn rows(&self) -> usize {
        match self {
            Store::Owned(t) => t.rows(),
            Store::Mapped { rows, .. } => *rows,
        }
    }

    fn cols(&self) -> usize {
        match self {
            Store::Owned(t) => t.cols(),
            Store::Mapped { cols, .. } => *cols,
        }
    }

    /// The row-major payload. The mapped arm re-resolves the directory entry
    /// (a handful of name compares) — callers on hot paths hoist this once
    /// per batch, never per row.
    fn data(&self) -> &[f64] {
        match self {
            Store::Owned(t) => t.data(),
            Store::Mapped { map, name, .. } => {
                map.view(name).expect("validated at load").data()
            }
        }
    }

    /// Flat index read (cold paths only).
    fn get(&self, i: usize) -> f64 {
        self.data()[i]
    }

    /// Copies the given rows into a dense `[rows.len(), cols]` tensor — the
    /// same gather the owned tensor performs, so downstream matmuls see
    /// bit-identical inputs regardless of storage.
    fn gather_rows(&self, rows: &[usize]) -> Tensor {
        match self {
            Store::Owned(t) => t.gather_rows(rows),
            Store::Mapped { cols, .. } => {
                let d = *cols;
                let data = self.data();
                let mut out = Vec::with_capacity(rows.len() * d);
                for &r in rows {
                    out.extend_from_slice(&data[r * d..(r + 1) * d]);
                }
                Tensor::from_vec(out, &[rows.len(), d])
            }
        }
    }

    fn is_mapped(&self) -> bool {
        matches!(self, Store::Mapped { .. })
    }

    fn heap_bytes(&self) -> usize {
        match self {
            Store::Owned(t) => t.numel() * 8,
            Store::Mapped { .. } => 0,
        }
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Store::Owned(t) => write!(f, "Owned[{}, {}]", t.rows(), t.cols()),
            Store::Mapped { name, rows, cols, .. } => write!(f, "Mapped({name})[{rows}, {cols}]"),
        }
    }
}

/// An immutable trained recommender loaded from a [`Snapshot`], holding only
/// what the read path needs: the final user/item embeddings, the bias
/// vectors and μ. Construction validates shapes once; serving then runs
/// without any checks on the hot path.
#[derive(Clone, Debug)]
pub struct ServingModel {
    kind: ModelKind,
    backend: Backend,
    seed: u64,
    social_fingerprint: u64,
    item_fingerprint: u64,
    mu: f64,
    b_u: Store,
    b_i: Store,
    /// Final user embeddings, `[n_users, d]`.
    user_f: Store,
    /// Final item embeddings, `[n_items, d]` (row-major; the scoring matmul
    /// uses the transposed copy below).
    item_f: Store,
    /// `item_f` transposed once at load time: `[d, n_items]`. Always owned —
    /// it is a derived layout, not a snapshot payload.
    item_t: Tensor,
    /// Lazily-built f32 fast-path tables (shared across clones; built on the
    /// first [`ScorePrecision::Fast32`] call and never on the exact path).
    fast: Arc<OnceLock<FastPath>>,
}

/// The precomputed `f32` tables of the fast scoring kernel.
///
/// Item embeddings are packed into ⌈m/8⌉ *panels*: panel `p` holds items
/// `8p..8p+8` interleaved by component, entry `(p·d + k)·8 + j` being
/// component `k` of item `8p + j` (tail items zero-padded). One panel's
/// scoring pass reads `d` contiguous 8-lane blocks — unit-stride streams the
/// autovectorizer turns into one fused multiply-add per block — instead of 8
/// strided item rows.
struct FastPath {
    mu: f32,
    b_u: Vec<f32>,
    b_i: Vec<f32>,
    /// User embeddings, row-major `[n_users, d]`.
    user_f: Vec<f32>,
    /// Panel-packed item embeddings, `⌈m/8⌉ · d · 8` entries.
    item_panels: Vec<f32>,
    d: usize,
    m: usize,
}

impl std::fmt::Debug for FastPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FastPath")
            .field("users", &self.b_u.len())
            .field("items", &self.m)
            .field("dim", &self.d)
            .finish()
    }
}

impl FastPath {
    fn build(model: &ServingModel) -> Self {
        let (d, m) = (model.dim(), model.n_items());
        let item = model.item_f.data();
        let n_panels = m.div_ceil(F32_LANES);
        let mut item_panels = vec![0.0f32; n_panels * d * F32_LANES];
        for p in 0..n_panels {
            for k in 0..d {
                for j in 0..F32_LANES {
                    let i = p * F32_LANES + j;
                    if i < m {
                        item_panels[(p * d + k) * F32_LANES + j] = item[i * d + k] as f32;
                    }
                }
            }
        }
        Self {
            mu: model.mu as f32,
            b_u: model.b_u.data().iter().map(|&v| v as f32).collect(),
            b_i: model.b_i.data().iter().map(|&v| v as f32).collect(),
            user_f: model.user_f.data().iter().map(|&v| v as f32).collect(),
            item_panels,
            d,
            m,
        }
    }

    /// Scores every item for `user` into `out` (length `m`).
    ///
    /// Association order per item: `((μ + b_u) + b_i) + Σₖ uₖ·qₖ` with the
    /// dot product accumulated strictly in `k` order — the exact kernel's
    /// order, in `f32`. The 8-wide unroll runs *across items* (8 independent
    /// accumulators), never inside one dot product, so the order is
    /// deterministic and documented rather than lane-count-dependent.
    fn score_into(&self, user: usize, out: &mut [f32]) {
        let (d, m) = (self.d, self.m);
        debug_assert_eq!(out.len(), m);
        let u = &self.user_f[user * d..(user + 1) * d];
        let base = self.mu + self.b_u[user];
        for (p, panel) in self.item_panels.chunks_exact(d * F32_LANES).enumerate() {
            let mut acc = [0.0f32; F32_LANES];
            for (k, lane) in panel.chunks_exact(F32_LANES).enumerate() {
                let uk = u[k];
                for j in 0..F32_LANES {
                    acc[j] += uk * lane[j];
                }
            }
            let i0 = p * F32_LANES;
            for (j, &a) in acc.iter().take(m - i0).enumerate() {
                out[i0 + j] = (base + self.b_i[i0 + j]) + a;
            }
        }
    }
}

/// The snapshot tensor names a model kind serves from.
fn embedding_names(kind: ModelKind) -> (&'static str, &'static str) {
    match kind {
        ModelKind::HetRec => ("finals.user", "finals.item"),
        ModelKind::Mf => ("p", "q"),
    }
}

/// Shared shape validation for both storage paths.
fn check_shapes(
    n_users: usize,
    n_items: usize,
    user: (usize, usize),
    item: (usize, usize),
    b_u: usize,
    b_i: usize,
) -> Result<(), SnapshotError> {
    if user.0 != n_users || item.0 != n_items {
        return Err(SnapshotError::Corrupt {
            context: format!(
                "embedding row counts {}×{} disagree with header {n_users}×{n_items}",
                user.0, item.0
            ),
        });
    }
    if user.1 != item.1 {
        return Err(SnapshotError::Corrupt {
            context: format!("user dim {} != item dim {}", user.1, item.1),
        });
    }
    if b_u != n_users || b_i != n_items {
        return Err(SnapshotError::Corrupt {
            context: format!(
                "bias lengths {b_u}/{b_i} disagree with header {n_users}×{n_items}"
            ),
        });
    }
    Ok(())
}

/// `[rows, cols]` row-major data transposed into an owned `[cols, rows]`
/// tensor — a pure copy, so both storage paths derive bit-identical `item_t`.
fn transposed(data: &[f64], rows: usize, cols: usize) -> Tensor {
    let mut out = vec![0.0f64; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = data[r * cols + c];
        }
    }
    Tensor::from_vec(out, &[cols, rows])
}

impl ServingModel {
    /// Builds a serving model from a parsed snapshot. For
    /// [`ModelKind::HetRec`] the served embeddings are the post-convolution
    /// finals; for [`ModelKind::Mf`] the factor matrices themselves.
    pub fn from_snapshot(snap: &Snapshot) -> Result<Self, SnapshotError> {
        let (user_name, item_name) = embedding_names(snap.header.kind);
        let user_f = snap.require(user_name)?.clone();
        let item_f = snap.require(item_name)?.clone();
        let b_u = snap.require("b_u")?.clone();
        let b_i = snap.require("b_i")?.clone();
        let (n_users, n_items) = (snap.header.n_users as usize, snap.header.n_items as usize);
        check_shapes(
            n_users,
            n_items,
            (user_f.rows(), user_f.cols()),
            (item_f.rows(), item_f.cols()),
            b_u.numel(),
            b_i.numel(),
        )?;
        let item_t = transposed(item_f.data(), n_items, item_f.cols());
        Ok(Self {
            kind: snap.header.kind,
            backend: snap.header.backend,
            seed: snap.header.seed,
            social_fingerprint: snap.header.social_fingerprint,
            item_fingerprint: snap.header.item_fingerprint,
            mu: snap.header.mu,
            b_u: Store::Owned(b_u),
            b_i: Store::Owned(b_i),
            user_f: Store::Owned(user_f),
            item_f: Store::Owned(item_f),
            item_t,
            fast: Arc::new(OnceLock::new()),
        })
    }

    /// Builds a serving model over a mapped v2 snapshot without copying any
    /// payload except the derived `item_t` transpose and the lazily-built
    /// f32 tables: embeddings and biases are served straight out of the map.
    ///
    /// Payload checksums are *not* verified here (that would read every byte
    /// and defeat the O(header) load); call
    /// [`MappedSnapshot::verify_payloads`] first when integrity matters.
    pub fn from_mapped(map: Arc<MappedSnapshot>) -> Result<Self, SnapshotError> {
        let header = *map.header();
        let (user_name, item_name) = embedding_names(header.kind);
        let (n_users, n_items) = (header.n_users as usize, header.n_items as usize);
        let store = |name: &'static str| -> Result<Store, SnapshotError> {
            let v = map.require_view(name)?;
            Ok(Store::Mapped { map: Arc::clone(&map), name, rows: v.rows(), cols: v.cols() })
        };
        let user_f = store(user_name)?;
        let item_f = store(item_name)?;
        let b_u = store("b_u")?;
        let b_i = store("b_i")?;
        check_shapes(
            n_users,
            n_items,
            (user_f.rows(), user_f.cols()),
            (item_f.rows(), item_f.cols()),
            b_u.rows() * b_u.cols(),
            b_i.rows() * b_i.cols(),
        )?;
        let item_t = transposed(item_f.data(), n_items, item_f.cols());
        Ok(Self {
            kind: header.kind,
            backend: header.backend,
            seed: header.seed,
            social_fingerprint: header.social_fingerprint,
            item_fingerprint: header.item_fingerprint,
            mu: header.mu,
            b_u,
            b_i,
            user_f,
            item_f,
            item_t,
            fast: Arc::new(OnceLock::new()),
        })
    }

    /// The single loading entry point: heap-parses `Owned`/`File` sources,
    /// memory-maps v2 files behind [`SnapshotSource::Mmap`] (v1 files fall
    /// back to the heap path), and serves bit-identical scores either way.
    pub fn open(source: &SnapshotSource) -> Result<Self, SnapshotError> {
        match source {
            SnapshotSource::Mmap(path) if Snapshot::peek_version(source)? == 2 => {
                Self::from_mapped(Arc::new(MappedSnapshot::open(path)?))
            }
            _ => Self::from_snapshot(&Snapshot::open(source)?),
        }
    }

    /// Reads a snapshot file and builds the serving model — a thin wrapper
    /// over [`ServingModel::open`] with a [`SnapshotSource::File`] (one
    /// buffered read; use [`SnapshotSource::Mmap`] for zero-copy loads).
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::open(&SnapshotSource::file(path))
    }

    /// True when embeddings and biases are served out of a file mapping
    /// rather than heap copies.
    pub fn is_zero_copy(&self) -> bool {
        self.user_f.is_mapped()
    }

    /// Heap bytes held for model parameters (owned payloads plus the derived
    /// `item_t` transpose; the lazily-built f32 tables are excluded). On the
    /// mmap path this is just `item_t` — flat in user count.
    pub fn heap_param_bytes(&self) -> usize {
        self.b_u.heap_bytes()
            + self.b_i.heap_bytes()
            + self.user_f.heap_bytes()
            + self.item_f.heap_bytes()
            + self.item_t.numel() * 8
    }

    /// User universe size.
    pub fn n_users(&self) -> usize {
        self.user_f.rows()
    }

    /// Item universe size.
    pub fn n_items(&self) -> usize {
        self.item_f.rows()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.user_f.cols()
    }

    /// Model family the snapshot held.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Training-time GraphOps backend (provenance only; serving math is
    /// backend-independent).
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Model init seed (provenance).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The `(social, item)` CSR fingerprints stamped at fit time.
    pub fn fingerprints(&self) -> (u64, u64) {
        (self.social_fingerprint, self.item_fingerprint)
    }

    /// Predicted rating of one `(user, item)` pair, in the exact
    /// floating-point association order of `HetRec::predict`.
    ///
    /// # Panics
    /// Panics on out-of-range ids (serving front ends validate ids once per
    /// batch; see [`ServingModel::score_batch`]).
    pub fn predict(&self, user: usize, item: usize) -> f64 {
        let d = self.user_f.cols();
        let u = &self.user_f.data()[user * d..(user + 1) * d];
        let q = &self.item_f.data()[item * d..(item + 1) * d];
        self.mu
            + self.b_u.get(user)
            + self.b_i.get(item)
            + (0..d).map(|k| u[k] * q[k]).sum::<f64>()
    }

    /// Scores every item for a batch of users: returns `[batch, n_items]`.
    ///
    /// The heavy step is a blocked matmul `U[batch] · Iᵀ` that row-partitions
    /// across the autograd worker pool (bit-deterministic at any lane count);
    /// the bias/μ combine is a linear pass in the same association order as
    /// [`ServingModel::predict`], so every score is bit-identical to the
    /// in-process model's.
    ///
    /// # Panics
    /// Panics if any user id is out of range.
    pub fn score_batch(&self, users: &[usize]) -> Tensor {
        let m = self.n_items();
        let rows = self.user_f.gather_rows(users);
        let dots = rows.matmul(&self.item_t);
        let dot_data = dots.data();
        let bi = self.b_i.data();
        let bu = self.b_u.data();
        let mut out = Vec::with_capacity(users.len() * m);
        for (r, &u) in users.iter().enumerate() {
            let base = self.mu + bu[u];
            let drow = &dot_data[r * m..(r + 1) * m];
            for i in 0..m {
                out.push(base + bi[i] + drow[i]);
            }
        }
        Tensor::from_vec(out, &[users.len(), m])
    }

    /// The top `k` items for one user, ordered by score descending with item
    /// id as the (ascending) tiebreak — a total, reproducible order.
    pub fn top_k(&self, user: usize, k: usize) -> Vec<ScoredItem> {
        self.top_k_batch(&[user], k).pop().expect("one row per user")
    }

    /// The top `k` items for each user of a batch. Each row's list depends
    /// only on that user's embedding row, so answers are invariant to how
    /// queries are batched.
    ///
    /// Large batches are processed in blocks of [`SCORE_BLOCK`] rows so the
    /// score matrix stays cache-resident, and each block's bias combine +
    /// selection is row-partitioned across the worker pool (disjoint rows,
    /// so parallel answers are identical to sequential ones).
    ///
    /// # Panics
    /// Panics if any user id is out of range.
    pub fn top_k_batch(&self, users: &[usize], k: usize) -> Vec<Vec<ScoredItem>> {
        self.top_k_batch_with(users, k, ScorePrecision::Exact64)
    }

    /// [`ServingModel::top_k_batch`] with an explicit scoring kernel.
    ///
    /// [`ScorePrecision::Exact64`] runs the bit-exact blocked path;
    /// [`ScorePrecision::Fast32`] scores in `f32` (see [`ScorePrecision`] for
    /// the fidelity contract) and upcasts the surviving k scores, so returned
    /// `score` fields are exactly the f32 kernel's values.
    ///
    /// # Panics
    /// Panics if any user id is out of range.
    pub fn top_k_batch_with(
        &self,
        users: &[usize],
        k: usize,
        precision: ScorePrecision,
    ) -> Vec<Vec<ScoredItem>> {
        match precision {
            ScorePrecision::Exact64 => self.top_k_batch_exact(users, k),
            ScorePrecision::Fast32 => self.top_k_batch_fast(users, k),
        }
    }

    /// The exact blocked path: blocks of [`SCORE_BLOCK`] rows keep the f64
    /// score matrix cache-resident; each block's bias combine + selection is
    /// row-partitioned across the worker pool (disjoint rows, so parallel
    /// answers are identical to sequential ones).
    fn top_k_batch_exact(&self, users: &[usize], k: usize) -> Vec<Vec<ScoredItem>> {
        let m = self.n_items();
        let bi = self.b_i.data();
        let bu = self.b_u.data();
        let mut out = Vec::with_capacity(users.len());
        for block in users.chunks(SCORE_BLOCK) {
            let rows = self.user_f.gather_rows(block);
            let dots = rows.matmul(&self.item_t);
            let dot_data = dots.data();
            let slots: Vec<OnceLock<Vec<ScoredItem>>> =
                (0..block.len()).map(|_| OnceLock::new()).collect();
            let chunk = block.len().div_ceil(pool::lanes()).max(1);
            pool::for_each_range(block.len(), chunk, |start, end| {
                let mut scratch = vec![0.0f64; m];
                for r in start..end {
                    let base = self.mu + bu[block[r]];
                    let drow = &dot_data[r * m..(r + 1) * m];
                    for i in 0..m {
                        scratch[i] = base + bi[i] + drow[i];
                    }
                    let _ = slots[r].set(top_k_row(&scratch, k));
                }
            });
            out.extend(slots.into_iter().map(|s| s.into_inner().expect("every row computed")));
        }
        out
    }

    /// The f32 fast path: the panel-packed kernel scores whole rows, and the
    /// bounded-heap selection runs on the f32 scores upcast one at a time —
    /// no f64 score matrix is ever materialized.
    fn top_k_batch_fast(&self, users: &[usize], k: usize) -> Vec<Vec<ScoredItem>> {
        let m = self.n_items();
        for &u in users {
            assert!(u < self.n_users(), "user id {u} out of range");
        }
        let fast = self.fast();
        let slots: Vec<OnceLock<Vec<ScoredItem>>> =
            (0..users.len()).map(|_| OnceLock::new()).collect();
        let chunk = users.len().div_ceil(pool::lanes()).max(1);
        pool::for_each_range(users.len(), chunk, |start, end| {
            let mut scratch = vec![0.0f32; m];
            for r in start..end {
                fast.score_into(users[r], &mut scratch);
                let _ = slots[r].set(top_k_scores(scratch.iter().map(|&s| s as f64), k.min(m)));
            }
        });
        slots.into_iter().map(|s| s.into_inner().expect("every row computed")).collect()
    }

    /// Scores every item for a batch of users in `f32`: returns a row-major
    /// `[batch, n_items]` buffer from the panel-packed fast kernel. This is
    /// the raw-score counterpart of [`ServingModel::score_batch`] for
    /// [`ScorePrecision::Fast32`] consumers and benchmarks.
    ///
    /// # Panics
    /// Panics if any user id is out of range.
    pub fn score_batch_f32(&self, users: &[usize]) -> Vec<f32> {
        let m = self.n_items();
        for &u in users {
            assert!(u < self.n_users(), "user id {u} out of range");
        }
        let fast = self.fast();
        let slots: Vec<OnceLock<Vec<f32>>> = (0..users.len()).map(|_| OnceLock::new()).collect();
        let chunk = users.len().div_ceil(pool::lanes()).max(1);
        pool::for_each_range(users.len(), chunk, |start, end| {
            for r in start..end {
                let mut row = vec![0.0f32; m];
                fast.score_into(users[r], &mut row);
                let _ = slots[r].set(row);
            }
        });
        let mut out = Vec::with_capacity(users.len() * m);
        for s in slots {
            out.extend(s.into_inner().expect("every row computed"));
        }
        out
    }

    /// The lazily-built f32 tables (one build per model, shared by clones).
    fn fast(&self) -> &FastPath {
        self.fast.get_or_init(|| FastPath::build(self))
    }
}

/// The serving total order: score descending, then item id ascending.
fn rank(a: &ScoredItem, b: &ScoredItem) -> std::cmp::Ordering {
    b.score.total_cmp(&a.score).then(a.item.cmp(&b.item))
}

/// Selects the top `k` of one score row under [`rank`]; shared by the exact
/// and fast paths via [`top_k_scores`], so both produce the same total-order
/// selection for the same scores.
fn top_k_row(row: &[f64], k: usize) -> Vec<ScoredItem> {
    top_k_scores(row.iter().copied(), k.min(row.len()))
}

/// Partial selection of the top `k` scores under [`rank`], streaming over
/// the candidates with a bounded worst-at-root heap — the only allocation is
/// the returned vector, so a blocked batch scan stays allocator-quiet.
///
/// Most of the `m` candidates fail the "beats the current k-th" check and
/// cost one comparison; a survivor replaces the root and sifts down in
/// O(log k) instead of the old insertion buffer's O(k) shift. Since [`rank`]
/// is a strict total order (item ids are distinct), the selected set and its
/// final sorted order are independent of the data structure, so swapping the
/// buffer for a heap changed no output — golden traces included.
fn top_k_scores(scores: impl Iterator<Item = f64>, k: usize) -> Vec<ScoredItem> {
    if k == 0 {
        return Vec::new();
    }
    let mut top: Vec<ScoredItem> = Vec::with_capacity(k);
    for (i, s) in scores.enumerate() {
        let cand = ScoredItem { item: i as u32, score: s };
        if top.len() < k {
            top.push(cand);
            if top.len() == k {
                // Heapify once the buffer is full: worst element to the root.
                for n in (0..k / 2).rev() {
                    sift_down(&mut top, n);
                }
            }
            continue;
        }
        let worst = &top[0];
        // Plain `<` rejects almost every candidate in one comparison;
        // ties, ±0.0 and NaN fall through to the full total order.
        if s < worst.score || rank(&cand, worst).is_ge() {
            continue;
        }
        top[0] = cand;
        sift_down(&mut top, 0);
    }
    top.sort_unstable_by(rank);
    top
}

/// Restores the worst-at-root heap property from node `n` downward: every
/// parent must rank no *better* than its children, so the root is always the
/// current k-th (worst kept) entry and eviction is a root replacement.
fn sift_down(heap: &mut [ScoredItem], mut n: usize) {
    loop {
        let (l, r) = (2 * n + 1, 2 * n + 2);
        let mut worst = n;
        if l < heap.len() && rank(&heap[l], &heap[worst]).is_gt() {
            worst = l;
        }
        if r < heap.len() && rank(&heap[r], &heap[worst]).is_gt() {
            worst = r;
        }
        if worst == n {
            return;
        }
        heap.swap(n, worst);
        n = worst;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msopds_recsys::snapshot::SnapshotHeader;

    /// An in-memory Mf snapshot with pseudo-random (LCG) embeddings so the
    /// f32 kernel sees non-trivial rounding; `n_items` is deliberately not a
    /// multiple of [`F32_LANES`] so every panel-tail branch runs.
    fn lcg_model(n_users: usize, n_items: usize, d: usize) -> ServingModel {
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let fill = |n: usize, next: &mut dyn FnMut() -> f64| -> Vec<f64> {
            (0..n).map(|_| next()).collect()
        };
        let snap = Snapshot {
            header: SnapshotHeader {
                kind: ModelKind::Mf,
                backend: Backend::Dense,
                seed: 11,
                social_fingerprint: 0,
                item_fingerprint: 0,
                n_users: n_users as u64,
                n_items: n_items as u64,
                mu: 3.2,
            },
            config_json: String::from("{}"),
            tensors: vec![
                (String::from("p"), Tensor::from_vec(fill(n_users * d, &mut next), &[n_users, d])),
                (String::from("q"), Tensor::from_vec(fill(n_items * d, &mut next), &[n_items, d])),
                (String::from("b_u"), Tensor::from_vec(fill(n_users, &mut next), &[n_users, 1])),
                (String::from("b_i"), Tensor::from_vec(fill(n_items, &mut next), &[n_items, 1])),
            ],
        };
        ServingModel::from_snapshot(&snap).expect("valid snapshot")
    }

    #[test]
    fn fast32_scores_track_exact_within_tolerance() {
        // 29 items: 3 full panels + a 5-item tail.
        let model = lcg_model(7, 29, 16);
        let users: Vec<usize> = (0..model.n_users()).collect();
        let exact = model.score_batch(&users);
        let fast = model.score_batch_f32(&users);
        assert_eq!(fast.len(), users.len() * model.n_items());
        for (e, f) in exact.data().iter().zip(&fast) {
            assert!((e - *f as f64).abs() < 1e-4, "exact {e} vs fast {f}");
        }
    }

    #[test]
    fn fast32_top_k_matches_exact_on_separated_scores() {
        let model = lcg_model(5, 23, 8);
        let users = [0usize, 3, 4, 1];
        let exact = model.top_k_batch_with(&users, 6, ScorePrecision::Exact64);
        let fast = model.top_k_batch_with(&users, 6, ScorePrecision::Fast32);
        assert_eq!(exact, model.top_k_batch(&users, 6));
        for (erow, frow) in exact.iter().zip(&fast) {
            assert_eq!(erow.len(), frow.len());
            for (e, f) in erow.iter().zip(frow) {
                // With random embeddings neighboring scores are far apart
                // relative to f32 rounding, so the item *sets and order*
                // agree; only the score bits differ.
                assert_eq!(e.item, f.item);
                assert!((e.score - f.score).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn fast32_top_k_handles_k_edge_cases() {
        let model = lcg_model(3, 10, 4);
        assert!(model.top_k_batch_with(&[1], 0, ScorePrecision::Fast32)[0].is_empty());
        let all = model.top_k_batch_with(&[1], 50, ScorePrecision::Fast32);
        assert_eq!(all[0].len(), 10);
    }

    #[test]
    fn precision_parses_and_round_trips() {
        assert_eq!("exact64".parse::<ScorePrecision>().unwrap(), ScorePrecision::Exact64);
        assert_eq!("f64".parse::<ScorePrecision>().unwrap(), ScorePrecision::Exact64);
        assert_eq!("Fast32".parse::<ScorePrecision>().unwrap(), ScorePrecision::Fast32);
        assert_eq!("f32".parse::<ScorePrecision>().unwrap(), ScorePrecision::Fast32);
        assert!("quad".parse::<ScorePrecision>().is_err());
        assert_eq!(ScorePrecision::Fast32.to_string(), "fast32");
        assert_eq!(ScorePrecision::default(), ScorePrecision::Exact64);
    }

    #[test]
    fn top_k_row_orders_and_breaks_ties_by_id() {
        let row = [1.0, 3.0, 3.0, -2.0, 5.0];
        let top = top_k_row(&row, 3);
        assert_eq!(
            top,
            vec![
                ScoredItem { item: 4, score: 5.0 },
                ScoredItem { item: 1, score: 3.0 },
                ScoredItem { item: 2, score: 3.0 },
            ]
        );
    }

    #[test]
    fn top_k_row_handles_k_edge_cases() {
        let row = [2.0, 1.0];
        assert!(top_k_row(&row, 0).is_empty());
        assert_eq!(top_k_row(&row, 5).len(), 2);
        assert_eq!(top_k_row(&row, 5)[0].item, 0);
    }

    #[test]
    fn total_order_handles_negative_zero() {
        let row = [0.0, -0.0];
        let top = top_k_row(&row, 2);
        // total_cmp: +0.0 > -0.0, so item 0 leads.
        assert_eq!(top[0].item, 0);
        assert_eq!(top[1].item, 1);
    }
}
