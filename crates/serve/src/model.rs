//! The immutable serving model and its batched scoring kernels.

use std::path::Path;

use msopds_autograd::{pool, Tensor};
use msopds_recsys::snapshot::{ModelKind, Snapshot, SnapshotError};
use msopds_recsys::Backend;

/// Rows per scoring block in [`ServingModel::top_k_batch`]: 64 rows × a
/// few hundred items of f64 scores stay within L2 even on small cores,
/// which is what lets huge batches keep the per-user cost of medium ones.
const SCORE_BLOCK: usize = 64;

/// One entry of a top-K answer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredItem {
    /// Item id.
    pub item: u32,
    /// Predicted rating (unclamped, same scale as `HetRec::predict`).
    pub score: f64,
}

/// An immutable trained recommender loaded from a [`Snapshot`], holding only
/// what the read path needs: the final user/item embeddings, the bias
/// vectors and μ. Construction validates shapes once; serving then runs
/// without any checks on the hot path.
#[derive(Clone, Debug)]
pub struct ServingModel {
    kind: ModelKind,
    backend: Backend,
    seed: u64,
    social_fingerprint: u64,
    item_fingerprint: u64,
    mu: f64,
    b_u: Tensor,
    b_i: Tensor,
    /// Final user embeddings, `[n_users, d]`.
    user_f: Tensor,
    /// Final item embeddings, `[n_items, d]` (kept row-major; the scoring
    /// matmul uses the transposed copy below).
    item_f: Tensor,
    /// `item_f` transposed once at load time: `[d, n_items]`.
    item_t: Tensor,
}

impl ServingModel {
    /// Builds a serving model from a parsed snapshot. For
    /// [`ModelKind::HetRec`] the served embeddings are the post-convolution
    /// finals; for [`ModelKind::Mf`] the factor matrices themselves.
    pub fn from_snapshot(snap: &Snapshot) -> Result<Self, SnapshotError> {
        let (user_name, item_name) = match snap.header.kind {
            ModelKind::HetRec => ("finals.user", "finals.item"),
            ModelKind::Mf => ("p", "q"),
        };
        let user_f = snap.require(user_name)?.clone();
        let item_f = snap.require(item_name)?.clone();
        let b_u = snap.require("b_u")?.clone();
        let b_i = snap.require("b_i")?.clone();
        let (n_users, n_items) = (snap.header.n_users as usize, snap.header.n_items as usize);
        if user_f.rows() != n_users || item_f.rows() != n_items {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "embedding row counts {}×{} disagree with header {n_users}×{n_items}",
                    user_f.rows(),
                    item_f.rows()
                ),
            });
        }
        if user_f.cols() != item_f.cols() {
            return Err(SnapshotError::Corrupt {
                context: format!("user dim {} != item dim {}", user_f.cols(), item_f.cols()),
            });
        }
        if b_u.numel() != n_users || b_i.numel() != n_items {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "bias lengths {}/{} disagree with header {n_users}×{n_items}",
                    b_u.numel(),
                    b_i.numel()
                ),
            });
        }
        let item_t = item_f.reshape(&[n_items, item_f.cols()]).transpose();
        Ok(Self {
            kind: snap.header.kind,
            backend: snap.header.backend,
            seed: snap.header.seed,
            social_fingerprint: snap.header.social_fingerprint,
            item_fingerprint: snap.header.item_fingerprint,
            mu: snap.header.mu,
            b_u,
            b_i,
            user_f,
            item_f,
            item_t,
        })
    }

    /// Reads a snapshot file and builds the serving model (one buffered read,
    /// no mmap — snapshots at this scale fit comfortably in memory).
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::from_snapshot(&Snapshot::load(path)?)
    }

    /// User universe size.
    pub fn n_users(&self) -> usize {
        self.user_f.rows()
    }

    /// Item universe size.
    pub fn n_items(&self) -> usize {
        self.item_f.rows()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.user_f.cols()
    }

    /// Model family the snapshot held.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Training-time GraphOps backend (provenance only; serving math is
    /// backend-independent).
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Model init seed (provenance).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The `(social, item)` CSR fingerprints stamped at fit time.
    pub fn fingerprints(&self) -> (u64, u64) {
        (self.social_fingerprint, self.item_fingerprint)
    }

    /// Predicted rating of one `(user, item)` pair, in the exact
    /// floating-point association order of `HetRec::predict`.
    ///
    /// # Panics
    /// Panics on out-of-range ids (serving front ends validate ids once per
    /// batch; see [`ServingModel::score_batch`]).
    pub fn predict(&self, user: usize, item: usize) -> f64 {
        let d = self.user_f.cols();
        self.mu
            + self.b_u.get(user)
            + self.b_i.get(item)
            + (0..d).map(|k| self.user_f.at(user, k) * self.item_f.at(item, k)).sum::<f64>()
    }

    /// Scores every item for a batch of users: returns `[batch, n_items]`.
    ///
    /// The heavy step is a blocked matmul `U[batch] · Iᵀ` that row-partitions
    /// across the autograd worker pool (bit-deterministic at any lane count);
    /// the bias/μ combine is a linear pass in the same association order as
    /// [`ServingModel::predict`], so every score is bit-identical to the
    /// in-process model's.
    ///
    /// # Panics
    /// Panics if any user id is out of range.
    pub fn score_batch(&self, users: &[usize]) -> Tensor {
        let m = self.n_items();
        let rows = self.user_f.gather_rows(users);
        let dots = rows.matmul(&self.item_t);
        let dot_data = dots.data();
        let bi = self.b_i.data();
        let mut out = Vec::with_capacity(users.len() * m);
        for (r, &u) in users.iter().enumerate() {
            let base = self.mu + self.b_u.get(u);
            let drow = &dot_data[r * m..(r + 1) * m];
            for i in 0..m {
                out.push(base + bi[i] + drow[i]);
            }
        }
        Tensor::from_vec(out, &[users.len(), m])
    }

    /// The top `k` items for one user, ordered by score descending with item
    /// id as the (ascending) tiebreak — a total, reproducible order.
    pub fn top_k(&self, user: usize, k: usize) -> Vec<ScoredItem> {
        self.top_k_batch(&[user], k).pop().expect("one row per user")
    }

    /// The top `k` items for each user of a batch. Each row's list depends
    /// only on that user's embedding row, so answers are invariant to how
    /// queries are batched.
    ///
    /// Large batches are processed in blocks of [`SCORE_BLOCK`] rows so the
    /// score matrix stays cache-resident, and each block's bias combine +
    /// selection is row-partitioned across the worker pool (disjoint rows,
    /// so parallel answers are identical to sequential ones).
    ///
    /// # Panics
    /// Panics if any user id is out of range.
    pub fn top_k_batch(&self, users: &[usize], k: usize) -> Vec<Vec<ScoredItem>> {
        let m = self.n_items();
        let bi = self.b_i.data();
        let mut out = Vec::with_capacity(users.len());
        for block in users.chunks(SCORE_BLOCK) {
            let rows = self.user_f.gather_rows(block);
            let dots = rows.matmul(&self.item_t);
            let dot_data = dots.data();
            let slots: Vec<std::sync::OnceLock<Vec<ScoredItem>>> =
                (0..block.len()).map(|_| std::sync::OnceLock::new()).collect();
            let chunk = block.len().div_ceil(pool::lanes()).max(1);
            pool::for_each_range(block.len(), chunk, |start, end| {
                let mut scratch = vec![0.0f64; m];
                for r in start..end {
                    let base = self.mu + self.b_u.get(block[r]);
                    let drow = &dot_data[r * m..(r + 1) * m];
                    for i in 0..m {
                        scratch[i] = base + bi[i] + drow[i];
                    }
                    let _ = slots[r].set(top_k_row(&scratch, k));
                }
            });
            out.extend(slots.into_iter().map(|s| s.into_inner().expect("every row computed")));
        }
        out
    }
}

/// The serving total order: score descending, then item id ascending.
fn rank(a: &ScoredItem, b: &ScoredItem) -> std::cmp::Ordering {
    b.score.total_cmp(&a.score).then(a.item.cmp(&b.item))
}

/// Selects the top `k` of one score row under [`rank`] with a bounded
/// insertion buffer — the only allocation is the returned vector, so a
/// blocked batch scan stays allocator-quiet. Most of the `m` candidates
/// fail the "beats the current k-th" check and cost one comparison.
fn top_k_row(row: &[f64], k: usize) -> Vec<ScoredItem> {
    let k = k.min(row.len());
    if k == 0 {
        return Vec::new();
    }
    let mut top: Vec<ScoredItem> = Vec::with_capacity(k + 1);
    for (i, &s) in row.iter().enumerate() {
        let cand = ScoredItem { item: i as u32, score: s };
        if top.len() == k {
            let worst = top.last().expect("non-empty");
            // Plain `<` rejects almost every candidate in one comparison;
            // ties, ±0.0 and NaN fall through to the full total order.
            if s < worst.score || rank(&cand, worst).is_ge() {
                continue;
            }
        }
        let pos = top.partition_point(|held| rank(held, &cand).is_lt());
        top.insert(pos, cand);
        if top.len() > k {
            top.pop();
        }
    }
    top
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_row_orders_and_breaks_ties_by_id() {
        let row = [1.0, 3.0, 3.0, -2.0, 5.0];
        let top = top_k_row(&row, 3);
        assert_eq!(
            top,
            vec![
                ScoredItem { item: 4, score: 5.0 },
                ScoredItem { item: 1, score: 3.0 },
                ScoredItem { item: 2, score: 3.0 },
            ]
        );
    }

    #[test]
    fn top_k_row_handles_k_edge_cases() {
        let row = [2.0, 1.0];
        assert!(top_k_row(&row, 0).is_empty());
        assert_eq!(top_k_row(&row, 5).len(), 2);
        assert_eq!(top_k_row(&row, 5)[0].item, 0);
    }

    #[test]
    fn total_order_handles_negative_zero() {
        let row = [0.0, -0.0];
        let top = top_k_row(&row, 2);
        // total_cmp: +0.0 > -0.0, so item 0 leads.
        assert_eq!(top[0].item, 0);
        assert_eq!(top[1].item, 1);
    }
}
