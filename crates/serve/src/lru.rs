//! A small, dependency-free bounded LRU cache.
//!
//! Recency is tracked with a monotone access stamp per entry; eviction scans
//! for the minimum stamp. That makes eviction `O(capacity)` — fine for the
//! hot-user caches this crate needs (hundreds to low thousands of entries),
//! and it keeps the structure a single `HashMap` with no unsafe code and no
//! intrusive list.

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded least-recently-used map. `capacity == 0` disables the cache:
/// every insert is a no-op and every lookup misses.
#[derive(Clone, Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    stamp: u64,
    map: HashMap<K, (u64, V)>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A new cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self { capacity, stamp: 0, map: HashMap::with_capacity(capacity.min(1024)) }
    }

    /// Maximum entry count (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.stamp += 1;
        let stamp = self.stamp;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.0 = stamp;
                Some(&entry.1)
            }
            None => None,
        }
    }

    /// Inserts `key → value` as most-recent, evicting the least-recently-used
    /// entry if the cache is full. Returns the evicted key, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<K> {
        if self.capacity == 0 {
            return None;
        }
        self.stamp += 1;
        let mut evicted = None;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, (stamp, _))| *stamp).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                evicted = Some(oldest);
            }
        }
        self.map.insert(key, (self.stamp, value));
        evicted
    }

    /// Drops every entry (capacity unchanged).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // refresh "a"; "b" is now LRU
        let evicted = c.insert("c", 3);
        assert_eq!(evicted, Some("b"));
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.insert("a", 10), None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(&10));
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let mut c = LruCache::new(0);
        assert_eq!(c.insert("a", 1), None);
        assert!(c.is_empty());
        assert_eq!(c.get(&"a"), None);
    }
}
