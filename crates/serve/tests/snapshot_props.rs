//! Property tests for the snapshot wire format, from the consumer side.
//!
//! Invariants:
//!
//! 1. round trip — an arbitrary snapshot survives `to_bytes → from_bytes`
//!    with every header field and every tensor bit intact;
//! 2. robustness — truncating the byte stream at *any* point, or flipping
//!    *any* byte, yields a typed [`SnapshotError`], never a panic and never
//!    a silently-wrong snapshot;
//! 3. serving — any structurally valid snapshot loads into a
//!    [`ServingModel`] whose batched scores match its scalar `predict`.

use msopds_autograd::Tensor;
use msopds_recsys::snapshot::{ModelKind, Snapshot, SnapshotError, SnapshotHeader};
use msopds_recsys::Backend;
use msopds_serve::ServingModel;
use proptest::prelude::*;

/// Splitmix64 — expands one strategy-drawn seed into tensor payloads, so a
/// whole snapshot needs only a 4-tuple strategy (the vendored proptest has
/// no `prop_flat_map` for size-dependent vectors).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// `n` floats in roughly [-3, 3], with an exact ±0.0 sprinkled in so the
/// round trip covers sign-of-zero preservation.
fn payload(state: &mut u64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|_| {
            let r = splitmix(state);
            if r.is_multiple_of(31) {
                if r & 32 == 0 {
                    0.0
                } else {
                    -0.0
                }
            } else {
                ((r >> 11) as f64 / (1u64 << 53) as f64) * 6.0 - 3.0
            }
        })
        .collect()
}

/// An arbitrary-but-valid snapshot: random dimensions and header scalars,
/// with MF-shaped tensors whose payloads are expanded from the drawn seed.
fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (1usize..12, 1usize..12, 1usize..6, 0u64..u64::MAX).prop_map(|(n_users, n_items, dim, seed)| {
        let mut state = seed;
        Snapshot {
            header: SnapshotHeader {
                kind: ModelKind::Mf,
                backend: if seed & 1 == 0 { Backend::Dense } else { Backend::Sparse },
                seed,
                social_fingerprint: seed.rotate_left(17),
                item_fingerprint: seed.rotate_right(11),
                n_users: n_users as u64,
                n_items: n_items as u64,
                mu: payload(&mut state, 1)[0],
            },
            config_json: format!("{{\"dim\":{dim}}}"),
            tensors: vec![
                (
                    String::from("p"),
                    Tensor::from_vec(payload(&mut state, n_users * dim), &[n_users, dim]),
                ),
                (
                    String::from("q"),
                    Tensor::from_vec(payload(&mut state, n_items * dim), &[n_items, dim]),
                ),
                (
                    String::from("b_u"),
                    Tensor::from_vec(payload(&mut state, n_users), &[n_users, 1]),
                ),
                (
                    String::from("b_i"),
                    Tensor::from_vec(payload(&mut state, n_items), &[n_items, 1]),
                ),
            ],
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_is_bitwise_lossless(snap in arb_snapshot()) {
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("self-produced bytes parse");
        prop_assert_eq!(back.header, snap.header.clone());
        prop_assert_eq!(back.config_json, snap.config_json.clone());
        prop_assert_eq!(back.tensors.len(), snap.tensors.len());
        for ((an, at), (bn, bt)) in snap.tensors.iter().zip(&back.tensors) {
            prop_assert_eq!(an, bn);
            prop_assert!(at.bit_eq(bt), "tensor {} drifted through the wire format", an);
        }
    }

    #[test]
    fn truncation_anywhere_is_a_typed_error(snap in arb_snapshot(), frac in 0.0..1.0f64) {
        let bytes = snap.to_bytes();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        let err = Snapshot::from_bytes(&bytes[..cut])
            .expect_err("truncated bytes must not parse");
        prop_assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. }
                    | SnapshotError::BadMagic { .. }
                    | SnapshotError::ChecksumMismatch { .. }
            ),
            "unexpected error for cut at {}: {:?}", cut, err
        );
    }

    #[test]
    fn any_flipped_byte_is_detected(snap in arb_snapshot(), pos in 0usize..usize::MAX, bit in 0u8..8) {
        let mut bytes = snap.to_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        // Every single-bit corruption must surface as an error: the checksum
        // trailer is verified before any length field is trusted, so this
        // cannot panic or allocate absurdly either.
        prop_assert!(
            Snapshot::from_bytes(&bytes).is_err(),
            "flipped bit {} of byte {} went undetected", bit, pos
        );
    }

    #[test]
    fn valid_snapshots_serve_consistently(snap in arb_snapshot()) {
        let served = ServingModel::from_snapshot(&snap).expect("valid snapshot serves");
        let users: Vec<usize> = (0..served.n_users()).collect();
        let scores = served.score_batch(&users);
        for u in 0..served.n_users() {
            for i in 0..served.n_items() {
                prop_assert_eq!(
                    scores.at(u, i).to_bits(),
                    served.predict(u, i).to_bits(),
                    "({}, {}) batched score != scalar predict", u, i
                );
            }
        }
        // Top-K lists are invariant to batching for arbitrary models too.
        let k = served.n_items().min(5);
        let batched = served.top_k_batch(&users, k);
        for (u, expect) in users.iter().zip(&batched) {
            prop_assert_eq!(&served.top_k(*u, k), expect);
        }
    }
}

#[test]
fn wrong_version_and_missing_tensor_are_typed() {
    let snap = Snapshot {
        header: SnapshotHeader {
            kind: ModelKind::Mf,
            backend: Backend::Dense,
            seed: 1,
            social_fingerprint: 2,
            item_fingerprint: 3,
            n_users: 2,
            n_items: 2,
            mu: 0.5,
        },
        config_json: String::from("{}"),
        tensors: vec![
            (String::from("p"), Tensor::from_vec(vec![0.0; 4], &[2, 2])),
            (String::from("q"), Tensor::from_vec(vec![0.0; 4], &[2, 2])),
            (String::from("b_u"), Tensor::from_vec(vec![0.0; 2], &[2, 1])),
        ],
    };
    // Missing b_i → MissingTensor from the serving loader.
    match ServingModel::from_snapshot(&snap) {
        Err(SnapshotError::MissingTensor { name }) => assert_eq!(name, "b_i"),
        other => panic!("expected MissingTensor, got {other:?}"),
    }
}
