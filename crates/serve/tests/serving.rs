//! End-to-end serving fidelity and determinism on a real trained model.
//!
//! The fixture trains one micro HetRec (attention on, so the victim is
//! bitwise backend-independent) exactly once per process and snapshots it;
//! every test then loads a [`ServingModel`] from those bytes and checks the
//! two contracts from the crate docs:
//!
//! * **fidelity** — served scores are bit-identical to `HetRec::predict`;
//! * **determinism** — top-K lists (ties included) are invariant to the
//!   worker-pool lane count and to how queries are batched.

use std::sync::{Mutex, OnceLock};

use msopds_autograd::pool::{self, DEFAULT_COPY_MIN, DEFAULT_ELEMWISE_MIN, DEFAULT_MATMUL_MIN};
use msopds_recdata::{Dataset, DatasetSpec};
use msopds_recsys::{Backend, HetRec, HetRecConfig};
use msopds_serve::{ServeConfig, ServeEngine, ServingModel, Snapshot};

/// Serializes tests that reconfigure the process-global pool.
static POOL_LOCK: Mutex<()> = Mutex::new(());

fn dataset() -> &'static Dataset {
    static DATA: OnceLock<Dataset> = OnceLock::new();
    DATA.get_or_init(|| DatasetSpec::micro().generate(11))
}

/// Trained model + its snapshot bytes, built once per process.
fn fixture() -> &'static (HetRec, Vec<u8>) {
    static FIX: OnceLock<(HetRec, Vec<u8>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let data = dataset();
        let cfg = HetRecConfig { epochs: 25, dim: 8, attention: true, ..Default::default() };
        let mut model = HetRec::new(cfg, data.n_users(), data.n_items());
        model.fit(data);
        let bytes = model.snapshot(data).to_bytes();
        (model, bytes)
    })
}

fn serving_model() -> ServingModel {
    let (_, bytes) = fixture();
    ServingModel::from_snapshot(&Snapshot::from_bytes(bytes).expect("fixture bytes parse"))
        .expect("fixture snapshot serves")
}

#[test]
fn served_scores_are_bit_identical_to_in_process_predict() {
    let (model, _) = fixture();
    let served = serving_model();
    let users: Vec<usize> = (0..served.n_users()).collect();
    let scores = served.score_batch(&users);
    for u in 0..served.n_users() {
        for i in 0..served.n_items() {
            assert_eq!(
                scores.at(u, i).to_bits(),
                model.predict(u, i).to_bits(),
                "score ({u},{i}) drifted between serving and in-process predict"
            );
        }
    }
}

#[test]
fn scalar_predict_matches_batched_scoring() {
    let served = serving_model();
    let users: Vec<usize> = (0..served.n_users()).collect();
    let scores = served.score_batch(&users);
    for u in 0..served.n_users() {
        for i in 0..served.n_items() {
            assert_eq!(scores.at(u, i).to_bits(), served.predict(u, i).to_bits());
        }
    }
}

#[test]
fn top_k_is_invariant_to_lane_count() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let served = serving_model();
    let users: Vec<usize> = (0..served.n_users()).collect();

    // Thresholds at 1 force every kernel through the parallel path even at
    // this micro scale; lanes 1 vs 8 must then agree bit-for-bit.
    pool::set_parallel_thresholds(1, 1, 1);
    pool::configure_threads(1);
    let single = served.top_k_batch(&users, 10);
    pool::configure_threads(8);
    let eight = served.top_k_batch(&users, 10);
    pool::set_parallel_thresholds(DEFAULT_ELEMWISE_MIN, DEFAULT_COPY_MIN, DEFAULT_MATMUL_MIN);

    for (u, (a, b)) in single.iter().zip(&eight).enumerate() {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.item, y.item, "user {u}: item order diverged across lane counts");
            assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "user {u}, item {}: score bits diverged across lane counts",
                x.item
            );
        }
    }
}

#[test]
fn top_k_is_invariant_to_batching() {
    let served = serving_model();
    let users: Vec<usize> = (0..served.n_users()).collect();
    let one_big = served.top_k_batch(&users, 10);
    for (u, expect) in users.iter().zip(&one_big) {
        let alone = served.top_k(*u, 10);
        assert_eq!(&alone, expect, "user {u}: batch-of-1 answer differs from full batch");
        let pair = served.top_k_batch(&[*u, (*u + 1) % served.n_users()], 10);
        assert_eq!(&pair[0], expect, "user {u}: batch-of-2 answer differs from full batch");
    }
}

#[test]
fn backend_tag_round_trips_and_attention_victims_serve_identically() {
    // With attention on, the convolution never touches the mean-aggregation
    // backend, so Dense- and Sparse-trained victims are the same model bit
    // for bit — and so are their served top-K lists.
    let data = dataset();
    let mut lists = Vec::new();
    for backend in [Backend::Dense, Backend::Sparse] {
        let cfg =
            HetRecConfig { epochs: 25, dim: 8, attention: true, backend, ..Default::default() };
        let mut model = HetRec::new(cfg, data.n_users(), data.n_items());
        model.fit(data);
        let snap = model.snapshot(data);
        assert_eq!(snap.header.backend, backend, "backend tag lost in snapshot");
        let served = ServingModel::from_snapshot(&snap).unwrap();
        assert_eq!(served.backend(), backend);
        let users: Vec<usize> = (0..served.n_users()).collect();
        lists.push(served.top_k_batch(&users, 10));
    }
    assert_eq!(lists[0].len(), lists[1].len());
    for (u, (a, b)) in lists[0].iter().zip(&lists[1]).enumerate() {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.item, y.item, "user {u}: dense/sparse top-K diverged");
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }
}

#[test]
fn engine_caching_never_changes_answers() {
    let served = serving_model();
    let n = served.n_users();
    let users: Vec<usize> = (0..n).collect();
    let mut cached = ServeEngine::new(
        served.clone(),
        ServeConfig { top_k: 10, cache_capacity: 64, ..ServeConfig::default() },
    );
    let mut uncached = ServeEngine::new(
        served,
        ServeConfig { top_k: 10, cache_capacity: 0, ..ServeConfig::default() },
    );
    for round in 0..2 {
        let a = cached.serve_batch(&users);
        let b = uncached.serve_batch(&users);
        for (slot, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(**x, **y, "round {round}, slot {slot}: cached answer differs from uncached");
        }
    }
    // Round two was served entirely from the hot-user cache...
    assert_eq!(cached.stats().cache_hits, n as u64);
    assert_eq!(cached.stats().cache_misses, n as u64);
    // ...while the disabled cache re-scored everything.
    assert_eq!(uncached.stats().cache_misses, 2 * n as u64);
    let summary = cached.summary();
    assert_eq!(summary.queries, 2 * n as u64);
}
