//! Property tests for top-K selection, shared across both scoring paths.
//!
//! Invariants, for arbitrary valid models and any `k` (including `k = 0`
//! and `k ≥ n_items`):
//!
//! 1. **reference order** — `top_k_batch_with` equals a brute-force full
//!    sort of that path's own scores under the serving total order (score
//!    descending, item id ascending), truncated to `k`;
//! 2. **tie discipline** — with payloads quantized so duplicate scores are
//!    common, ties always resolve by ascending item id on both paths;
//! 3. **NaN-free** — served scores never contain NaNs for finite models,
//!    on either path.
//!
//! Both [`ScorePrecision`] variants run through the same assertions: the
//! fast path is compared against *its own* f32 scores (the fidelity gap to
//! f64 is covered by the tolerance-trace tests, not here — this file pins
//! the selection logic itself).

use msopds_autograd::Tensor;
use msopds_recsys::snapshot::{ModelKind, Snapshot, SnapshotHeader};
use msopds_recsys::Backend;
use msopds_serve::{ScorePrecision, ScoredItem, ServingModel};
use proptest::prelude::*;

/// Splitmix64 — expands one strategy-drawn seed into tensor payloads (the
/// vendored proptest has no `prop_flat_map` for size-dependent vectors).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// `n` floats drawn from a *coarse* grid (multiples of 0.25 in [-2, 2]) so
/// that dot products collide often and the tiebreak path is exercised on
/// nearly every case; all values are exactly representable in f32, so the
/// grid survives the fast path's downcast intact.
fn quantized(state: &mut u64, n: usize) -> Vec<f64> {
    (0..n).map(|_| (splitmix(state) % 17) as f64 * 0.25 - 2.0).collect()
}

/// An arbitrary-but-valid MF snapshot with tie-prone payloads.
fn arb_model() -> impl Strategy<Value = ServingModel> {
    (1usize..14, 1usize..20, 1usize..5, 0u64..u64::MAX).prop_map(|(n_users, n_items, dim, seed)| {
        let mut state = seed;
        let snap = Snapshot {
            header: SnapshotHeader {
                kind: ModelKind::Mf,
                backend: Backend::Dense,
                seed,
                social_fingerprint: 0,
                item_fingerprint: 0,
                n_users: n_users as u64,
                n_items: n_items as u64,
                mu: quantized(&mut state, 1)[0],
            },
            config_json: String::from("{}"),
            tensors: vec![
                (
                    String::from("p"),
                    Tensor::from_vec(quantized(&mut state, n_users * dim), &[n_users, dim]),
                ),
                (
                    String::from("q"),
                    Tensor::from_vec(quantized(&mut state, n_items * dim), &[n_items, dim]),
                ),
                (
                    String::from("b_u"),
                    Tensor::from_vec(quantized(&mut state, n_users), &[n_users, 1]),
                ),
                (
                    String::from("b_i"),
                    Tensor::from_vec(quantized(&mut state, n_items), &[n_items, 1]),
                ),
            ],
        };
        ServingModel::from_snapshot(&snap).expect("valid snapshot")
    })
}

/// The serving total order: score descending, then item id ascending.
fn rank(a: &ScoredItem, b: &ScoredItem) -> std::cmp::Ordering {
    b.score.total_cmp(&a.score).then(a.item.cmp(&b.item))
}

/// Brute-force reference: full sort of one user's scores, truncated to `k`.
fn reference_top_k(scores: &[f64], k: usize) -> Vec<ScoredItem> {
    let mut all: Vec<ScoredItem> =
        scores.iter().enumerate().map(|(i, &s)| ScoredItem { item: i as u32, score: s }).collect();
    all.sort_by(rank);
    all.truncate(k);
    all
}

/// Row-major `[batch, n_items]` scores as the given path computes them.
fn path_scores(model: &ServingModel, users: &[usize], precision: ScorePrecision) -> Vec<f64> {
    match precision {
        ScorePrecision::Exact64 => model.score_batch(users).data().to_vec(),
        ScorePrecision::Fast32 => {
            model.score_batch_f32(users).into_iter().map(|s| s as f64).collect()
        }
    }
}

fn check_path(
    model: &ServingModel,
    k: usize,
    precision: ScorePrecision,
) -> Result<(), TestCaseError> {
    let users: Vec<usize> = (0..model.n_users()).collect();
    let m = model.n_items();
    let scores = path_scores(model, &users, precision);
    let lists = model.top_k_batch_with(&users, k, precision);
    prop_assert_eq!(lists.len(), users.len());
    for (r, list) in lists.iter().enumerate() {
        let row = &scores[r * m..(r + 1) * m];
        prop_assert!(row.iter().all(|s| !s.is_nan()), "NaN score on {} path", precision);
        let expect = reference_top_k(row, k);
        prop_assert_eq!(
            list,
            &expect,
            "user {} k {} on {} path deviates from full-sort reference",
            r,
            k,
            precision
        );
        // Redundant with the reference, but pins the tie rule explicitly.
        for w in list.windows(2) {
            prop_assert!(rank(&w[0], &w[1]).is_lt());
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn both_paths_match_full_sort_reference(model in arb_model(), k_raw in 0usize..32) {
        // k sweeps through 0, interior values, exactly n_items, and beyond.
        for precision in [ScorePrecision::Exact64, ScorePrecision::Fast32] {
            check_path(&model, k_raw, precision)?;
            check_path(&model, 0, precision)?;
            check_path(&model, model.n_items(), precision)?;
            check_path(&model, model.n_items() + 3, precision)?;
        }
    }
}
