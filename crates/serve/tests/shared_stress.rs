//! Stress regression for [`SharedServeEngine`]: the engine's accounting
//! invariant and answer fidelity must survive genuinely concurrent callers.
//!
//! `ServeEngine` alone takes `&mut self` precisely because its hot-user LRU
//! and stats are not atomic; this suite pins the contract of the shared
//! wrapper that the async serving tier builds on:
//!
//! * `cache_hits + cache_misses == queries` stays **exact** across threads
//!   (no lost updates, no double counts);
//! * every answer is bit-identical to the model's direct `top_k`, hit or
//!   miss, eviction churn or not;
//! * concurrent hot-swaps never produce an answer that is neither the old
//!   nor the new model's (batch-atomicity of the swap).
//!
//! There is no `loom` in the dependency closure, so this is a preemption
//! stress test: small batches, a deliberately tiny LRU (eviction on nearly
//! every batch), and enough iterations that a torn critical section has real
//! odds of corrupting a counter — the exact-equality assertions then fail.

use std::sync::Arc;

use msopds_autograd::Tensor;
use msopds_recsys::snapshot::{ModelKind, Snapshot, SnapshotHeader};
use msopds_recsys::Backend;
use msopds_serve::{ScorePrecision, ServeConfig, ServeEngine, ServingModel, SharedServeEngine};

/// A deterministic LCG-filled model; `scale` lets tests mint "retrained"
/// variants with identical shapes and fingerprints but different answers.
fn lcg_model(n_users: usize, n_items: usize, d: usize, scale: f64) -> ServingModel {
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        scale * (((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5)
    };
    let fill =
        |n: usize, next: &mut dyn FnMut() -> f64| -> Vec<f64> { (0..n).map(|_| next()).collect() };
    let snap = Snapshot {
        header: SnapshotHeader {
            kind: ModelKind::Mf,
            backend: Backend::Dense,
            seed: 3,
            social_fingerprint: 0xFEED,
            item_fingerprint: 0xF00D,
            n_users: n_users as u64,
            n_items: n_items as u64,
            mu: 3.1,
        },
        config_json: String::from("{}"),
        tensors: vec![
            (String::from("p"), Tensor::from_vec(fill(n_users * d, &mut next), &[n_users, d])),
            (String::from("q"), Tensor::from_vec(fill(n_items * d, &mut next), &[n_items, d])),
            (String::from("b_u"), Tensor::from_vec(fill(n_users, &mut next), &[n_users, 1])),
            (String::from("b_i"), Tensor::from_vec(fill(n_items, &mut next), &[n_items, 1])),
        ],
    };
    ServingModel::from_snapshot(&snap).expect("valid snapshot")
}

/// splitmix64 — per-thread deterministic query streams.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[test]
fn concurrent_batches_keep_accounting_exact_and_answers_bitwise() {
    const THREADS: usize = 4;
    const BATCHES_PER_THREAD: usize = 200;
    let model = lcg_model(40, 37, 8, 1.0);
    let reference: Vec<_> = (0..model.n_users()).map(|u| model.top_k(u, 5)).collect();
    // cache_capacity 8 over 40 users: almost every batch evicts.
    let shared = SharedServeEngine::new(ServeEngine::new(
        model,
        ServeConfig { top_k: 5, cache_capacity: 8, precision: ScorePrecision::Exact64 },
    ));

    let mut expected_queries = 0u64;
    let mut plans: Vec<Vec<Vec<usize>>> = Vec::new();
    for t in 0..THREADS {
        let mut rng = 0x1000 + t as u64;
        let mut thread_plan = Vec::with_capacity(BATCHES_PER_THREAD);
        for _ in 0..BATCHES_PER_THREAD {
            let len = 1 + (splitmix(&mut rng) % 12) as usize;
            let batch: Vec<usize> = (0..len).map(|_| (splitmix(&mut rng) % 40) as usize).collect();
            expected_queries += len as u64;
            thread_plan.push(batch);
        }
        plans.push(thread_plan);
    }

    std::thread::scope(|scope| {
        for plan in &plans {
            let shared = shared.clone();
            let reference = &reference;
            scope.spawn(move || {
                for batch in plan {
                    let answers = shared.serve_batch(batch);
                    for (&u, answer) in batch.iter().zip(&answers) {
                        assert_eq!(**answer, reference[u], "torn answer for user {u}");
                    }
                }
            });
        }
    });

    let stats = shared.stats();
    assert_eq!(stats.queries, expected_queries);
    assert_eq!(stats.cache_hits + stats.cache_misses, stats.queries);
    assert_eq!(stats.batches, (THREADS * BATCHES_PER_THREAD) as u64);
    let summary = shared.summary();
    assert_eq!(summary.queries, expected_queries);
    assert!(summary.p50_us <= summary.p99_us);
}

#[test]
fn concurrent_swaps_never_serve_a_torn_model() {
    const SWAPS: usize = 40;
    let old = lcg_model(24, 29, 6, 1.0);
    let new = lcg_model(24, 29, 6, -2.5);
    let ref_old: Vec<_> = (0..old.n_users()).map(|u| old.top_k(u, 4)).collect();
    let ref_new: Vec<_> = (0..new.n_users()).map(|u| new.top_k(u, 4)).collect();
    let old = Arc::new(old);
    let new = Arc::new(new);
    let shared = SharedServeEngine::new(ServeEngine::new_shared(
        Arc::clone(&old),
        ServeConfig { top_k: 4, cache_capacity: 16, ..ServeConfig::default() },
    ));

    std::thread::scope(|scope| {
        // One swapper flapping between the two retrained models...
        {
            let shared = shared.clone();
            let (old, new) = (Arc::clone(&old), Arc::clone(&new));
            scope.spawn(move || {
                for i in 0..SWAPS {
                    let next = if i % 2 == 0 { Arc::clone(&new) } else { Arc::clone(&old) };
                    shared.try_swap(next).expect("matching fingerprints");
                    std::thread::yield_now();
                }
            });
        }
        // ...while two serving threads require every answer to be exactly
        // one model's output — old or new, never a mixture.
        for t in 0..2usize {
            let shared = shared.clone();
            let (ref_old, ref_new) = (&ref_old, &ref_new);
            scope.spawn(move || {
                let mut rng = 0x77 + t as u64;
                for _ in 0..300 {
                    let u = (splitmix(&mut rng) % 24) as usize;
                    let answer = shared.serve_batch(&[u]);
                    let got = &*answer[0];
                    assert!(
                        *got == ref_old[u] || *got == ref_new[u],
                        "user {u}: answer matches neither model"
                    );
                }
            });
        }
    });

    let stats = shared.stats();
    assert_eq!(stats.cache_hits + stats.cache_misses, stats.queries);
    assert_eq!(stats.queries, 600);
}
