//! Zero-copy parity: a `ServingModel` opened over an mmapped v2 snapshot
//! must serve **bit-identical** answers to one built from the same snapshot
//! on the heap — across model kinds, training backends and both scoring
//! precisions — and the mapped open path must reject structural corruption
//! with typed errors.

use msopds_recsys::snapshot::{
    MappedSnapshot, ModelKind, Snapshot, SnapshotError, SnapshotHeader, SnapshotSource,
};
use msopds_recsys::Backend;
use msopds_serve::{ScorePrecision, ServingModel};
use proptest::prelude::*;

use msopds_autograd::Tensor;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn filled(state: &mut u64, n: usize) -> Vec<f64> {
    (0..n).map(|_| (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64 - 0.5).collect()
}

fn model_snapshot(kind: ModelKind, backend: Backend, n: usize, m: usize, d: usize) -> Snapshot {
    let mut s = 0x5eed ^ (n as u64) << 20 ^ (m as u64) << 8 ^ d as u64;
    let (user_name, item_name) = match kind {
        ModelKind::HetRec => ("finals.user", "finals.item"),
        ModelKind::Mf => ("p", "q"),
    };
    Snapshot {
        header: SnapshotHeader {
            kind,
            backend,
            seed: 7,
            social_fingerprint: 0x50c1a1,
            item_fingerprint: 0x17e35,
            n_users: n as u64,
            n_items: m as u64,
            mu: 3.4,
        },
        config_json: "{}".to_string(),
        tensors: vec![
            (user_name.to_string(), Tensor::from_vec(filled(&mut s, n * d), &[n, d])),
            (item_name.to_string(), Tensor::from_vec(filled(&mut s, m * d), &[m, d])),
            ("b_u".to_string(), Tensor::from_vec(filled(&mut s, n), &[n, 1])),
            ("b_i".to_string(), Tensor::from_vec(filled(&mut s, m), &[m, 1])),
        ],
    }
}

fn temp_path(tag: &str, case: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("msopds-parity-{tag}-{case}-{}.snap", std::process::id()))
}

#[test]
fn mmap_and_heap_models_serve_bit_identical_top_k() {
    let mut case = 0u64;
    for kind in [ModelKind::Mf, ModelKind::HetRec] {
        for backend in [Backend::Dense, Backend::Sparse, Backend::Sharded(3)] {
            case += 1;
            let snap = model_snapshot(kind, backend, 17, 29, 6);
            let path = temp_path("topk", case);
            snap.save(&path).unwrap();

            let heap = ServingModel::open(&SnapshotSource::file(&path)).unwrap();
            let mapped = ServingModel::open(&SnapshotSource::mmap(&path)).unwrap();
            assert!(!heap.is_zero_copy());
            #[cfg(unix)]
            assert!(mapped.is_zero_copy());
            assert!(mapped.heap_param_bytes() < heap.heap_param_bytes());
            assert_eq!(mapped.backend(), backend);

            let users: Vec<usize> = (0..17).collect();
            // Exact64: bit-identical scores and lists.
            let hs = heap.score_batch(&users);
            let ms = mapped.score_batch(&users);
            for (a, b) in hs.data().iter().zip(ms.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "score drifted between storages");
            }
            assert_eq!(
                heap.top_k_batch_with(&users, 7, ScorePrecision::Exact64),
                mapped.top_k_batch_with(&users, 7, ScorePrecision::Exact64),
            );
            // Fast32: the f32 tables are built from the same payload bytes,
            // so the fast path is bit-identical across storages too.
            let hf = heap.score_batch_f32(&users);
            let mf = mapped.score_batch_f32(&users);
            for (a, b) in hf.iter().zip(&mf) {
                assert_eq!(a.to_bits(), b.to_bits(), "f32 score drifted between storages");
            }
            assert_eq!(
                heap.top_k_batch_with(&users, 7, ScorePrecision::Fast32),
                mapped.top_k_batch_with(&users, 7, ScorePrecision::Fast32),
            );
            // Single-pair predicts agree bitwise as well.
            for u in [0usize, 5, 16] {
                for i in [0usize, 11, 28] {
                    assert_eq!(heap.predict(u, i).to_bits(), mapped.predict(u, i).to_bits());
                }
            }
            std::fs::remove_file(&path).ok();
        }
    }
}

#[test]
fn v1_files_load_through_the_mmap_source() {
    let snap = model_snapshot(ModelKind::Mf, Backend::Sparse, 9, 13, 4);
    let path = temp_path("v1", 0);
    std::fs::write(&path, snap.to_bytes_v1()).unwrap();
    let heap = ServingModel::open(&SnapshotSource::file(&path)).unwrap();
    let compat = ServingModel::open(&SnapshotSource::mmap(&path)).unwrap();
    assert!(!compat.is_zero_copy(), "v1 must fall back to the heap path");
    let users: Vec<usize> = (0..9).collect();
    assert_eq!(heap.top_k_batch(&users, 5), compat.top_k_batch(&users, 5));
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Truncating a v2 file anywhere leaves the mapped open path with a
    /// typed error — never a panic, never a silently short model.
    #[test]
    fn mapped_open_rejects_any_truncation(cut_frac in 0.0f64..1.0, case in 0u64..1_000_000) {
        let snap = model_snapshot(ModelKind::Mf, Backend::Dense, 5, 7, 3);
        let bytes = snap.to_bytes();
        let cut = ((bytes.len() as f64 * cut_frac) as usize).min(bytes.len() - 1);
        let path = temp_path("trunc", case);
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = MappedSnapshot::open(&path).map(|_| ()).unwrap_err();
        std::fs::remove_file(&path).ok();
        prop_assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. }
                    | SnapshotError::BadMagic { .. }
                    | SnapshotError::ChecksumMismatch { .. }
            ),
            "cut at {} gave {}", cut, err
        );
    }

    /// Any flipped byte is caught: header flips at open time, payload flips
    /// by the opt-in `verify_payloads` pass.
    #[test]
    fn mapped_open_plus_verify_detects_any_flip(pos_frac in 0.0f64..1.0, case in 0u64..1_000_000) {
        let snap = model_snapshot(ModelKind::Mf, Backend::Dense, 5, 7, 3);
        let mut bytes = snap.to_bytes();
        let pos = ((bytes.len() as f64 * pos_frac) as usize).min(bytes.len() - 1);
        bytes[pos] ^= 0x10;
        let path = temp_path("flip", case);
        std::fs::write(&path, &bytes).unwrap();
        let caught = match MappedSnapshot::open(&path) {
            Err(_) => true,
            Ok(m) => m.verify_payloads().is_err(),
        };
        std::fs::remove_file(&path).ok();
        prop_assert!(caught, "flip at {} went undetected", pos);
    }

    /// Nudging a directory offset off its 64-byte-aligned slot (re-signing
    /// the header so only the layout rule can object) is typed `Corrupt`.
    #[test]
    fn misaligned_sections_are_rejected(entry in 0usize..4, nudge in 1usize..8, case in 0u64..1_000_000) {
        let snap = model_snapshot(ModelKind::Mf, Backend::Dense, 5, 7, 3);
        let mut bytes = snap.to_bytes();
        // Walk the directory to the chosen entry's offset field.
        let config_len =
            u32::from_le_bytes(bytes[64..68].try_into().unwrap()) as usize;
        let mut pos = 64 + 4 + config_len + 4;
        for _ in 0..entry {
            let name_len = u16::from_le_bytes(bytes[pos..pos + 2].try_into().unwrap()) as usize;
            pos += 2 + name_len + 1 + 8 + 8 + 8 + 8;
        }
        let name_len = u16::from_le_bytes(bytes[pos..pos + 2].try_into().unwrap()) as usize;
        let field = pos + 2 + name_len + 1 + 8 + 8;
        let stored = u64::from_le_bytes(bytes[field..field + 8].try_into().unwrap());
        bytes[field..field + 8].copy_from_slice(&(stored + nudge as u64 * 8).to_le_bytes());
        // Find the header end (count entries fully) and re-sign it.
        let count = u32::from_le_bytes(
            bytes[64 + 4 + config_len..64 + 4 + config_len + 4].try_into().unwrap(),
        ) as usize;
        let mut end = 64 + 4 + config_len + 4;
        for _ in 0..count {
            let nl = u16::from_le_bytes(bytes[end..end + 2].try_into().unwrap()) as usize;
            end += 2 + nl + 1 + 8 + 8 + 8 + 8;
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in &bytes[..end] {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        bytes[end..end + 8].copy_from_slice(&h.to_le_bytes());
        let path = temp_path("misalign", case);
        std::fs::write(&path, &bytes).unwrap();
        let err = MappedSnapshot::open(&path).map(|_| ()).unwrap_err();
        std::fs::remove_file(&path).ok();
        prop_assert!(matches!(err, SnapshotError::Corrupt { .. }), "got {}", err);
    }
}
