//! Property tests for the planning layer: binarization invariants and the
//! MSO optimizer on randomized analytic games.

use msopds_autograd::{Tape, Tensor};
use msopds_core::{
    mso_optimize, BudgetGroup, BuiltGame, ImportanceVector, MsoConfig, StackelbergGame,
};
use msopds_recdata::PoisonAction;
use proptest::prelude::*;

fn iv(values: Vec<f64>, take: usize) -> ImportanceVector {
    let n = values.len();
    let candidates =
        (0..n as u32).map(|u| PoisonAction::Rating { user: u, item: 0, value: 5.0 }).collect();
    let mut iv = ImportanceVector::new(
        candidates,
        vec![BudgetGroup::new("g", (0..n).collect(), take.min(n))],
    );
    iv.values = values;
    iv
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binarization_respects_budget(values in proptest::collection::vec(-5.0..5.0f64, 1..30), take in 0usize..30) {
        let v = iv(values, take);
        let xhat = v.binarize();
        let ones = xhat.data().iter().filter(|&&x| x == 1.0).count();
        prop_assert_eq!(ones, v.total_budget());
        prop_assert!(xhat.data().iter().all(|&x| x == 0.0 || x == 1.0));
    }

    #[test]
    fn binarization_selects_maximal_values(values in proptest::collection::vec(-5.0..5.0f64, 2..20)) {
        let take = values.len() / 2;
        let v = iv(values.clone(), take);
        let xhat = v.binarize();
        // Every selected value must be >= every unselected value.
        let selected_min = values
            .iter()
            .zip(xhat.data())
            .filter(|(_, &x)| x == 1.0)
            .map(|(v, _)| *v)
            .fold(f64::INFINITY, f64::min);
        let unselected_max = values
            .iter()
            .zip(xhat.data())
            .filter(|(_, &x)| x == 0.0)
            .map(|(v, _)| *v)
            .fold(f64::NEG_INFINITY, f64::max);
        if take > 0 && take < values.len() {
            prop_assert!(selected_min >= unselected_max);
        }
    }

    /// Binarization is idempotent: re-binarizing an already-binary importance
    /// vector reproduces it exactly (the `take` ones are the maximal entries
    /// of the binary vector, with ties broken identically).
    #[test]
    fn binarization_is_idempotent(
        values in proptest::collection::vec(-5.0..5.0f64, 1..30),
        take in 0usize..30,
    ) {
        let v = iv(values, take);
        let once = v.binarize();
        let twice = v.binarize_values(once.data());
        prop_assert_eq!(once.data(), twice.data());
    }

    /// With multiple budget groups, each group independently selects exactly
    /// its `take`, and the extracted plan never exceeds the total budget.
    #[test]
    fn multi_group_budgets_are_independent(
        values in proptest::collection::vec(-5.0..5.0f64, 6..24),
        take_a in 0usize..6,
        take_b in 0usize..6,
    ) {
        let n = values.len();
        let split = n / 2;
        let candidates = (0..n as u32)
            .map(|u| PoisonAction::Rating { user: u, item: 0, value: 5.0 })
            .collect();
        let mut v = ImportanceVector::new(
            candidates,
            vec![
                BudgetGroup::new("a", (0..split).collect(), take_a.min(split)),
                BudgetGroup::new("b", (split..n).collect(), take_b.min(n - split)),
            ],
        );
        v.values = values;
        let xhat = v.binarize();
        let ones_a = xhat.data()[..split].iter().filter(|&&x| x == 1.0).count();
        let ones_b = xhat.data()[split..].iter().filter(|&&x| x == 1.0).count();
        prop_assert_eq!(ones_a, take_a.min(split), "group a over/under budget");
        prop_assert_eq!(ones_b, take_b.min(n - split), "group b over/under budget");
        prop_assert!(v.extract_plan().len() <= v.total_budget());
    }

    #[test]
    fn plan_extraction_is_stable_under_positive_scaling(
        values in proptest::collection::vec(-3.0..3.0f64, 2..15),
        scale in 0.1..10.0f64,
    ) {
        let take = (values.len() / 2).max(1);
        let a = iv(values.clone(), take);
        let b = iv(values.iter().map(|v| v * scale).collect(), take);
        prop_assert_eq!(a.extract_plan(), b.extract_plan());
    }

    #[test]
    fn mso_converges_on_random_quadratic_games(
        a in -3.0..3.0f64,
        c in 0.05..0.6f64,
        d in 0.1..1.0f64,
    ) {
        struct Quad { a: f64, c: f64, d: f64 }
        impl StackelbergGame for Quad {
            fn build<'t>(&self, tape: &'t Tape, xp: &Tensor, xqs: &[Tensor]) -> BuiltGame<'t> {
                let xpv = tape.leaf(xp.clone());
                let xqv = tape.leaf(xqs[0].clone());
                let lp = xpv.add_scalar(-self.a).square().add(xpv.mul(xqv).scale(self.c)).sum();
                let lq = xqv.sub(xpv.scale(self.d)).square().sum();
                BuiltGame { xp: xpv, xqs: vec![xqv], lp, lqs: vec![lq] }
            }
        }
        let game = Quad { a, c, d };
        let cfg = MsoConfig { eta_p: 0.05, eta_q: 0.4, iters: 400, ..Default::default() };
        let run = mso_optimize(&game, Tensor::scalar(0.0), vec![Tensor::scalar(0.0)], &cfg);
        let xp_star = a / (1.0 + c * d);
        prop_assert!(
            (run.xp.item() - xp_star).abs() < 1e-2,
            "expected {xp_star}, got {} for (a={a}, c={c}, d={d})",
            run.xp.item()
        );
        prop_assert!((run.xqs[0].item() - d * xp_star).abs() < 1e-2);
    }
}
