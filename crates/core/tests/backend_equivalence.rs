//! End-to-end backend equivalence: a full MSO planning iteration (surrogate
//! build, CG Stackelberg solve, leader/follower updates) run through the
//! dense and sparse `GraphOps` backends must produce importance vectors that
//! agree to ≤1e-10.
//!
//! Also doubles as a smoke test of `msopds_core::prelude` — everything below
//! comes from the single glob import.

use msopds_core::prelude::*;
use rand::SeedableRng;

const TOL: f64 = 1e-10;

fn planner_cfg(backend: Backend, iters: usize) -> PlannerConfig {
    PlannerConfig {
        mso: MsoConfig { iters, cg_iters: 3, hvp_mode: HvpMode::Exact, ..Default::default() },
        pds: PdsConfig { inner_steps: 3, backend, ..Default::default() },
    }
}

fn setup() -> (Dataset, PlayerSetup, Vec<PlayerSetup>) {
    let mut data = DatasetSpec::micro().generate(2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let market = sample_market(&data, &DemographicsSpec::default().scaled(8.0), 1, &mut rng);

    let atk_cap = build_ca_capacity(
        &mut data,
        &market.players[0],
        market.target_item,
        &CaCapacitySpec::promote(3),
    );
    let attacker = PlayerSetup {
        capacity: atk_cap,
        objective: Objective::Comprehensive {
            audience: market.target_audience.clone(),
            target: market.target_item,
            competing: market.competing_items.clone(),
        },
    };
    let opp_cap = build_ca_capacity(
        &mut data,
        &market.players[1],
        market.target_item,
        &CaCapacitySpec::demote(2),
    );
    let opponents = vec![PlayerSetup {
        capacity: opp_cap,
        objective: Objective::Demote {
            audience: market.target_audience.clone(),
            target: market.target_item,
        },
    }];
    let caps: Vec<&BuiltCapacity> =
        std::iter::once(&attacker.capacity).chain(opponents.iter().map(|o| &o.capacity)).collect();
    let planning_data = prepare_planning_data(&data, &caps);
    (planning_data, attacker, opponents)
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

#[test]
fn full_mso_iteration_matches_across_backends() {
    let (data, attacker, opponents) = setup();
    let run =
        |backend: Backend| plan_msopds(&data, &attacker, &opponents, &planner_cfg(backend, 1));
    let dense = run(Backend::Dense);
    let sparse = run(Backend::Sparse);
    assert!(
        max_abs_diff(&dense.importance, &sparse.importance) < TOL,
        "attacker importance diverged: {:e}",
        max_abs_diff(&dense.importance, &sparse.importance)
    );
    assert!(
        max_abs_diff(&dense.opponent_importance[0], &sparse.opponent_importance[0]) < TOL,
        "opponent importance diverged: {:e}",
        max_abs_diff(&dense.opponent_importance[0], &sparse.opponent_importance[0])
    );
    assert!(dense.importance.iter().any(|v| v.abs() > 1e-15), "iteration must move values");
}

#[test]
fn multi_iteration_plans_select_the_same_actions() {
    // Tolerances compound over iterations, so compare the *selected plans*
    // (the discrete output) after a short full run rather than raw floats.
    let (data, attacker, opponents) = setup();
    let run =
        |backend: Backend| plan_msopds(&data, &attacker, &opponents, &planner_cfg(backend, 3));
    let dense = run(Backend::Dense);
    let sparse = run(Backend::Sparse);
    assert_eq!(dense.selected, sparse.selected, "plans diverged across backends");
    assert!(max_abs_diff(&dense.importance, &sparse.importance) < 1e-8);
}
