//! One-stop imports for driving the planner programmatically.
//!
//! ```
//! use msopds_core::prelude::*;
//! ```
//!
//! Pulls in the planning entry points of this crate together with the types a
//! typical planning script touches from the layers below: the dataset
//! generators, the victim/surrogate models, the [`GraphOps`] backend API
//! (the *only* public way to materialize graph adjacencies — the raw dense
//! builders are crate-private to `msopds-recsys`), the CG solver's
//! [`SolveOutcome`], and the telemetry gate.
//!
//! The attack baselines and evaluation protocol live *above* this crate
//! (`msopds-attacks`, `msopds-gameplay`); use the root `msopds::prelude` for
//! a whole-stack import.

pub use crate::capacity::{
    build_ca_capacity, build_ia_capacity, ActionToggles, BuiltCapacity, CaCapacitySpec,
    IaCapacitySpec,
};
pub use crate::diagnostics::{analyze, reached_equilibrium, ConvergenceReport};
pub use crate::mso::{mso_optimize, BuiltGame, MsoConfig, MsoDiagnostics, MsoRun, StackelbergGame};
pub use crate::msopds::{
    plan_bopds, plan_msopds, prepare_planning_data, Objective, PlannerConfig, PlannerOutcome,
    PlayerSetup,
};
pub use crate::plan::{BudgetGroup, ImportanceVector};

pub use msopds_autograd::{
    conjugate_gradient, HvpMode, SolveOutcome, SolveStatus, Tape, Tensor, Var,
};
pub use msopds_het_graph::CsrGraph;
pub use msopds_recdata::{
    sample_market, Dataset, DatasetSpec, DemographicsSpec, Market, PoisonAction,
};
pub use msopds_recsys::pds::{build_pds, PdsBuild, PdsConfig, PlayerInput};
pub use msopds_recsys::{
    Backend, EdgePatch, GraphOps, HetRec, HetRecConfig, MatrixFactorization, MfConfig, TrainReport,
};
pub use msopds_telemetry::{enabled as telemetry_enabled, set_enabled as set_telemetry_enabled};
