//! Multilevel Stackelberg Optimization (§IV-B, §V).
//!
//! A generic simultaneous leader/followers optimizer implementing the update
//! rules of eqs. (9), (10), (13) and (14):
//!
//! * followers descend their own partial gradient `∂L^q/∂X^q` (eq. 9);
//! * the leader descends the **total derivative** (eq. 13/14)
//!   `dL^p/dX^p = ∂L^p/∂X^p − Σᵢ ∂L^p/∂X^qᵢ (∂²L^qᵢ/∂X^qᵢ²)⁻¹ ∂²L^qᵢ/∂X^p∂X^qᵢ`,
//!   with the inverse-Hessian product computed matrix-free by conjugate
//!   gradient over Hessian-vector products (Algorithm 1 steps 9–10);
//! * the push–pull step-size discipline `η^p < η^q` required by Theorem 3 is
//!   asserted at construction.
//!
//! The optimizer is generic over a [`StackelbergGame`], which lets the same
//! update rules drive both the PDS-backed poisoning game (see
//! [`crate::msopds`]) and analytic games used to validate convergence against
//! closed-form equilibria.

use msopds_autograd::{conjugate_gradient, conjugate_gradient_multi, HvpMode, Tape, Tensor, Var};
use msopds_faultline as faultline;
use msopds_telemetry as telemetry;
use serde::{Deserialize, Serialize};

/// Outer MSO iterations run across all solves.
static MSO_ITERATIONS: telemetry::Counter = telemetry::Counter::new("core.mso.iterations");
/// Follower corrections dropped from a round for numeric reasons.
static MSO_EXCLUSIONS: telemetry::Counter = telemetry::Counter::new("core.mso.follower_exclusions");
/// Leader updates skipped because the total derivative went non-finite.
static MSO_LEADER_SKIPS: telemetry::Counter = telemetry::Counter::new("core.mso.leader_skips");

/// A differentiable two-level game: one leader, `N` followers.
pub trait StackelbergGame {
    /// Records one evaluation of all losses on `tape`, with leader and
    /// follower decision variables as leaves. Implementations may transform
    /// the raw decision vectors (e.g. binarization) before creating leaves;
    /// gradients are taken with respect to the returned leaves and applied to
    /// the raw vectors, per §IV-C.
    fn build<'t>(&self, tape: &'t Tape, xp: &Tensor, xqs: &[Tensor]) -> BuiltGame<'t>;
}

/// Handles into one recorded game evaluation.
pub struct BuiltGame<'t> {
    /// Leader decision leaf.
    pub xp: Var<'t>,
    /// Follower decision leaves.
    pub xqs: Vec<Var<'t>>,
    /// Leader loss `L^p`.
    pub lp: Var<'t>,
    /// Follower losses `L^qᵢ`.
    pub lqs: Vec<Var<'t>>,
}

/// MSO optimizer configuration (§VI-A.7 defaults).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MsoConfig {
    /// Leader step size η^p (paper: 0.005).
    pub eta_p: f64,
    /// Follower step size η^q (paper: 0.05). Must exceed `eta_p`.
    pub eta_q: f64,
    /// Outer iterations `K` (paper: 20).
    pub iters: usize,
    /// Conjugate-gradient iteration cap for the implicit solve.
    pub cg_iters: usize,
    /// CG relative-residual tolerance.
    pub cg_tol: f64,
    /// CG damping added to the follower Hessian.
    pub cg_damping: f64,
    /// Hessian-vector product mechanism.
    pub hvp_mode: HvpMode,
    /// Kernel-pool lanes used while this solve runs (`0` = inherit the
    /// process-wide pool configuration; see `msopds_autograd::pool`).
    pub threads: usize,
    /// Batch the per-follower implicit solves into one multi-RHS conjugate
    /// gradient (and the per-follower backward passes into multi-seed scans),
    /// amortizing the shared-tape walk and the operator's memory traffic
    /// across opponents. Numerically identical to the sequential path —
    /// per-follower gradients, solves, and `SolveOutcome` classifications are
    /// bitwise unchanged — so this is on by default; it only applies to
    /// [`HvpMode::Exact`] (finite-difference HVPs rebuild the game per
    /// follower and stay sequential).
    pub batch_solves: bool,
}

impl Default for MsoConfig {
    fn default() -> Self {
        Self {
            eta_p: 0.005,
            eta_q: 0.05,
            iters: 20,
            cg_iters: 8,
            cg_tol: 1e-6,
            cg_damping: 1e-3,
            hvp_mode: HvpMode::Exact,
            threads: 0,
            batch_solves: true,
        }
    }
}

/// Why a follower was excluded from one MSO round.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FollowerExclusion {
    /// Outer iteration the exclusion happened in.
    pub iteration: usize,
    /// Follower index.
    pub follower: usize,
    /// Human-readable cause (non-finite gradient, unusable CG solve, …).
    pub reason: String,
}

/// Per-iteration diagnostics of an MSO run, used to observe the convergence
/// behaviour asserted by Theorem 3.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MsoDiagnostics {
    /// Leader loss per iteration.
    pub leader_loss: Vec<f64>,
    /// Follower losses per iteration.
    pub follower_loss: Vec<Vec<f64>>,
    /// ‖dL^p/dX^p‖ per iteration (total derivative).
    pub leader_grad_norm: Vec<f64>,
    /// ‖∂L^qᵢ/∂X^qᵢ‖ per iteration, summed over followers.
    pub follower_grad_norm: Vec<f64>,
    /// CG iterations spent per outer iteration.
    pub cg_iterations: Vec<usize>,
    /// Followers whose inner solve failed and whose correction (and, for
    /// non-finite gradients, own update) was dropped from a round instead of
    /// poisoning the whole game.
    pub exclusions: Vec<FollowerExclusion>,
    /// Iterations whose leader update was skipped because the total
    /// derivative went non-finite.
    pub leader_skips: Vec<usize>,
}

/// Result of an MSO run.
#[derive(Clone, Debug)]
pub struct MsoRun {
    /// Final leader decision vector.
    pub xp: Tensor,
    /// Final follower decision vectors.
    pub xqs: Vec<Tensor>,
    /// Convergence diagnostics.
    pub diagnostics: MsoDiagnostics,
}

/// Runs MSO from the given initial decision vectors.
///
/// # Panics
/// Panics unless `0 < eta_p < eta_q` (the Theorem 3 precondition, asserted in
/// Algorithm 1's input contract).
pub fn mso_optimize<G: StackelbergGame>(
    game: &G,
    mut xp: Tensor,
    mut xqs: Vec<Tensor>,
    cfg: &MsoConfig,
) -> MsoRun {
    assert!(
        cfg.eta_p > 0.0 && cfg.eta_p < cfg.eta_q,
        "Theorem 3 requires 0 < η^p ({}) < η^q ({})",
        cfg.eta_p,
        cfg.eta_q
    );
    if cfg.threads > 0 {
        msopds_autograd::pool::configure_threads(cfg.threads);
    }
    let mut diag = MsoDiagnostics::default();
    let _mso_span = telemetry::span("mso");

    for iter in 0..cfg.iters {
        let _iter_span = telemetry::span("iter");
        MSO_ITERATIONS.incr();
        let tape = Tape::new();
        let built = {
            let _build_span = telemetry::span("build");
            game.build(&tape, &xp, &xqs)
        };
        assert_eq!(built.xqs.len(), xqs.len(), "game must expose one leaf per follower");
        assert_eq!(built.lqs.len(), xqs.len(), "game must expose one loss per follower");

        diag.leader_loss.push(built.lp.item());
        diag.follower_loss.push(built.lqs.iter().map(|l| l.item()).collect());

        // ∂L^p/∂X^p and ∂L^p/∂X^qᵢ in one backward pass.
        let gp_all = {
            let _grads_span = telemetry::span("grads");
            let mut wrt = vec![built.xp];
            wrt.extend(built.xqs.iter().copied());
            tape.grad_vars(built.lp, &wrt)
        };
        let mut total = gp_all[0].value();

        let _correction_span = telemetry::span("correction");
        let mut cg_spent = 0usize;
        let mut follower_gnorm = 0.0;
        let exclude = |diag: &mut MsoDiagnostics, follower: usize, reason: String| {
            MSO_EXCLUSIONS.incr();
            diag.exclusions.push(FollowerExclusion { iteration: iter, follower, reason });
        };
        // `None` = follower excluded this round (its eq. 9 update is skipped).
        let mut follower_grads: Vec<Option<Tensor>> = Vec::with_capacity(xqs.len());
        let batched = cfg.batch_solves && matches!(cfg.hvp_mode, HvpMode::Exact);
        if batched {
            // Batched arm: same math as the sequential loop below, with the
            // per-follower backward passes fused into multi-seed scans and the
            // per-follower CG solves run in lockstep. Every per-follower value
            // (gradient, solve iterates, SolveOutcome, correction) is bitwise
            // identical to the sequential arm; only the order *between*
            // followers of the phases changes, so exclusion diagnostics may
            // interleave differently when several followers fail in the same
            // round for different-phase reasons.

            // Phase 1: all follower gradients ∂L^qᵢ/∂X^qᵢ in one reverse
            // scan over the shared tape (the PDS build is walked once, not
            // once per follower).
            let gq_all = tape.grad_vars_multi(&built.lqs, &built.xqs);
            let gqs: Vec<Var<'_>> = gq_all.iter().enumerate().map(|(i, row)| row[i]).collect();

            // Phase 2: screening, in follower order — identical exclusion
            // reasons and fault-injection occurrence sequence as sequential.
            let mut solvable: Vec<usize> = Vec::new();
            let mut rhss: Vec<Vec<f64>> = Vec::new();
            let mut shapes: Vec<Vec<usize>> = Vec::new();
            for i in 0..built.xqs.len() {
                let gq_val = gqs[i].value();
                if !gq_val.all_finite() {
                    exclude(&mut diag, i, "non-finite follower gradient ∂L^q/∂X^q".to_string());
                    follower_grads.push(None);
                    continue;
                }
                follower_gnorm += gq_val.norm();
                follower_grads.push(Some(gq_val));

                let mut rhs = gp_all[1 + i].value();
                if faultline::armed() {
                    let mut v = rhs.to_vec();
                    faultline::corrupt_slice("mso.follower.rhs", &mut v);
                    rhs = Tensor::from_vec(v, rhs.shape());
                }
                if !rhs.all_finite() {
                    exclude(&mut diag, i, "non-finite right-hand side ∂L^p/∂X^q".to_string());
                    continue;
                }
                if rhs.norm() < 1e-12 {
                    continue; // the leader loss does not see this follower
                }
                solvable.push(i);
                shapes.push(rhs.shape().to_vec());
                rhss.push(rhs.to_vec());
            }

            // Phase 3: one lockstep multi-RHS solve. Each iteration fuses the
            // HVPs of every still-active follower into one multi-seed
            // backward pass instead of one tape walk per follower.
            let sols = if rhss.is_empty() {
                Vec::new()
            } else {
                conjugate_gradient_multi(
                    |dirs| {
                        let mut gvs = Vec::with_capacity(dirs.len());
                        let mut wrts = Vec::with_capacity(dirs.len());
                        for &(s, v) in dirs {
                            let i = solvable[s];
                            let vc = tape.constant(Tensor::from_vec(v.to_vec(), &shapes[s]));
                            gvs.push(gqs[i].mul(vc).sum());
                            wrts.push(built.xqs[i]);
                        }
                        let grads = tape.grad_vars_multi(&gvs, &wrts);
                        grads
                            .into_iter()
                            .enumerate()
                            .map(|(j, row)| row[j].value().to_vec())
                            .collect()
                    },
                    &rhss,
                    cfg.cg_iters,
                    cfg.cg_tol,
                    cfg.cg_damping,
                )
            };

            // Phase 4: corrections ξᵢ·∂²L^qᵢ/∂X^p∂X^qᵢ, batched into one
            // multi-seed backward, then subtracted in follower order.
            let mut gxis: Vec<Var<'_>> = Vec::new();
            let mut gxi_followers: Vec<usize> = Vec::new();
            for (s, sol) in sols.into_iter().enumerate() {
                let i = solvable[s];
                cg_spent += sol.iterations;
                if !sol.usable() {
                    exclude(
                        &mut diag,
                        i,
                        format!(
                            "unusable CG solve ({:?} after {} retries)",
                            sol.status, sol.retries
                        ),
                    );
                    continue;
                }
                let xi = tape.constant(Tensor::from_vec(sol.x, &shapes[s]));
                gxis.push(gqs[i].mul(xi).sum());
                gxi_followers.push(i);
            }
            if !gxis.is_empty() {
                let corrections = tape.grad_vars_multi(&gxis, &[built.xp]);
                for (row, &i) in corrections.iter().zip(&gxi_followers) {
                    let correction = row[0].value();
                    if !correction.all_finite() {
                        exclude(&mut diag, i, "non-finite mixed-Hessian correction".to_string());
                        continue;
                    }
                    total = total.zip(&correction, |t, c| t - c);
                }
            }
        } else {
            for (i, (&xq_leaf, &lq)) in built.xqs.iter().zip(built.lqs.iter()).enumerate() {
                // Follower's own update direction (eq. 9), kept on the tape so it
                // can be differentiated again for the second-order terms.
                let gq = tape.grad_vars(lq, &[xq_leaf])[0];
                let gq_val = gq.value();
                if !gq_val.all_finite() {
                    // A diverged follower must not poison the round: freeze its
                    // decision vector and drop its correction, with a diagnostic.
                    exclude(&mut diag, i, "non-finite follower gradient ∂L^q/∂X^q".to_string());
                    follower_grads.push(None);
                    continue;
                }
                follower_gnorm += gq_val.norm();
                follower_grads.push(Some(gq_val));

                // Right-hand side ∂L^p/∂X^qᵢ of the implicit solve.
                let mut rhs = gp_all[1 + i].value();
                if faultline::armed() {
                    let mut v = rhs.to_vec();
                    faultline::corrupt_slice("mso.follower.rhs", &mut v);
                    rhs = Tensor::from_vec(v, rhs.shape());
                }
                if !rhs.all_finite() {
                    exclude(&mut diag, i, "non-finite right-hand side ∂L^p/∂X^q".to_string());
                    continue;
                }
                if rhs.norm() < 1e-12 {
                    continue; // the leader loss does not see this follower: no correction
                }

                // Solve ξ·∂²L^q/∂X^q² = ∂L^p/∂X^q matrix-free (Alg. 1 step 9).
                let sol = match cfg.hvp_mode {
                    HvpMode::Exact => conjugate_gradient(
                        |v| {
                            let v_t = Tensor::from_vec(v.to_vec(), rhs.shape());
                            let vc = tape.constant(v_t);
                            let gv = gq.mul(vc).sum();
                            tape.grad(gv, &[xq_leaf]).remove(0).to_vec()
                        },
                        rhs.data(),
                        cfg.cg_iters,
                        cfg.cg_tol,
                        cfg.cg_damping,
                    ),
                    HvpMode::FiniteDiff => {
                        let eval_grad = |xq_pert: &Tensor| -> Tensor {
                            let t2 = Tape::new();
                            let mut xqs2 = xqs.clone();
                            xqs2[i] = xq_pert.clone();
                            let b2 = game.build(&t2, &xp, &xqs2);
                            t2.grad(b2.lqs[i], &[b2.xqs[i]]).remove(0)
                        };
                        conjugate_gradient(
                            |v| {
                                let v_t = Tensor::from_vec(v.to_vec(), rhs.shape());
                                msopds_autograd::hvp::hvp_finite_diff(eval_grad, &xqs[i], &v_t)
                                    .to_vec()
                            },
                            rhs.data(),
                            cfg.cg_iters,
                            cfg.cg_tol,
                            cfg.cg_damping,
                        )
                    }
                };
                cg_spent += sol.iterations;
                if !sol.usable() {
                    // CG classified the solve as pathological (NaN operator,
                    // divergence) even after damped retries: drop the correction
                    // for this follower rather than subtracting garbage.
                    exclude(
                        &mut diag,
                        i,
                        format!(
                            "unusable CG solve ({:?} after {} retries)",
                            sol.status, sol.retries
                        ),
                    );
                    continue;
                }

                // Correction ξ·∂²L^qᵢ/∂X^p∂X^qᵢ via one more backward pass
                // (Alg. 1 step 10): differentiate ⟨∂L^q/∂X^q, ξ⟩ w.r.t. X^p.
                let xi = tape.constant(Tensor::from_vec(sol.x, rhs.shape()));
                let gxi = gq.mul(xi).sum();
                let correction = tape.grad(gxi, &[built.xp]).remove(0);
                if !correction.all_finite() {
                    exclude(&mut diag, i, "non-finite mixed-Hessian correction".to_string());
                    continue;
                }
                total = total.zip(&correction, |t, c| t - c);
            }
        }

        diag.leader_grad_norm.push(total.norm());
        diag.follower_grad_norm.push(follower_gnorm);
        diag.cg_iterations.push(cg_spent);

        // Simultaneous updates (eq. 10 for the leader, eq. 9 for followers).
        // A non-finite total derivative freezes the leader for one round
        // instead of destroying the decision vector.
        if total.all_finite() {
            xp = xp.zip(&total, |x, g| x - cfg.eta_p * g);
        } else {
            MSO_LEADER_SKIPS.incr();
            diag.leader_skips.push(iter);
        }
        for (xq, gq) in xqs.iter_mut().zip(&follower_grads) {
            if let Some(gq) = gq {
                *xq = xq.zip(gq, |x, g| x - cfg.eta_q * g);
            }
        }
    }

    MsoRun { xp, xqs, diagnostics: diag }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Analytic quadratic Stackelberg game with a closed-form equilibrium:
    /// `L^p = (x_p − a)² + c·x_p·x_q`, `L^q = (x_q − d·x_p)²`.
    /// Follower best response: x_q*(x_p) = d·x_p; leader optimum
    /// x_p* = a / (1 + c·d), x_q* = d·x_p*.
    struct Quadratic {
        a: f64,
        c: f64,
        d: f64,
    }

    impl StackelbergGame for Quadratic {
        fn build<'t>(&self, tape: &'t Tape, xp: &Tensor, xqs: &[Tensor]) -> BuiltGame<'t> {
            let xpv = tape.leaf(xp.clone());
            let xqv = tape.leaf(xqs[0].clone());
            let lp = xpv.add_scalar(-self.a).square().add(xpv.mul(xqv).scale(self.c)).sum();
            let lq = xqv.sub(xpv.scale(self.d)).square().sum();
            BuiltGame { xp: xpv, xqs: vec![xqv], lp, lqs: vec![lq] }
        }
    }

    fn solve(cfg: &MsoConfig, game: &Quadratic) -> MsoRun {
        mso_optimize(game, Tensor::scalar(0.0), vec![Tensor::scalar(0.0)], cfg)
    }

    #[test]
    fn converges_to_closed_form_equilibrium() {
        let game = Quadratic { a: 2.0, c: 0.5, d: 1.0 };
        let cfg = MsoConfig { eta_p: 0.05, eta_q: 0.4, iters: 400, ..Default::default() };
        let run = solve(&cfg, &game);
        let xp_star = game.a / (1.0 + game.c * game.d);
        let xq_star = game.d * xp_star;
        assert!(
            (run.xp.item() - xp_star).abs() < 1e-3,
            "leader: got {}, want {xp_star}",
            run.xp.item()
        );
        assert!(
            (run.xqs[0].item() - xq_star).abs() < 1e-3,
            "follower: got {}, want {xq_star}",
            run.xqs[0].item()
        );
    }

    #[test]
    fn naive_partial_gradient_misses_equilibrium() {
        // With c·d ≠ 0 the naive fixed point (ignoring the correction term)
        // is a/(1 + c·d/2) ≠ a/(1+c·d); verify MSO lands on the *Stackelberg*
        // point rather than the naive simultaneous-gradient point.
        let game = Quadratic { a: 3.0, c: 1.0, d: 1.0 };
        let cfg = MsoConfig { eta_p: 0.05, eta_q: 0.4, iters: 600, ..Default::default() };
        let run = solve(&cfg, &game);
        let stackelberg = 1.5;
        let naive = 2.0; // solves ∂Lp/∂xp = 0 with xq = d·xp: 2(x−3)+x = 0
        assert!((run.xp.item() - stackelberg).abs() < 5e-3);
        assert!((run.xp.item() - naive).abs() > 0.4);
    }

    #[test]
    fn finite_diff_hvp_agrees_with_exact() {
        let game = Quadratic { a: 2.0, c: 0.5, d: 0.8 };
        let base = MsoConfig { eta_p: 0.05, eta_q: 0.4, iters: 200, ..Default::default() };
        let exact = solve(&base, &game);
        let fd = solve(&MsoConfig { hvp_mode: HvpMode::FiniteDiff, ..base }, &game);
        assert!((exact.xp.item() - fd.xp.item()).abs() < 1e-4);
    }

    #[test]
    fn diagnostics_record_every_iteration() {
        let game = Quadratic { a: 1.0, c: 0.2, d: 0.5 };
        let cfg = MsoConfig { eta_p: 0.05, eta_q: 0.4, iters: 7, ..Default::default() };
        let run = solve(&cfg, &game);
        assert_eq!(run.diagnostics.leader_loss.len(), 7);
        assert_eq!(run.diagnostics.follower_loss.len(), 7);
        assert_eq!(run.diagnostics.leader_grad_norm.len(), 7);
    }

    #[test]
    fn leader_gradient_norm_decays() {
        let game = Quadratic { a: 2.0, c: 0.5, d: 1.0 };
        let cfg = MsoConfig { eta_p: 0.05, eta_q: 0.4, iters: 300, ..Default::default() };
        let run = solve(&cfg, &game);
        let first = run.diagnostics.leader_grad_norm[0];
        let last = *run.diagnostics.leader_grad_norm.last().unwrap();
        assert!(last < 0.05 * first, "‖grad‖ {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "Theorem 3")]
    fn rejects_eta_p_not_less_than_eta_q() {
        let game = Quadratic { a: 1.0, c: 0.1, d: 0.1 };
        let cfg = MsoConfig { eta_p: 0.5, eta_q: 0.1, iters: 1, ..Default::default() };
        let _ = solve(&cfg, &game);
    }

    #[test]
    fn diverged_follower_is_excluded_not_poisoning() {
        // The follower loss ln(x_q) has gradient 1/x_q = ∞ at the x_q = 0
        // start: every round must exclude the follower (with a diagnostic),
        // freeze its decision vector, and keep the leader's own descent
        // finite — instead of NaN-ing the whole game.
        struct BadFollower;
        impl StackelbergGame for BadFollower {
            fn build<'t>(&self, tape: &'t Tape, xp: &Tensor, xqs: &[Tensor]) -> BuiltGame<'t> {
                let xpv = tape.leaf(xp.clone());
                let xqv = tape.leaf(xqs[0].clone());
                let lp = xpv.add_scalar(-1.0).square().sum().add(xpv.mul(xqv).scale(0.1).sum());
                let lq = xqv.ln().sum();
                BuiltGame { xp: xpv, xqs: vec![xqv], lp, lqs: vec![lq] }
            }
        }
        let cfg = MsoConfig { eta_p: 0.05, eta_q: 0.4, iters: 10, ..Default::default() };
        let run = mso_optimize(&BadFollower, Tensor::scalar(0.0), vec![Tensor::scalar(0.0)], &cfg);
        assert_eq!(run.diagnostics.exclusions.len(), 10, "every round excludes the follower");
        assert_eq!(run.diagnostics.exclusions[0].follower, 0);
        assert!(run.diagnostics.exclusions[0].reason.contains("non-finite follower gradient"));
        assert!(run.xp.item().is_finite(), "leader poisoned: {}", run.xp.item());
        assert!(run.xp.item() > 0.1, "leader should still descend toward its optimum");
        assert_eq!(run.xqs[0].item(), 0.0, "excluded follower stays frozen");
        assert!(run.diagnostics.leader_skips.is_empty());
    }

    #[test]
    fn healthy_games_record_no_exclusions() {
        let game = Quadratic { a: 2.0, c: 0.5, d: 1.0 };
        let cfg = MsoConfig { eta_p: 0.05, eta_q: 0.4, iters: 50, ..Default::default() };
        let run = solve(&cfg, &game);
        assert!(run.diagnostics.exclusions.is_empty());
        assert!(run.diagnostics.leader_skips.is_empty());
    }

    #[test]
    fn two_followers_sum_their_corrections() {
        // Symmetric two-follower extension; equilibrium from eq. (14):
        // L^p = (x_p − a)² + c·x_p·(x_q1 + x_q2), followers track d·x_p.
        struct TwoFollower {
            a: f64,
            c: f64,
            d: f64,
        }
        impl StackelbergGame for TwoFollower {
            fn build<'t>(&self, tape: &'t Tape, xp: &Tensor, xqs: &[Tensor]) -> BuiltGame<'t> {
                let xpv = tape.leaf(xp.clone());
                let q1 = tape.leaf(xqs[0].clone());
                let q2 = tape.leaf(xqs[1].clone());
                let lp =
                    xpv.add_scalar(-self.a).square().add(xpv.mul(q1.add(q2)).scale(self.c)).sum();
                let lq1 = q1.sub(xpv.scale(self.d)).square().sum();
                let lq2 = q2.sub(xpv.scale(self.d)).square().sum();
                BuiltGame { xp: xpv, xqs: vec![q1, q2], lp, lqs: vec![lq1, lq2] }
            }
        }
        let game = TwoFollower { a: 2.0, c: 0.25, d: 1.0 };
        let cfg = MsoConfig { eta_p: 0.04, eta_q: 0.4, iters: 500, ..Default::default() };
        let run = mso_optimize(
            &game,
            Tensor::scalar(0.0),
            vec![Tensor::scalar(0.0), Tensor::scalar(0.0)],
            &cfg,
        );
        // Same algebra as the single-follower case with c_eff = 2c.
        let xp_star = game.a / (1.0 + 2.0 * game.c * game.d);
        assert!((run.xp.item() - xp_star).abs() < 2e-3, "got {}", run.xp.item());
    }

    // ---- batched multi-RHS solves (ISSUE 6): bitwise parity ----

    /// Cross-coupled two-follower game: each follower's loss also touches the
    /// *other* follower's variable, so the batched multi-seed backward must
    /// keep the adjoint streams strictly separate (a summed-loss shortcut
    /// would leak cross-Hessian terms here).
    struct Coupled;
    impl StackelbergGame for Coupled {
        fn build<'t>(&self, tape: &'t Tape, xp: &Tensor, xqs: &[Tensor]) -> BuiltGame<'t> {
            let xpv = tape.leaf(xp.clone());
            let q1 = tape.leaf(xqs[0].clone());
            let q2 = tape.leaf(xqs[1].clone());
            let lp =
                xpv.add_scalar(-2.0).square().add(xpv.mul(q1.add(q2.scale(2.0))).scale(0.3)).sum();
            let lq1 = q1.sub(xpv.scale(0.7)).square().add(q1.mul(q2).square().scale(0.2)).sum();
            let lq2 = q2.sub(xpv.scale(0.5)).square().add(q2.mul(q1).scale(0.1)).sum();
            BuiltGame { xp: xpv, xqs: vec![q1, q2], lp, lqs: vec![lq1, lq2] }
        }
    }

    fn assert_runs_bitwise_eq(batched: &MsoRun, sequential: &MsoRun) {
        let bits = |t: &Tensor| t.to_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&batched.xp), bits(&sequential.xp), "leader decision");
        for (i, (b, s)) in batched.xqs.iter().zip(sequential.xqs.iter()).enumerate() {
            assert_eq!(bits(b), bits(s), "follower {i} decision");
        }
        let (db, ds) = (&batched.diagnostics, &sequential.diagnostics);
        let fbits = |xs: &[f64]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(fbits(&db.leader_loss), fbits(&ds.leader_loss), "leader loss");
        assert_eq!(db.follower_loss, ds.follower_loss, "follower losses");
        assert_eq!(fbits(&db.leader_grad_norm), fbits(&ds.leader_grad_norm), "‖dLp/dXp‖");
        assert_eq!(fbits(&db.follower_grad_norm), fbits(&ds.follower_grad_norm), "‖gq‖");
        assert_eq!(db.cg_iterations, ds.cg_iterations, "CG iterations per round");
        assert_eq!(db.exclusions.len(), ds.exclusions.len(), "exclusion count");
        assert_eq!(db.leader_skips, ds.leader_skips, "leader skips");
    }

    #[test]
    fn batched_solves_bitwise_match_sequential_cross_coupled() {
        let seq_cfg = MsoConfig {
            eta_p: 0.03,
            eta_q: 0.3,
            iters: 30,
            batch_solves: false,
            ..Default::default()
        };
        let bat_cfg = MsoConfig { batch_solves: true, ..seq_cfg };
        let x0 = Tensor::scalar(0.1);
        let q0 = vec![Tensor::scalar(0.2), Tensor::scalar(-0.1)];
        let sequential = mso_optimize(&Coupled, x0.clone(), q0.clone(), &seq_cfg);
        let batched = mso_optimize(&Coupled, x0, q0, &bat_cfg);
        assert_runs_bitwise_eq(&batched, &sequential);
        assert!(batched.xp.item().is_finite());
    }

    #[test]
    fn batched_solves_bitwise_match_sequential_with_exclusions() {
        // One healthy follower plus one whose gradient is non-finite from the
        // start: the batched screening must drop the same follower with the
        // same reason and still match the healthy follower's solve bitwise.
        struct HalfBad;
        impl StackelbergGame for HalfBad {
            fn build<'t>(&self, tape: &'t Tape, xp: &Tensor, xqs: &[Tensor]) -> BuiltGame<'t> {
                let xpv = tape.leaf(xp.clone());
                let q1 = tape.leaf(xqs[0].clone());
                let q2 = tape.leaf(xqs[1].clone());
                let lp = xpv.add_scalar(-1.0).square().add(xpv.mul(q1.add(q2)).scale(0.1)).sum();
                let lq1 = q1.sub(xpv.scale(0.5)).square().sum();
                let lq2 = q2.ln().sum(); // gradient 1/x_q2 = ∞ at x_q2 = 0
                BuiltGame { xp: xpv, xqs: vec![q1, q2], lp, lqs: vec![lq1, lq2] }
            }
        }
        let seq_cfg = MsoConfig {
            eta_p: 0.05,
            eta_q: 0.4,
            iters: 8,
            batch_solves: false,
            ..Default::default()
        };
        let bat_cfg = MsoConfig { batch_solves: true, ..seq_cfg };
        let q0 = vec![Tensor::scalar(0.0), Tensor::scalar(0.0)];
        let sequential = mso_optimize(&HalfBad, Tensor::scalar(0.0), q0.clone(), &seq_cfg);
        let batched = mso_optimize(&HalfBad, Tensor::scalar(0.0), q0, &bat_cfg);
        assert_runs_bitwise_eq(&batched, &sequential);
        assert_eq!(batched.diagnostics.exclusions.len(), 8);
        assert!(batched.diagnostics.exclusions[0].reason.contains("non-finite follower gradient"));
        assert_eq!(batched.xqs[1].item(), 0.0, "excluded follower stays frozen");
    }

    #[test]
    fn batched_is_default_and_matches_two_follower_equilibrium() {
        // The default config batches; the analytic TwoFollower equilibrium
        // must still be reached (same check as the sequential test above).
        let cfg = MsoConfig { eta_p: 0.04, eta_q: 0.4, iters: 500, ..Default::default() };
        assert!(cfg.batch_solves, "batching is opt-out");
        let run = mso_optimize(
            &Coupled,
            Tensor::scalar(0.0),
            vec![Tensor::scalar(0.0), Tensor::scalar(0.0)],
            &cfg,
        );
        assert!(run.xp.item().is_finite());
        assert!(run.diagnostics.leader_grad_norm.last().unwrap().is_finite());
    }
}
