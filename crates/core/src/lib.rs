//! # msopds-core
//!
//! The paper's primary contribution: planning Multiplayer Comprehensive
//! Attacks against heterogeneous recommenders via **M**ultilevel
//! **S**tackelberg **O**ptimization over a **P**rogressive **D**ifferentiable
//! **S**urrogate (MSOPDS, Algorithm 1).
//!
//! * [`plan`] — importance vectors and budget-constrained binarization (§IV-A);
//! * [`capacity`] — the 𝒞_IA / 𝒞_CA capacity sets of eqs. (4) and (6);
//! * [`mso`] — the generic leader/follower update rules of eqs. (9)–(14),
//!   validated against closed-form Stackelberg equilibria;
//! * [`msopds`] — MSOPDS and the BOPDS ablation driving the PDS surrogate.
//!
//! End-to-end planning flows through [`msopds::plan_msopds`]; the evaluation
//! protocol lives in the `msopds-gameplay` crate.

#![warn(missing_docs)]

pub mod capacity;
pub mod diagnostics;
pub mod mso;
pub mod msopds;
pub mod plan;
pub mod prelude;

pub use capacity::{
    build_ca_capacity, build_ia_capacity, ActionToggles, BuiltCapacity, CaCapacitySpec,
    IaCapacitySpec,
};
pub use diagnostics::{analyze, reached_equilibrium, ConvergenceReport};
pub use mso::{mso_optimize, BuiltGame, MsoConfig, MsoDiagnostics, MsoRun, StackelbergGame};
pub use msopds::{
    plan_bopds, plan_msopds, prepare_planning_data, Objective, PlannerConfig, PlannerOutcome,
    PlayerSetup,
};
pub use plan::{BudgetGroup, ImportanceVector};
