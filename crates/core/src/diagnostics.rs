//! Convergence analysis over [`MsoDiagnostics`](crate::mso::MsoDiagnostics).
//!
//! Theorem 3 guarantees convergence to a differential Stackelberg equilibrium
//! under η^p < η^q; footnote 5 observes that in practice the total and
//! partial derivatives stay bounded. These helpers make both properties
//! checkable on a recorded run, and are used by the convergence tests and the
//! η-ratio ablation bench.

use serde::{Deserialize, Serialize};

use crate::mso::MsoDiagnostics;

/// Summary verdict over one optimization run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ConvergenceReport {
    /// Mean leader gradient norm over the last quarter of iterations.
    pub trailing_leader_grad: f64,
    /// Mean follower gradient norm over the last quarter of iterations.
    pub trailing_follower_grad: f64,
    /// Ratio `trailing / initial` of the leader gradient norm (< 1 means the
    /// equilibrium condition dL^p/dX^p → 0 is being approached).
    pub leader_grad_decay: f64,
    /// Largest leader gradient norm observed (footnote-5 boundedness check).
    pub max_leader_grad: f64,
    /// Whether every recorded quantity stayed finite.
    pub all_finite: bool,
}

/// Analyzes a recorded run.
///
/// # Panics
/// Panics on an empty diagnostics record.
pub fn analyze(diag: &MsoDiagnostics) -> ConvergenceReport {
    let n = diag.leader_grad_norm.len();
    assert!(n > 0, "empty diagnostics");
    let tail = (n / 4).max(1);
    let trailing_leader_grad = diag.leader_grad_norm[n - tail..].iter().sum::<f64>() / tail as f64;
    let trailing_follower_grad =
        diag.follower_grad_norm[n - tail..].iter().sum::<f64>() / tail as f64;
    let initial = diag.leader_grad_norm[0].max(1e-12);
    let max_leader_grad = diag.leader_grad_norm.iter().copied().fold(0.0, f64::max);
    let all_finite = diag.leader_loss.iter().all(|x| x.is_finite())
        && diag.leader_grad_norm.iter().all(|x| x.is_finite())
        && diag.follower_grad_norm.iter().all(|x| x.is_finite())
        && diag.follower_loss.iter().flatten().all(|x| x.is_finite());
    ConvergenceReport {
        trailing_leader_grad,
        trailing_follower_grad,
        leader_grad_decay: trailing_leader_grad / initial,
        max_leader_grad,
        all_finite,
    }
}

/// True when the trailing leader gradient fell below `tol` — the empirical
/// version of the equilibrium condition of Definition 7, eq. (20).
pub fn reached_equilibrium(diag: &MsoDiagnostics, tol: f64) -> bool {
    let report = analyze(diag);
    report.all_finite && report.trailing_leader_grad < tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mso::{mso_optimize, BuiltGame, MsoConfig, StackelbergGame};
    use msopds_autograd::{Tape, Tensor};

    struct Quad;
    impl StackelbergGame for Quad {
        fn build<'t>(&self, tape: &'t Tape, xp: &Tensor, xqs: &[Tensor]) -> BuiltGame<'t> {
            let xpv = tape.leaf(xp.clone());
            let xqv = tape.leaf(xqs[0].clone());
            let lp = xpv.add_scalar(-2.0).square().add(xpv.mul(xqv).scale(0.5)).sum();
            let lq = xqv.sub(xpv).square().sum();
            BuiltGame { xp: xpv, xqs: vec![xqv], lp, lqs: vec![lq] }
        }
    }

    fn run(iters: usize) -> MsoDiagnostics {
        let cfg = MsoConfig { eta_p: 0.05, eta_q: 0.4, iters, ..Default::default() };
        mso_optimize(&Quad, Tensor::scalar(0.0), vec![Tensor::scalar(0.0)], &cfg).diagnostics
    }

    #[test]
    fn long_runs_reach_equilibrium() {
        let diag = run(400);
        assert!(reached_equilibrium(&diag, 1e-3), "{:?}", analyze(&diag));
    }

    #[test]
    fn short_runs_do_not() {
        let diag = run(3);
        assert!(!reached_equilibrium(&diag, 1e-6));
    }

    #[test]
    fn report_fields_are_consistent() {
        let diag = run(100);
        let r = analyze(&diag);
        assert!(r.all_finite);
        assert!(r.trailing_leader_grad <= r.max_leader_grad);
        assert!(r.leader_grad_decay < 1.0, "gradient should decay on a convex game");
    }

    #[test]
    #[should_panic(expected = "empty diagnostics")]
    fn empty_diag_panics() {
        let _ = analyze(&MsoDiagnostics::default());
    }

    #[test]
    fn eta_discipline_converges_where_inverted_does_not_apply() {
        // Empirical Theorem 3 check at two admissible ratios: a smaller
        // η^p/η^q ratio still converges (more slowly per-iteration but
        // stably), and both land on the same equilibrium.
        let run_ratio = |eta_p: f64| {
            let cfg = MsoConfig { eta_p, eta_q: 0.4, iters: 600, ..Default::default() };
            mso_optimize(&Quad, Tensor::scalar(0.0), vec![Tensor::scalar(0.0)], &cfg)
        };
        let fast = run_ratio(0.1);
        let slow = run_ratio(0.02);
        assert!((fast.xp.item() - slow.xp.item()).abs() < 5e-3);
    }
}
