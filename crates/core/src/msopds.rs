//! MSOPDS and BOPDS: the MSO update rules driving the PDS surrogate
//! (Algorithm 1 and its single-player ablation from §IV-D).

use msopds_autograd::{Tape, Tensor, Var};
use msopds_recdata::Dataset;
use msopds_recsys::losses::{self, Scores};
use msopds_recsys::pds::{build_pds, PdsConfig, PlayerInput};
use msopds_telemetry as telemetry;
use serde::{Deserialize, Serialize};

/// Completed planning runs (MSOPDS and BOPDS alike).
static PLANS: telemetry::Counter = telemetry::Counter::new("core.plans");

use crate::capacity::BuiltCapacity;
use crate::mso::{mso_optimize, BuiltGame, MsoConfig, MsoDiagnostics, StackelbergGame};

/// A player's adversarial objective, evaluated on the surrogate's final
/// embeddings.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Objective {
    /// Comprehensive Attack (eq. 5): promote `target` to `audience` over
    /// `competing`.
    Comprehensive {
        /// Target audience 𝒰_TA.
        audience: Vec<usize>,
        /// Target item i_t.
        target: usize,
        /// Competing items ℐ_compete.
        competing: Vec<usize>,
    },
    /// Demotion (§VI-A.4): minimize the mean predicted rating of `target`.
    Demote {
        /// Users whose predictions are demoted.
        audience: Vec<usize>,
        /// The (attacker's) target item to push down.
        target: usize,
    },
    /// Injection Attack (eq. 3): maximize the mean predicted rating of
    /// `target` over `users`.
    Inject {
        /// Users whose predictions are promoted (all real users in eq. 3).
        users: Vec<usize>,
        /// Target item.
        target: usize,
    },
}

impl Objective {
    /// Records the loss on the tape from the surrogate's score model.
    pub fn loss<'t>(&self, scores: &Scores<'t>) -> Var<'t> {
        match self {
            Objective::Comprehensive { audience, target, competing } => {
                losses::ca_loss(scores, audience, *target, competing)
            }
            Objective::Demote { audience, target } => {
                losses::demotion_loss(scores, audience, *target)
            }
            Objective::Inject { users, target } => losses::ia_loss(scores, users, *target),
        }
    }
}

/// One player of the poisoning game: a capacity plus an objective.
#[derive(Clone, Debug)]
pub struct PlayerSetup {
    /// The player's built capacity (candidates, budgets, fixed actions).
    pub capacity: BuiltCapacity,
    /// The player's adversarial loss.
    pub objective: Objective,
}

/// Combined configuration for a planning run.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Outer Stackelberg optimization parameters.
    pub mso: MsoConfig,
    /// Inner surrogate parameters.
    pub pds: PdsConfig,
}

/// Outcome of a planning run.
#[derive(Clone, Debug)]
pub struct PlannerOutcome {
    /// The attacker's selected actions (fixed actions *not* included; see
    /// [`BuiltCapacity::fixed`]).
    pub selected: Vec<msopds_recdata::PoisonAction>,
    /// Complete attacker plan: fixed + selected.
    pub full_plan: Vec<msopds_recdata::PoisonAction>,
    /// Final attacker importance values.
    pub importance: Vec<f64>,
    /// Simulated final opponent importance values (diagnostics).
    pub opponent_importance: Vec<Vec<f64>>,
    /// Optimization diagnostics.
    pub diagnostics: MsoDiagnostics,
}

/// The PDS-backed Stackelberg game (one attacker leaf, one leaf per opponent).
struct PoisonGame<'a> {
    data: &'a Dataset,
    attacker: &'a PlayerSetup,
    opponents: &'a [PlayerSetup],
    pds: PdsConfig,
}

impl StackelbergGame for PoisonGame<'_> {
    fn build<'t>(&self, tape: &'t Tape, xp: &Tensor, xqs: &[Tensor]) -> BuiltGame<'t> {
        // Binarize each player's continuous priorities under their budgets
        // (upper-left of Fig. 2); gradients are taken w.r.t. the binarized
        // leaves and applied to the continuous vectors (§IV-C).
        let xhat_p = self.attacker.capacity.importance.binarize_values(xp.data());
        let xhat_qs: Vec<Tensor> = self
            .opponents
            .iter()
            .zip(xqs)
            .map(|(o, xq)| o.capacity.importance.binarize_values(xq.data()))
            .collect();

        let mut players = Vec::with_capacity(1 + self.opponents.len());
        players.push(PlayerInput {
            candidates: &self.attacker.capacity.importance.candidates,
            xhat: xhat_p,
        });
        for (o, xhat) in self.opponents.iter().zip(xhat_qs) {
            players.push(PlayerInput { candidates: &o.capacity.importance.candidates, xhat });
        }

        let pds = build_pds(tape, self.data, &players, &self.pds);
        let scores = pds.scores();
        let lp = self.attacker.objective.loss(&scores);
        let lqs: Vec<Var<'t>> = self.opponents.iter().map(|o| o.objective.loss(&scores)).collect();
        let mut xhats = pds.xhats.into_iter();
        let xp_leaf = xhats.next().expect("attacker leaf");
        BuiltGame { xp: xp_leaf, xqs: xhats.collect(), lp, lqs }
    }
}

/// Plans a Multiplayer Comprehensive Attack with MSOPDS (Algorithm 1).
///
/// `data` must be the dataset with *all* players' fake users already injected
/// and all fixed actions applied (use [`prepare_planning_data`]). The attacker
/// anticipates `opponents`, each updated by eq. (9) while the attacker follows
/// the total derivative of eq. (14).
pub fn plan_msopds(
    data: &Dataset,
    attacker: &PlayerSetup,
    opponents: &[PlayerSetup],
    cfg: &PlannerConfig,
) -> PlannerOutcome {
    let _span = telemetry::span("plan");
    PLANS.incr();
    let game = PoisonGame { data, attacker, opponents, pds: cfg.pds };
    let xp0 = Tensor::from_vec(
        attacker.capacity.importance.values.clone(),
        &[attacker.capacity.importance.len()],
    );
    let xqs0: Vec<Tensor> = opponents
        .iter()
        .map(|o| {
            Tensor::from_vec(o.capacity.importance.values.clone(), &[o.capacity.importance.len()])
        })
        .collect();
    let run = mso_optimize(&game, xp0, xqs0, &cfg.mso);

    let mut attacker_iv = attacker.capacity.importance.clone();
    attacker_iv.values = run.xp.to_vec();
    let selected = attacker_iv.extract_plan();
    let mut full_plan = attacker.capacity.fixed.clone();
    full_plan.extend(selected.iter().copied());

    PlannerOutcome {
        selected,
        full_plan,
        importance: run.xp.to_vec(),
        opponent_importance: run.xqs.iter().map(|x| x.to_vec()).collect(),
        diagnostics: run.diagnostics,
    }
}

/// Plans a single-player Comprehensive Attack with BOPDS — the bi-level
/// ablation of §IV-D (no opponent anticipation; plain descent on
/// `∂L^p/∂X̂^p`).
pub fn plan_bopds(data: &Dataset, player: &PlayerSetup, cfg: &PlannerConfig) -> PlannerOutcome {
    plan_msopds(data, player, &[], cfg)
}

/// Applies every player's fake-user injection and fixed actions to a copy of
/// `base`, returning the dataset the planners run on.
///
/// The per-player capacities must already have been built against `base` in
/// order (attacker first), so their fake ids line up.
pub fn prepare_planning_data(base: &Dataset, players: &[&BuiltCapacity]) -> Dataset {
    let mut all_fixed = Vec::new();
    for p in players {
        all_fixed.extend(p.fixed.iter().copied());
    }
    base.apply_poison(&all_fixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::{build_ca_capacity, CaCapacitySpec};
    use msopds_autograd::HvpMode;
    use msopds_recdata::{sample_market, DatasetSpec, DemographicsSpec, Market};
    use rand::SeedableRng;

    fn quick_cfg() -> PlannerConfig {
        PlannerConfig {
            mso: MsoConfig {
                iters: 4,
                cg_iters: 3,
                hvp_mode: HvpMode::Exact,
                ..Default::default()
            },
            pds: PdsConfig { inner_steps: 3, ..Default::default() },
        }
    }

    fn setup(n_opponents: usize) -> (Dataset, Market, PlayerSetup, Vec<PlayerSetup>) {
        let mut data = DatasetSpec::micro().generate(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let market =
            sample_market(&data, &DemographicsSpec::default().scaled(8.0), n_opponents, &mut rng);

        let atk_cap = build_ca_capacity(
            &mut data,
            &market.players[0],
            market.target_item,
            &CaCapacitySpec::promote(3),
        );
        let attacker = PlayerSetup {
            capacity: atk_cap,
            objective: Objective::Comprehensive {
                audience: market.target_audience.clone(),
                target: market.target_item,
                competing: market.competing_items.clone(),
            },
        };
        let opponents: Vec<PlayerSetup> = (0..n_opponents)
            .map(|i| {
                let cap = build_ca_capacity(
                    &mut data,
                    &market.players[1 + i],
                    market.target_item,
                    &CaCapacitySpec::demote(2),
                );
                PlayerSetup {
                    capacity: cap,
                    objective: Objective::Demote {
                        audience: market.target_audience.clone(),
                        target: market.target_item,
                    },
                }
            })
            .collect();
        let planning_data = {
            let caps: Vec<&BuiltCapacity> = std::iter::once(&attacker.capacity)
                .chain(opponents.iter().map(|o| &o.capacity))
                .collect();
            prepare_planning_data(&data, &caps)
        };
        (planning_data, market, attacker, opponents)
    }

    #[test]
    fn bopds_respects_budgets_and_runs() {
        let (data, _, attacker, _) = setup(0);
        let out = plan_bopds(&data, &attacker, &quick_cfg());
        assert_eq!(out.selected.len(), attacker.capacity.importance.total_budget());
        assert_eq!(out.diagnostics.leader_loss.len(), 4);
        assert!(out.importance.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn bopds_moves_importance_values() {
        let (data, _, attacker, _) = setup(0);
        let out = plan_bopds(&data, &attacker, &quick_cfg());
        let moved = out.importance.iter().filter(|v| v.abs() > 1e-15).count();
        assert!(moved > 0, "no importance value moved");
    }

    #[test]
    fn msopds_single_opponent_runs_and_selects() {
        let (data, _, attacker, opponents) = setup(1);
        let out = plan_msopds(&data, &attacker, &opponents, &quick_cfg());
        assert_eq!(out.selected.len(), attacker.capacity.importance.total_budget());
        assert_eq!(out.opponent_importance.len(), 1);
        // Opponent importance should also have moved (eq. 9 updates).
        assert!(out.opponent_importance[0].iter().any(|v| v.abs() > 1e-15));
    }

    #[test]
    fn msopds_differs_from_bopds() {
        // Anticipating an opponent must change the attacker's priorities.
        let (data, _, attacker, opponents) = setup(1);
        let with_opp = plan_msopds(&data, &attacker, &opponents, &quick_cfg());
        let without = plan_bopds(&data, &attacker, &quick_cfg());
        assert_ne!(with_opp.importance, without.importance);
    }

    #[test]
    fn full_plan_includes_fixed_fake_ratings() {
        let (data, _, attacker, _) = setup(0);
        let out = plan_bopds(&data, &attacker, &quick_cfg());
        assert_eq!(out.full_plan.len(), attacker.capacity.fixed.len() + out.selected.len());
    }

    #[test]
    fn two_opponents_supported() {
        let (data, _, attacker, opponents) = setup(2);
        let cfg = PlannerConfig {
            mso: MsoConfig { iters: 2, cg_iters: 2, ..Default::default() },
            pds: PdsConfig { inner_steps: 2, ..Default::default() },
        };
        let out = plan_msopds(&data, &attacker, &opponents, &cfg);
        assert_eq!(out.opponent_importance.len(), 2);
        assert_eq!(out.diagnostics.follower_loss[0].len(), 2);
    }
}
