//! Capacity-set construction (eqs. 4 and 6, §VI-A.3).
//!
//! A built capacity consists of *fixed* actions (the unconditional fake-user
//! 5-star ratings on the target item) plus an [`ImportanceVector`] over the
//! optimizable candidates with per-type budget groups:
//!
//! * hire `N` customer-base users to rate the target with r̂ (one group);
//! * connect each fake account to `N` customer-base users (one group per
//!   fake, matching "connects *each* fake account to N real users");
//! * connect `N` company products to the target on the item graph (one group);
//!
//! with `N = ⌈b · 5% · |𝒰_base|⌉` — our reading of the paper's
//! `N = b × 5%|𝒰|` budget that keeps `N ≤ |𝒰_base|` for all `b ∈ [2,5]`
//! (the literal reading exceeds the 100-user customer base; see DESIGN.md).

use msopds_recdata::{Dataset, PlayerAssets, PoisonAction};
use serde::{Deserialize, Serialize};

use crate::plan::{BudgetGroup, ImportanceVector};

/// Which poisoning-action categories a player may use. The full set is the
/// MCA default; subsets drive the Fig. 8 and Fig. 9 ablations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionToggles {
    /// Hired real-user ratings on the target item.
    pub hired_ratings: bool,
    /// Social edges between customer-base users and fake accounts.
    pub social_edges: bool,
    /// Item-graph edges from company products to the target item.
    pub item_edges: bool,
    /// Inject fake accounts (with their unconditional target ratings).
    pub fake_users: bool,
}

impl ActionToggles {
    /// Everything enabled (the MCA capacity 𝒞_CA).
    pub fn all() -> Self {
        Self { hired_ratings: true, social_edges: true, item_edges: true, fake_users: true }
    }

    /// Ratings only (Fig. 8 "MSOPDS-ratings only").
    pub fn ratings_only() -> Self {
        Self { hired_ratings: true, social_edges: false, item_edges: false, fake_users: true }
    }

    /// Ratings + item-graph edges (Fig. 8 "ratings+item link").
    pub fn ratings_and_item() -> Self {
        Self { hired_ratings: true, social_edges: false, item_edges: true, fake_users: true }
    }

    /// Ratings + social edges (Fig. 8 "ratings+user link").
    pub fn ratings_and_social() -> Self {
        Self { hired_ratings: true, social_edges: true, item_edges: false, fake_users: true }
    }

    /// Real users only — no fake accounts (Fig. 9 "MSOPDS-real"; item edges
    /// excluded per the figure's protocol).
    pub fn real_only() -> Self {
        Self { hired_ratings: true, social_edges: false, item_edges: false, fake_users: false }
    }

    /// Fake accounts only — no hired real users (Fig. 9 "MSOPDS-fake").
    pub fn fake_only() -> Self {
        Self { hired_ratings: false, social_edges: true, item_edges: false, fake_users: true }
    }

    /// Full capacity minus item-graph edges (Fig. 9 "MSOPDS" row).
    pub fn no_item_edges() -> Self {
        Self { hired_ratings: true, social_edges: true, item_edges: false, fake_users: true }
    }
}

/// Parameters of a Comprehensive Attack capacity (eq. 6).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CaCapacitySpec {
    /// The common budget parameter `b` (§VI-A.3, default 5).
    pub b: usize,
    /// Preset rating r̂ (5 to promote, 1 to demote).
    pub rhat: f64,
    /// Fake accounts per budget unit, as a fraction of the real user count
    /// (paper: fakes = b % of |𝒰| → 0.01 per unit).
    pub fake_frac_per_b: f64,
    /// Hire budget per unit, as a fraction of the customer base
    /// (N = ⌈b · this · |𝒰_base|⌉; paper reading: 0.05).
    pub hire_frac_per_b: f64,
    /// Enabled action categories.
    pub toggles: ActionToggles,
}

impl CaCapacitySpec {
    /// The §VI-A.3 defaults at budget `b`, promoting with r̂ = 5.
    pub fn promote(b: usize) -> Self {
        Self {
            b,
            rhat: 5.0,
            fake_frac_per_b: 0.01,
            hire_frac_per_b: 0.05,
            toggles: ActionToggles::all(),
        }
    }

    /// The opponent's demotion capacity (§VI-A.4): hired 1-star ratings only.
    pub fn demote(b: usize) -> Self {
        Self {
            b,
            rhat: 1.0,
            fake_frac_per_b: 0.01,
            hire_frac_per_b: 0.05,
            toggles: ActionToggles {
                hired_ratings: true,
                social_edges: false,
                item_edges: false,
                fake_users: false,
            },
        }
    }

    /// The per-type selection budget `N` for a given customer-base size.
    pub fn hire_budget(&self, base_size: usize) -> usize {
        ((self.b as f64 * self.hire_frac_per_b * base_size as f64).ceil() as usize)
            .clamp(1, base_size.max(1))
    }

    /// Number of fake accounts to inject for `n_real` real users.
    pub fn fake_count(&self, n_real: usize) -> usize {
        if !self.toggles.fake_users {
            return 0;
        }
        ((self.b as f64 * self.fake_frac_per_b * n_real as f64).ceil() as usize).max(1)
    }
}

/// A constructed capacity: injected fakes, fixed actions, and the importance
/// vector over optimizable candidates.
#[derive(Clone, Debug)]
pub struct BuiltCapacity {
    /// Ids of the fake accounts injected into the dataset for this player.
    pub fake_users: Vec<usize>,
    /// Unconditional actions (fake 5-star ratings on the target) that are part
    /// of the plan regardless of optimization.
    pub fixed: Vec<PoisonAction>,
    /// The optimizable candidates with budget groups.
    pub importance: ImportanceVector,
}

impl BuiltCapacity {
    /// The full plan under the current priorities: fixed + selected actions.
    pub fn full_plan(&self) -> Vec<PoisonAction> {
        let mut plan = self.fixed.clone();
        plan.extend(self.importance.extract_plan());
        plan
    }
}

/// Builds the Comprehensive Attack capacity 𝒞_CA (eq. 6) for one player,
/// injecting the player's fake accounts into `data`.
///
/// # Panics
/// Panics if the assets reference out-of-range users/items.
pub fn build_ca_capacity(
    data: &mut Dataset,
    assets: &PlayerAssets,
    target_item: usize,
    spec: &CaCapacitySpec,
) -> BuiltCapacity {
    let n_real = data.n_real_users;
    let fake_users = data.add_fake_users(spec.fake_count(n_real));

    // Fixed: every fake account gives the preset rating to the target.
    let fixed: Vec<PoisonAction> = fake_users
        .iter()
        .map(|&f| PoisonAction::Rating {
            user: f as u32,
            item: target_item as u32,
            value: spec.rhat,
        })
        .collect();

    let n = spec.hire_budget(assets.customer_base.len());
    let mut candidates = Vec::new();
    let mut groups = Vec::new();

    if spec.toggles.hired_ratings {
        let start = candidates.len();
        for &u in &assets.customer_base {
            candidates.push(PoisonAction::Rating {
                user: u as u32,
                item: target_item as u32,
                value: spec.rhat,
            });
        }
        let indices: Vec<usize> = (start..candidates.len()).collect();
        let take = n.min(indices.len());
        groups.push(BudgetGroup::new("hired-ratings", indices, take));
    }

    if spec.toggles.social_edges {
        for &f in &fake_users {
            let start = candidates.len();
            for &u in &assets.customer_base {
                candidates.push(PoisonAction::SocialEdge { a: u as u32, b: f as u32 });
            }
            let indices: Vec<usize> = (start..candidates.len()).collect();
            let take = n.min(indices.len());
            groups.push(BudgetGroup::new(format!("social-fake-{f}"), indices, take));
        }
    }

    if spec.toggles.item_edges {
        let start = candidates.len();
        for &i in &assets.company_products {
            if i != target_item && !data.item_graph.has_edge(i, target_item) {
                candidates.push(PoisonAction::ItemEdge { a: i as u32, b: target_item as u32 });
            }
        }
        let indices: Vec<usize> = (start..candidates.len()).collect();
        let take = n.min(indices.len());
        groups.push(BudgetGroup::new("item-edges", indices, take));
    }

    BuiltCapacity { fake_users, fixed, importance: ImportanceVector::new(candidates, groups) }
}

/// Parameters of an Injection Attack capacity (eq. 4), used by the RevAdv
/// baseline's bi-level optimization.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct IaCapacitySpec {
    /// Budget parameter `b` (fakes = b % of |𝒰|).
    pub b: usize,
    /// Filler items each fake user rates (paper: 100).
    pub fillers_per_fake: usize,
    /// Candidate filler pool size per fake (bounds the importance vector).
    pub candidate_pool: usize,
    /// Preset rating for the target item.
    pub target_rating: f64,
}

impl IaCapacitySpec {
    /// Paper defaults at budget `b`, scaled-down pool sizes.
    pub fn new(b: usize, fillers_per_fake: usize, candidate_pool: usize) -> Self {
        Self { b, fillers_per_fake, candidate_pool, target_rating: 5.0 }
    }
}

/// Builds the Injection Attack capacity 𝒞_IA (eq. 4): injects fake users
/// (each fixed to 5-star the target) and candidate filler ratings drawn from
/// a random item pool, one budget group per fake account.
pub fn build_ia_capacity<R: rand::Rng>(
    data: &mut Dataset,
    target_item: usize,
    spec: &IaCapacitySpec,
    rng: &mut R,
) -> BuiltCapacity {
    use rand::seq::SliceRandom;
    let n_real = data.n_real_users;
    let n_fake = ((spec.b as f64 / 100.0 * n_real as f64).ceil() as usize).max(1);
    let fake_users = data.add_fake_users(n_fake);

    let fixed: Vec<PoisonAction> = fake_users
        .iter()
        .map(|&f| PoisonAction::Rating {
            user: f as u32,
            item: target_item as u32,
            value: spec.target_rating,
        })
        .collect();

    let items: Vec<usize> = (0..data.n_items()).filter(|&i| i != target_item).collect();
    let mut candidates = Vec::new();
    let mut groups = Vec::new();
    for &f in &fake_users {
        let start = candidates.len();
        let pool: Vec<usize> =
            items.choose_multiple(rng, spec.candidate_pool.min(items.len())).copied().collect();
        for i in pool {
            candidates.push(PoisonAction::Rating {
                user: f as u32,
                item: i as u32,
                value: spec.target_rating,
            });
        }
        let indices: Vec<usize> = (start..candidates.len()).collect();
        let take = spec.fillers_per_fake.min(indices.len());
        groups.push(BudgetGroup::new(format!("fillers-fake-{f}"), indices, take));
    }

    BuiltCapacity { fake_users, fixed, importance: ImportanceVector::new(candidates, groups) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msopds_recdata::{sample_market, DatasetSpec, DemographicsSpec};
    use rand::SeedableRng;

    fn setup() -> (Dataset, msopds_recdata::Market) {
        let data = DatasetSpec::micro().generate(1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let market = sample_market(&data, &DemographicsSpec::default().scaled(6.0), 1, &mut rng);
        (data, market)
    }

    #[test]
    fn ca_capacity_has_three_action_types() {
        let (mut data, market) = setup();
        let spec = CaCapacitySpec::promote(5);
        let cap = build_ca_capacity(&mut data, &market.players[0], market.target_item, &spec);
        let kinds: std::collections::HashSet<_> =
            cap.importance.candidates.iter().map(|a| a.kind()).collect();
        assert_eq!(kinds.len(), 3, "expected all three action kinds, got {kinds:?}");
        assert!(!cap.fixed.is_empty());
        assert!(!cap.fake_users.is_empty());
    }

    #[test]
    fn fake_users_were_injected() {
        let (mut data, market) = setup();
        let before = data.n_users();
        let spec = CaCapacitySpec::promote(3);
        let cap = build_ca_capacity(&mut data, &market.players[0], market.target_item, &spec);
        assert_eq!(data.n_users(), before + cap.fake_users.len());
        assert!(cap.fake_users.iter().all(|&f| data.is_fake(f)));
    }

    #[test]
    fn budget_scales_with_b() {
        let spec2 = CaCapacitySpec::promote(2);
        let spec5 = CaCapacitySpec::promote(5);
        assert!(spec5.hire_budget(100) > spec2.hire_budget(100));
        assert_eq!(spec5.hire_budget(100), 25);
        assert_eq!(spec2.hire_budget(100), 10);
        // Budget never exceeds the base size and stays at least 1.
        assert!(spec5.hire_budget(3) <= 3);
        assert_eq!(spec5.hire_budget(3), 1); // ⌈5·0.05·3⌉ = 1
        assert!(CaCapacitySpec::promote(1).hire_budget(1) >= 1);
    }

    #[test]
    fn demote_spec_is_ratings_only_with_one_star() {
        let (mut data, market) = setup();
        let spec = CaCapacitySpec::demote(2);
        let cap = build_ca_capacity(&mut data, &market.players[1], market.target_item, &spec);
        assert!(cap.fake_users.is_empty());
        assert!(cap.fixed.is_empty());
        assert!(cap.importance.candidates.iter().all(|a| matches!(
            a,
            PoisonAction::Rating { value, .. } if *value == 1.0
        )));
    }

    #[test]
    fn social_edges_form_one_group_per_fake() {
        let (mut data, market) = setup();
        let spec = CaCapacitySpec::promote(4);
        let cap = build_ca_capacity(&mut data, &market.players[0], market.target_item, &spec);
        let social_groups =
            cap.importance.groups.iter().filter(|g| g.label.starts_with("social-fake")).count();
        assert_eq!(social_groups, cap.fake_users.len());
    }

    #[test]
    fn toggles_filter_candidate_kinds() {
        let (mut data, market) = setup();
        let spec =
            CaCapacitySpec { toggles: ActionToggles::ratings_only(), ..CaCapacitySpec::promote(5) };
        let cap = build_ca_capacity(&mut data, &market.players[0], market.target_item, &spec);
        assert!(cap
            .importance
            .candidates
            .iter()
            .all(|a| a.kind() == msopds_recdata::ActionKind::Rating));
        // fake users still injected under ratings_only (their fixed ratings count).
        assert!(!cap.fake_users.is_empty());
    }

    #[test]
    fn real_only_excludes_fakes() {
        let (mut data, market) = setup();
        let spec =
            CaCapacitySpec { toggles: ActionToggles::real_only(), ..CaCapacitySpec::promote(5) };
        let before = data.n_users();
        let cap = build_ca_capacity(&mut data, &market.players[0], market.target_item, &spec);
        assert_eq!(data.n_users(), before);
        assert!(cap.fake_users.is_empty());
        assert!(cap.fixed.is_empty());
    }

    #[test]
    fn ia_capacity_groups_per_fake() {
        let (mut data, market) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let spec = IaCapacitySpec::new(5, 10, 20);
        let cap = build_ia_capacity(&mut data, market.target_item, &spec, &mut rng);
        assert_eq!(cap.importance.groups.len(), cap.fake_users.len());
        for g in &cap.importance.groups {
            assert_eq!(g.take, 10);
            assert_eq!(g.indices.len(), 20);
        }
        // Fixed 5-star target ratings, one per fake.
        assert_eq!(cap.fixed.len(), cap.fake_users.len());
    }

    #[test]
    fn full_plan_is_fixed_plus_selected() {
        let (mut data, market) = setup();
        let spec = CaCapacitySpec::promote(2);
        let cap = build_ca_capacity(&mut data, &market.players[0], market.target_item, &spec);
        let plan = cap.full_plan();
        assert_eq!(plan.len(), cap.fixed.len() + cap.importance.total_budget());
    }
}
