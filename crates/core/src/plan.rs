//! Importance vectors and budget-constrained binarization (§IV-A, Fig. 2).
//!
//! The importance vector **X** ∈ ℝ^{|𝒞|} holds a priority per candidate
//! poisoning action. A poisoning plan is extracted by *binarizing*: within
//! each budget group, the top-`take` entries become 1 (selected) and the rest
//! 0. Budget groups encode the per-type constraints of §VI-A.3 (e.g. "connect
//! each fake account to N real users" is one group per fake account).

use msopds_autograd::Tensor;
use msopds_recdata::PoisonAction;
use serde::{Deserialize, Serialize};

/// One budget constraint: select at most `take` of the listed candidates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BudgetGroup {
    /// Human-readable label (diagnostics only).
    pub label: String,
    /// Indices into the candidate list / importance vector.
    pub indices: Vec<usize>,
    /// Number of actions to select from this group.
    pub take: usize,
}

impl BudgetGroup {
    /// A new group selecting `take` of `indices`.
    pub fn new(label: impl Into<String>, indices: Vec<usize>, take: usize) -> Self {
        Self { label: label.into(), indices, take }
    }
}

/// The continuous importance vector of one player plus its capacity metadata.
#[derive(Clone, Debug)]
pub struct ImportanceVector {
    /// Candidate actions, aligned with `values`.
    pub candidates: Vec<PoisonAction>,
    /// Current priorities.
    pub values: Vec<f64>,
    /// Budget groups (must reference disjoint index sets).
    pub groups: Vec<BudgetGroup>,
}

impl ImportanceVector {
    /// Initializes priorities to zero.
    ///
    /// # Panics
    /// Panics if any group index is out of range, groups overlap, or a budget
    /// exceeds its group size.
    pub fn new(candidates: Vec<PoisonAction>, groups: Vec<BudgetGroup>) -> Self {
        let n = candidates.len();
        let mut seen = vec![false; n];
        for g in &groups {
            assert!(g.take <= g.indices.len(), "group '{}' budget exceeds its size", g.label);
            for &i in &g.indices {
                assert!(i < n, "group '{}' index {i} out of range", g.label);
                assert!(!seen[i], "candidate {i} appears in two budget groups");
                seen[i] = true;
            }
        }
        Self { candidates, values: vec![0.0; n], groups }
    }

    /// Number of candidate actions.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True when there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Total budget across groups (the plan size after binarization).
    pub fn total_budget(&self) -> usize {
        self.groups.iter().map(|g| g.take).sum()
    }

    /// Binarizes the current priorities: within each group the top-`take`
    /// values map to 1, everything else (including ungrouped candidates) to 0.
    ///
    /// Ties are broken toward the lower index, which makes the extraction
    /// deterministic.
    pub fn binarize(&self) -> Tensor {
        self.binarize_values(&self.values)
    }

    /// Binarizes an external priority vector against this capacity's budget
    /// groups (used by the MSO loop, which owns the evolving vector).
    ///
    /// # Panics
    /// Panics if `values` has the wrong length or contains non-finite entries.
    pub fn binarize_values(&self, values: &[f64]) -> Tensor {
        assert_eq!(values.len(), self.values.len(), "priority vector length mismatch");
        let mut out = vec![0.0; values.len()];
        for g in &self.groups {
            let mut order: Vec<usize> = g.indices.clone();
            order.sort_by(|&a, &b| {
                values[b].partial_cmp(&values[a]).expect("finite priorities").then(a.cmp(&b))
            });
            for &i in order.iter().take(g.take) {
                out[i] = 1.0;
            }
        }
        Tensor::from_vec(out, &[values.len()])
    }

    /// The selected actions under the current priorities.
    pub fn extract_plan(&self) -> Vec<PoisonAction> {
        let xhat = self.binarize();
        self.candidates
            .iter()
            .zip(xhat.data())
            .filter_map(|(&a, &x)| (x > 0.5).then_some(a))
            .collect()
    }

    /// Applies a gradient-descent update `X ← X − η·g`.
    ///
    /// # Panics
    /// Panics if the gradient length disagrees.
    pub fn apply_update(&mut self, grad: &Tensor, eta: f64) {
        assert_eq!(grad.numel(), self.values.len(), "gradient length mismatch");
        for (v, g) in self.values.iter_mut().zip(grad.data()) {
            *v -= eta * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rating(u: u32) -> PoisonAction {
        PoisonAction::Rating { user: u, item: 0, value: 5.0 }
    }

    fn vector_with(values: Vec<f64>, groups: Vec<BudgetGroup>) -> ImportanceVector {
        let candidates = (0..values.len() as u32).map(rating).collect();
        let mut iv = ImportanceVector::new(candidates, groups);
        iv.values = values;
        iv
    }

    #[test]
    fn binarize_selects_top_per_group() {
        let iv = vector_with(
            vec![0.1, 0.9, 0.5, 0.2, 0.8],
            vec![BudgetGroup::new("a", vec![0, 1, 2], 2), BudgetGroup::new("b", vec![3, 4], 1)],
        );
        assert_eq!(iv.binarize().to_vec(), vec![0.0, 1.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn ties_break_toward_lower_index() {
        let iv = vector_with(vec![0.5, 0.5, 0.5], vec![BudgetGroup::new("g", vec![0, 1, 2], 1)]);
        assert_eq!(iv.binarize().to_vec(), vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn ungrouped_candidates_never_selected() {
        let iv = vector_with(vec![9.0, 0.1], vec![BudgetGroup::new("g", vec![1], 1)]);
        assert_eq!(iv.binarize().to_vec(), vec![0.0, 1.0]);
    }

    #[test]
    fn extract_plan_matches_binarization() {
        let iv = vector_with(vec![0.3, 0.7], vec![BudgetGroup::new("g", vec![0, 1], 1)]);
        let plan = iv.extract_plan();
        assert_eq!(plan, vec![rating(1)]);
        assert_eq!(iv.total_budget(), 1);
    }

    #[test]
    fn update_moves_against_gradient() {
        let mut iv = vector_with(vec![0.0, 0.0], vec![BudgetGroup::new("g", vec![0, 1], 1)]);
        iv.apply_update(&Tensor::from_vec(vec![1.0, -1.0], &[2]), 0.1);
        assert_eq!(iv.values, vec![-0.1, 0.1]);
        assert_eq!(iv.extract_plan(), vec![rating(1)]);
    }

    #[test]
    #[should_panic(expected = "two budget groups")]
    fn overlapping_groups_panic() {
        let _ = vector_with(
            vec![0.0, 0.0],
            vec![BudgetGroup::new("a", vec![0], 1), BudgetGroup::new("b", vec![0, 1], 1)],
        );
    }

    #[test]
    #[should_panic(expected = "budget exceeds")]
    fn oversized_budget_panics() {
        let _ = vector_with(vec![0.0], vec![BudgetGroup::new("g", vec![0], 2)]);
    }

    #[test]
    fn binarize_is_idempotent_under_repeat() {
        let iv = vector_with(vec![0.4, 0.2, 0.6], vec![BudgetGroup::new("g", vec![0, 1, 2], 2)]);
        assert_eq!(iv.binarize().to_vec(), iv.binarize().to_vec());
    }
}
