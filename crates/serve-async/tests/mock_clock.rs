//! Deterministic-time batcher tests: every flush path of the [`BatchQueue`]
//! core driven by a [`MockClock`], with **zero real sleeps** — time only
//! moves when a test advances it, so these can never be timing-flaky in CI
//! (ISSUE 7 satellite: deadline-flush, max-batch-flush, flush-on-shutdown).

use std::time::Duration;

use msopds_serve_async::{BatchQueue, BatcherConfig, Clock, FlushReason, MockClock};

fn cfg(deadline_us: u64, max_batch: usize, queue_cap: usize) -> BatcherConfig {
    BatcherConfig { deadline: Duration::from_micros(deadline_us), max_batch, queue_cap }
}

#[test]
fn deadline_flush_fires_exactly_at_the_deadline() {
    let clock = MockClock::new();
    let mut q: BatchQueue<usize> = BatchQueue::new(cfg(200, 1024, 64));
    q.offer(3, 0, clock.now_ns()).unwrap();

    // One tick before the deadline: nothing is due.
    clock.advance_us(199);
    clock.advance(999);
    assert!(!q.due(clock.now_ns(), false));
    assert!(q.take(clock.now_ns(), false).is_none());

    // The final nanosecond arrives: the lone query flushes as Deadline.
    clock.advance(1);
    assert_eq!(q.next_deadline_ns(), Some(200_000));
    let (batch, reason) = q.take(clock.now_ns(), false).expect("due at the deadline");
    assert_eq!(reason, FlushReason::Deadline);
    assert_eq!(batch.len(), 1);
    assert_eq!(batch[0].user, 3);
    assert_eq!(batch[0].enqueued_ns, 0);
    assert!(q.is_empty());
    assert_eq!(q.counters().flush_deadline, 1);
}

#[test]
fn deadline_is_armed_by_the_oldest_query_not_the_newest() {
    let clock = MockClock::new();
    let mut q: BatchQueue<usize> = BatchQueue::new(cfg(200, 1024, 64));
    q.offer(0, 0, clock.now_ns()).unwrap();
    // A stream of later arrivals must not push the window forward.
    for i in 1..5usize {
        clock.advance_us(49);
        q.offer(i, i, clock.now_ns()).unwrap();
    }
    // t = 196µs: the newest query is fresh, but the front's clock rules.
    assert_eq!(q.next_deadline_ns(), Some(200_000), "front query owns the deadline");
    assert!(!q.due(clock.now_ns(), false));
    clock.advance_us(4);
    let (batch, reason) = q.take(clock.now_ns(), false).expect("oldest query is 200µs old");
    assert_eq!(reason, FlushReason::Deadline);
    assert_eq!(batch.len(), 5, "a deadline flush takes everything pending");
}

#[test]
fn max_batch_flush_fires_without_any_time_passing() {
    let clock = MockClock::new();
    let mut q: BatchQueue<usize> = BatchQueue::new(cfg(200, 4, 64));
    for i in 0..3usize {
        q.offer(i, i, clock.now_ns()).unwrap();
        assert!(!q.due(clock.now_ns(), false), "below max_batch, before deadline");
    }
    q.offer(3, 3, clock.now_ns()).unwrap();
    assert!(q.due(clock.now_ns(), false));
    assert_eq!(q.next_deadline_ns(), None, "a full queue needs no timer");
    let (batch, reason) = q.take(clock.now_ns(), false).expect("full");
    assert_eq!(reason, FlushReason::Full);
    assert_eq!(batch.iter().map(|p| p.user).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    assert_eq!(q.counters().flush_full, 1);
}

#[test]
fn full_flush_leaves_overflow_with_its_own_deadline() {
    let clock = MockClock::new();
    let mut q: BatchQueue<usize> = BatchQueue::new(cfg(200, 3, 64));
    for i in 0..3usize {
        q.offer(i, i, clock.now_ns()).unwrap();
        clock.advance_us(10);
    }
    // t = 30µs: a 4th query arrives on top of a full flush's worth.
    q.offer(3, 3, clock.now_ns()).unwrap();
    let (batch, reason) = q.take(clock.now_ns(), false).expect("full");
    assert_eq!(reason, FlushReason::Full);
    assert_eq!(batch.len(), 3);
    // The remainder re-arms from ITS admission time (30µs), not the flushed
    // front's (0µs): due at 230µs, not 200µs.
    assert_eq!(q.len(), 1);
    assert_eq!(q.next_deadline_ns(), Some(230_000));
    clock.advance_us(199);
    assert!(q.take(clock.now_ns(), false).is_none());
    clock.advance_us(1);
    let (rest, reason) = q.take(clock.now_ns(), false).expect("overflow deadline");
    assert_eq!(reason, FlushReason::Deadline);
    assert_eq!(rest[0].user, 3);
}

#[test]
fn shutdown_flushes_immediately_before_any_deadline() {
    let clock = MockClock::new();
    let mut q: BatchQueue<usize> = BatchQueue::new(cfg(200, 1024, 64));
    q.offer(7, 0, clock.now_ns()).unwrap();
    clock.advance_us(1); // far from the 200µs deadline
    q.offer(8, 1, clock.now_ns()).unwrap();
    assert!(!q.due(clock.now_ns(), false));
    let (batch, reason) = q.take(clock.now_ns(), true).expect("shutdown drains");
    assert_eq!(reason, FlushReason::Shutdown);
    assert_eq!(batch.len(), 2);
    assert!(q.is_empty());
    assert!(q.take(clock.now_ns(), true).is_none(), "nothing left to drain");
    assert_eq!(q.counters().flush_shutdown, 1);
}

#[test]
fn shutdown_drains_a_long_queue_in_max_batch_chunks() {
    let clock = MockClock::new();
    let mut q: BatchQueue<usize> = BatchQueue::new(cfg(200, 4, 64));
    for i in 0..10usize {
        q.offer(i, i, clock.now_ns()).unwrap();
        // Consume the Full flushes as the threaded dispatcher would.
        if let Some((batch, reason)) = q.take(clock.now_ns(), false) {
            assert_eq!(reason, FlushReason::Full);
            assert_eq!(batch.len(), 4);
        }
    }
    assert_eq!(q.len(), 2);
    let (batch, reason) = q.take(clock.now_ns(), true).expect("shutdown remainder");
    assert_eq!(reason, FlushReason::Shutdown);
    assert_eq!(batch.iter().map(|p| p.user).collect::<Vec<_>>(), vec![8, 9]);
    let c = q.counters();
    assert_eq!((c.flush_full, c.flush_shutdown, c.batches), (2, 1, 3));
}

#[test]
fn deadline_rearms_after_the_queue_drains() {
    let clock = MockClock::new();
    let mut q: BatchQueue<usize> = BatchQueue::new(cfg(200, 1024, 64));
    q.offer(0, 0, clock.now_ns()).unwrap();
    clock.advance_us(200);
    q.take(clock.now_ns(), false).expect("first deadline flush");
    assert_eq!(q.next_deadline_ns(), None, "empty queue holds no timer");

    clock.advance_us(1_000);
    q.offer(1, 1, clock.now_ns()).unwrap();
    assert_eq!(q.next_deadline_ns(), Some(1_400_000), "fresh deadline from the new arrival");
    clock.advance_us(200);
    let (batch, reason) = q.take(clock.now_ns(), false).expect("second deadline flush");
    assert_eq!(reason, FlushReason::Deadline);
    assert_eq!(batch[0].user, 1);
}

#[test]
fn exact_admission_accounting_at_the_cap() {
    let clock = MockClock::new();
    let mut q: BatchQueue<usize> = BatchQueue::new(cfg(200, 1024, 8));
    let mut rejected_tags = Vec::new();
    for i in 0..11usize {
        if let Err(tag) = q.offer(i, i, clock.now_ns()) {
            rejected_tags.push(tag);
        }
    }
    let c = q.counters();
    assert_eq!((c.offered, c.accepted, c.rejected), (11, 8, 3));
    assert_eq!(rejected_tags, vec![8, 9, 10], "exactly the overflow offers, in order");
    assert_eq!(c.peak_depth, 8);
    // Draining frees capacity: the next offer is admitted again.
    q.take(clock.now_ns(), true).expect("drain");
    assert!(q.offer(99, 99, clock.now_ns()).is_ok());
    let c = q.counters();
    assert_eq!((c.offered, c.accepted, c.rejected), (12, 9, 3));
    assert_eq!(c.offered, c.accepted + c.rejected, "books always balance");
}
