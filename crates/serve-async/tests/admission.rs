//! Admission-control accounting (ISSUE 7 satellite): at queue-cap
//! saturation every *accepted* request still completes, the rejected count
//! is exact, and after a drain the books balance to the query:
//! `engine hits + engine misses + rejected == offered` and
//! `completed == accepted`.

mod common;

use std::sync::Arc;
use std::time::Duration;

use common::{lcg_model, splitmix};
use msopds_serve_async::{
    AsyncServeConfig, AsyncServer, BatcherConfig, ScorePrecision, ScoredItem, ServeAsyncError,
    ServeConfig, ServingModel, SystemClock, Ticket,
};

const K: usize = 4;
const N_USERS: usize = 30;

fn server(queue_cap: usize, max_batch: usize, precision: ScorePrecision) -> AsyncServer {
    AsyncServer::start_with_clock(
        Arc::new(lcg_model(N_USERS, 50, 3, 1.0)),
        AsyncServeConfig {
            batcher: BatcherConfig { deadline: Duration::from_micros(100), max_batch, queue_cap },
            serve: ServeConfig { top_k: K, cache_capacity: 8, precision },
        },
        Arc::new(SystemClock::new()),
    )
}

fn refs(model: &ServingModel, precision: ScorePrecision) -> Vec<Vec<ScoredItem>> {
    let all: Vec<usize> = (0..model.n_users()).collect();
    model.top_k_batch_with(&all, K, precision)
}

fn bitwise_eq(got: &[ScoredItem], want: &[ScoredItem]) -> bool {
    got.len() == want.len()
        && got
            .iter()
            .zip(want)
            .all(|(g, w)| g.item == w.item && g.score.to_bits() == w.score.to_bits())
}

#[test]
fn saturation_sheds_exactly_the_overflow_and_serves_the_rest() {
    for precision in [ScorePrecision::Exact64, ScorePrecision::Fast32] {
        let (queue_cap, overflow) = (16usize, 5usize);
        let srv = server(queue_cap, 8, precision);
        let want = refs(&lcg_model(N_USERS, 50, 3, 1.0), precision);

        // Hold the dispatcher so the queue provably reaches the cap — without
        // the pause, a fast dispatcher could drain mid-fill and the rejection
        // count would be timing-dependent instead of exact.
        srv.pause();
        let mut tickets: Vec<(usize, Ticket)> = Vec::new();
        let mut rejected = 0u64;
        for i in 0..queue_cap + overflow {
            let u = i % N_USERS;
            match srv.submit(u) {
                Ok(t) => tickets.push((u, t)),
                Err(e) => {
                    assert_eq!(e, ServeAsyncError::Overloaded { queue_cap });
                    rejected += 1;
                }
            }
        }
        assert_eq!(tickets.len(), queue_cap, "exactly the cap admitted");
        assert_eq!(rejected, overflow as u64, "exactly the overflow shed");
        assert!(tickets.iter().all(|(_, t)| t.try_take().is_none()), "paused: nothing served yet");

        srv.resume();
        for (u, ticket) in &tickets {
            assert!(
                bitwise_eq(&ticket.wait().expect("served"), &want[*u]),
                "accepted answer for user {u}"
            );
        }
        let stats = srv.shutdown();
        assert_eq!(stats.batcher.offered, (queue_cap + overflow) as u64);
        assert_eq!(stats.batcher.accepted, queue_cap as u64);
        assert_eq!(stats.batcher.rejected, overflow as u64);
        assert_eq!(stats.completed, stats.batcher.accepted, "every accepted query completed");
        assert_eq!(
            stats.engine.cache_hits + stats.engine.cache_misses + stats.batcher.rejected,
            stats.batcher.offered,
            "hits + misses + rejected == offered"
        );
        assert_eq!(stats.batcher.peak_depth, queue_cap as u64);
        assert_eq!(stats.latency.count, stats.completed);
    }
}

#[test]
fn concurrent_submitters_keep_the_books_balanced() {
    let precision = ScorePrecision::Exact64;
    // A deliberately tiny cap under multi-threaded pressure: rejections are
    // expected and must be accounted exactly, never panicked on.
    let srv = server(4, 4, precision);
    let want = refs(&lcg_model(N_USERS, 50, 3, 1.0), precision);

    let (accepted, rejected): (u64, u64) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3u64)
            .map(|t| {
                let srv = &srv;
                let want = &want;
                scope.spawn(move || {
                    let mut state = 0xAD5EEDu64 ^ t;
                    let mut acc = 0u64;
                    let mut rej = 0u64;
                    for _ in 0..100 {
                        let u = (splitmix(&mut state) % N_USERS as u64) as usize;
                        match srv.submit(u) {
                            Ok(ticket) => {
                                acc += 1;
                                assert!(bitwise_eq(&ticket.wait().expect("served"), &want[u]));
                            }
                            Err(ServeAsyncError::Overloaded { queue_cap }) => {
                                assert_eq!(queue_cap, 4);
                                rej += 1;
                                std::thread::yield_now();
                            }
                            Err(e) => panic!("unexpected rejection: {e}"),
                        }
                    }
                    (acc, rej)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("submitter"))
            .fold((0, 0), |(a, r), (ta, tr)| (a + ta, r + tr))
    });

    let stats = srv.shutdown();
    assert_eq!(stats.batcher.offered, 300);
    assert_eq!(stats.batcher.accepted, accepted, "server and client agree on admissions");
    assert_eq!(stats.batcher.rejected, rejected, "server and client agree on sheds");
    assert_eq!(stats.batcher.offered, stats.batcher.accepted + stats.batcher.rejected);
    assert_eq!(stats.completed, stats.batcher.accepted);
    assert_eq!(
        stats.engine.cache_hits + stats.engine.cache_misses + stats.batcher.rejected,
        stats.batcher.offered
    );
}

#[test]
fn unknown_user_is_rejected_at_the_door_without_touching_the_queue() {
    let srv = server(64, 8, ScorePrecision::Exact64);
    assert_eq!(
        srv.submit(N_USERS).err(),
        Some(ServeAsyncError::UnknownUser { user: N_USERS, n_users: N_USERS })
    );
    assert_eq!(
        srv.submit(usize::MAX).err(),
        Some(ServeAsyncError::UnknownUser { user: usize::MAX, n_users: N_USERS })
    );
    let stats = srv.shutdown();
    // Door rejections never enter the batcher's books: an id the model
    // cannot score is a caller bug, not shed load.
    assert_eq!(stats.batcher.offered, 0);
    assert_eq!(stats.batcher.rejected, 0);
    assert_eq!(stats.completed, 0);
}
