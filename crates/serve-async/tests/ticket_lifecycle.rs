//! Ticket lifecycle edges: a [`Ticket`] outlives the server that minted it,
//! and every terminal path — shutdown flush, mid-flight hot-swap, rejected
//! swap, injected dispatch panic — resolves `wait`/`try_take` with an answer
//! or a typed [`TicketError`]. Never a hang, never a poisoned-mutex panic.

mod common;

use std::sync::Arc;
use std::time::Duration;

use common::{lcg_model, lcg_snapshot};
use msopds_serve_async::{
    AsyncServeConfig, AsyncServer, BatcherConfig, ScoredItem, ServeConfig, ServingModel,
    SwapSnapshotError, Ticket,
};

fn cfg(queue_cap: usize) -> AsyncServeConfig {
    AsyncServeConfig {
        batcher: BatcherConfig { deadline: Duration::from_micros(100), max_batch: 64, queue_cap },
        serve: ServeConfig::default(),
    }
}

fn reference(model: &ServingModel, user: usize) -> Vec<ScoredItem> {
    let server = AsyncServer::start(model.clone(), cfg(64));
    let answer = server.submit(user).unwrap().wait().expect("reference serve").to_vec();
    server.shutdown();
    answer
}

fn bitwise_eq(got: &[ScoredItem], want: &[ScoredItem]) -> bool {
    got.len() == want.len()
        && got
            .iter()
            .zip(want)
            .all(|(a, b)| a.item == b.item && a.score.to_bits() == b.score.to_bits())
}

/// Tickets held across `shutdown()` stay readable: the drain flush served
/// them, and both `wait` and `try_take` return the answer afterwards — the
/// ticket's cell is independent of the dead server.
#[test]
fn held_tickets_stay_readable_after_shutdown() {
    let server = AsyncServer::start(lcg_model(64, 48, 8, 1.0), cfg(64));
    server.pause(); // keep them mid-flight until the shutdown flush
    let tickets: Vec<Ticket> = (0..8).map(|u| server.submit(u).unwrap()).collect();
    for t in &tickets {
        assert_eq!(t.try_take(), None, "held queries are still in flight");
    }
    let stats = server.shutdown(); // drain flush serves all 8
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.failed, 0);

    for t in &tickets {
        let via_wait = t.wait().expect("served by the shutdown flush");
        assert!(!via_wait.is_empty());
        let via_take = t.try_take().expect("terminal state persists").expect("same answer");
        assert!(Arc::ptr_eq(&via_wait, &via_take), "both read the same resolved cell");
    }
}

/// A hot-swap landing while queries are held mid-flight: the batch dispatched
/// after the swap is answered by the NEW model, bit-for-bit, and no ticket
/// hangs or fails.
#[test]
fn mid_flight_swap_serves_held_queries_from_the_new_model() {
    let old = lcg_model(64, 48, 8, 1.0);
    let new = lcg_model(64, 48, 8, 3.0); // retrained variant, same shapes
    let want = reference(&new, 7);

    let server = AsyncServer::start(old, cfg(64));
    server.pause();
    let ticket = server.submit(7).unwrap();
    server.swap_model(Arc::new(lcg_model(64, 48, 8, 3.0))).expect("compatible swap");
    server.resume();

    let got = ticket.wait().expect("swap never strands a ticket");
    assert!(bitwise_eq(&got, &want), "mid-flight query must be served by the new model");
    server.shutdown();
}

/// A swap REJECTED mid-flight (fingerprint mismatch) leaves held queries
/// untouched: they resolve against the old model exactly as if the swap
/// never happened.
#[test]
fn rejected_mid_flight_swap_leaves_held_queries_on_the_old_model() {
    let old = lcg_model(64, 48, 8, 1.0);
    let want = reference(&old, 11);

    let server = AsyncServer::start(old, cfg(64));
    server.pause();
    let ticket = server.submit(11).unwrap();
    let alien = lcg_snapshot(64, 48, 8, 3.0, (0xDEAD, 0xBEEF));
    match server.swap_snapshot(&alien) {
        Err(SwapSnapshotError::Rejected(_)) => {}
        other => panic!("fingerprint mismatch must reject: {other:?}"),
    }
    server.resume();

    let got = ticket.wait().expect("rejected swap never strands a ticket");
    assert!(bitwise_eq(&got, &want), "old model keeps serving after a rejected swap");
    server.shutdown();
}

/// `wait` blocks, `try_take` does not: a held query reports `None` from
/// `try_take` while a parked `wait` on another thread resolves the moment
/// the dispatcher runs.
#[test]
fn try_take_is_nonblocking_while_wait_parks() {
    let server = AsyncServer::start(lcg_model(64, 48, 8, 1.0), cfg(64));
    server.pause();
    let ticket = server.submit(3).unwrap();
    assert_eq!(ticket.try_take(), None);

    let waiter = std::thread::spawn(move || ticket.wait().map(|a| a.len()));
    std::thread::sleep(Duration::from_millis(20)); // let the waiter park
    server.resume();
    let n = waiter.join().expect("wait never panics").expect("served");
    assert!(n > 0);
    server.shutdown();
}

/// Injected dispatch-fault drills (`--features fault-injection`): a panic at
/// the `serve_async.batch.take` / `serve_async.engine.call` sites fails
/// exactly the in-flight batch with a typed error — readable before AND
/// after shutdown — and the dispatcher survives to serve the next batch.
/// The `serve_async.swap` site panics the swap caller without touching the
/// dispatcher.
#[cfg(feature = "fault-injection")]
mod injection {
    use super::*;
    use msopds_faultline::{set_plan, FaultPlan};
    use msopds_serve_async::TicketError;
    use std::sync::Mutex;

    static SERIAL: Mutex<()> = Mutex::new(());

    fn arm(plan: &str) {
        set_plan(Some(FaultPlan::parse(plan).expect("valid drill plan")));
    }

    #[test]
    fn dispatch_panic_fails_only_its_batch_and_wait_stays_typed_after_shutdown() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        for site in ["serve_async.batch.take", "serve_async.engine.call"] {
            let server = AsyncServer::start(lcg_model(64, 48, 8, 1.0), cfg(64));
            server.pause();
            let doomed = server.submit(5).unwrap();
            arm(&format!("seed=11;{site}=panic@1"));
            server.resume();
            assert_eq!(
                doomed.wait(),
                Err(TicketError::DispatchFailed),
                "site {site}: the felled batch fails typed, no hang"
            );
            set_plan(None);

            // The dispatcher caught the unwind: the next batch serves.
            let healthy = server.submit(5).unwrap();
            assert!(!healthy.wait().expect("dispatcher survived").is_empty());

            let stats = server.shutdown();
            assert_eq!(stats.failed, 1, "site {site}");
            assert_eq!(stats.completed, 1, "site {site}");
            // Terminal states persist after shutdown — typed, not poisoned.
            assert_eq!(doomed.try_take(), Some(Err(TicketError::DispatchFailed)));
        }
    }

    #[test]
    fn swap_site_panic_hits_the_caller_not_the_dispatcher() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let server = AsyncServer::start(lcg_model(64, 48, 8, 1.0), cfg(64));
        arm("seed=12;serve_async.swap=panic@1");
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = server.swap_model(Arc::new(lcg_model(64, 48, 8, 2.0)));
        }));
        set_plan(None);
        assert!(unwound.is_err(), "the swap site must fire on the calling thread");

        // Serving never noticed: the dispatcher thread was not involved.
        assert!(!server.submit(9).unwrap().wait().expect("unaffected").is_empty());
        let stats = server.shutdown();
        assert_eq!(stats.swaps, 0, "the panicked swap never landed");
    }
}
