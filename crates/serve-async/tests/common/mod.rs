//! Shared fixtures for the serve-async concurrency suites: deterministic
//! LCG-filled serving models small enough to score in microseconds, with
//! controllable fingerprints so hot-swap accept/reject paths are both
//! reachable.

use msopds_autograd::Tensor;
use msopds_recsys::snapshot::{ModelKind, SnapshotHeader};
use msopds_recsys::Backend;
use msopds_serve_async::{ServingModel, Snapshot};

/// A deterministic in-memory snapshot. `scale` mints "retrained" variants
/// (same shapes, same fingerprints, different answers); `fingerprints`
/// controls whether a swap against another fixture is accepted.
pub fn lcg_snapshot(
    n_users: usize,
    n_items: usize,
    d: usize,
    scale: f64,
    fingerprints: (u64, u64),
) -> Snapshot {
    let mut state = 0x2545F4914F6CDD1Du64 ^ scale.to_bits();
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        scale * (((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5)
    };
    let fill =
        |n: usize, next: &mut dyn FnMut() -> f64| -> Vec<f64> { (0..n).map(|_| next()).collect() };
    Snapshot {
        header: SnapshotHeader {
            kind: ModelKind::Mf,
            backend: Backend::Dense,
            seed: 17,
            social_fingerprint: fingerprints.0,
            item_fingerprint: fingerprints.1,
            n_users: n_users as u64,
            n_items: n_items as u64,
            mu: 3.4,
        },
        config_json: String::from("{}"),
        tensors: vec![
            (String::from("p"), Tensor::from_vec(fill(n_users * d, &mut next), &[n_users, d])),
            (String::from("q"), Tensor::from_vec(fill(n_items * d, &mut next), &[n_items, d])),
            (String::from("b_u"), Tensor::from_vec(fill(n_users, &mut next), &[n_users, 1])),
            (String::from("b_i"), Tensor::from_vec(fill(n_items, &mut next), &[n_items, 1])),
        ],
    }
}

/// [`lcg_snapshot`] loaded into a serving model.
pub fn lcg_model(n_users: usize, n_items: usize, d: usize, scale: f64) -> ServingModel {
    ServingModel::from_snapshot(&lcg_snapshot(n_users, n_items, d, scale, (0xFEED, 0xF00D)))
        .expect("valid fixture snapshot")
}

/// splitmix64 — deterministic per-test randomness without a rand dependency.
/// Not every test binary that includes this module draws randomness.
#[allow(dead_code)]
pub fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}
