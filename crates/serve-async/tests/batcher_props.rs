//! The batch-invariance property that makes dynamic batching *correct*, not
//! just fast: for **any** interleaving or partition of a query stream, the
//! batcher's scattered answers are bit-identical to one synchronous
//! `top_k_batch` call over the whole stream — under both scoring kernels.
//!
//! Three layers, from pure to policy-driven:
//!
//! 1. any hand-chosen partition of the stream into batches (random cuts);
//! 2. any arrival *order* (random permutation, answers scattered back by
//!    stream tag);
//! 3. the partitions the real [`BatchQueue`] policy actually produces under
//!    randomized configs and mock-time schedules (deadline flushes, full
//!    flushes, shutdown drains — whatever the drawn schedule triggers).
//!
//! "Bit-identical" is literal: item ids equal and `f64::to_bits` of every
//! score equal, so a `Fast32` kernel answer is compared at full strictness
//! too.

mod common;

use std::time::Duration;

use common::{lcg_model, splitmix};
use msopds_serve_async::{
    BatchQueue, BatcherConfig, Clock, MockClock, ScorePrecision, ScoredItem, ServingModel,
};
use proptest::prelude::*;

const K: usize = 5;
const PRECISIONS: [ScorePrecision; 2] = [ScorePrecision::Exact64, ScorePrecision::Fast32];

/// Panic-free bitwise comparison with a useful failure message.
fn assert_bitwise(got: &[ScoredItem], want: &[ScoredItem], ctx: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len(), "row length: {}", ctx);
    for (g, w) in got.iter().zip(want) {
        prop_assert_eq!(g.item, w.item, "item id: {}", ctx);
        prop_assert_eq!(
            g.score.to_bits(),
            w.score.to_bits(),
            "score bits for item {}: {}",
            g.item,
            ctx
        );
    }
    Ok(())
}

/// The deterministic query stream for a case: `len` users drawn from the
/// model's universe via splitmix.
fn stream(seed: u64, len: usize, n_users: usize) -> Vec<usize> {
    let mut state = seed;
    (0..len).map(|_| (splitmix(&mut state) % n_users as u64) as usize).collect()
}

fn reference(
    model: &ServingModel,
    users: &[usize],
    precision: ScorePrecision,
) -> Vec<Vec<ScoredItem>> {
    model.top_k_batch_with(users, K, precision)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Layer 1: any partition of the stream into contiguous batches gives
    /// the same answers as the unpartitioned call.
    #[test]
    fn any_partition_is_bit_identical(seed in 0u64..u64::MAX, len in 1usize..64, cut_seed in 0u64..u64::MAX) {
        let model = lcg_model(23, 37, 4, 1.0);
        let users = stream(seed, len, model.n_users());
        // Random cut points: each position independently starts a new batch.
        let mut cuts = cut_seed;
        for precision in PRECISIONS {
            let want = reference(&model, &users, precision);
            let mut got: Vec<Vec<ScoredItem>> = Vec::with_capacity(len);
            let mut start = 0usize;
            for i in 1..=len {
                if i == len || splitmix(&mut cuts) & 3 == 0 {
                    got.extend(model.top_k_batch_with(&users[start..i], K, precision));
                    start = i;
                }
            }
            prop_assert_eq!(got.len(), want.len());
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_bitwise(g, w, &format!("partitioned row {i} ({precision})"))?;
            }
        }
    }

    /// Layer 2: any arrival order. Queries are served in a permuted order
    /// (in permuted sub-batches, even) and scattered back to their stream
    /// position by tag — the reconstruction the async server performs with
    /// tickets.
    #[test]
    fn any_arrival_order_scatters_back_bit_identical(seed in 0u64..u64::MAX, len in 1usize..64, perm_seed in 0u64..u64::MAX) {
        let model = lcg_model(19, 41, 3, 0.7);
        let users = stream(seed, len, model.n_users());
        // Fisher–Yates with splitmix: a uniform-enough permutation.
        let mut order: Vec<usize> = (0..len).collect();
        let mut ps = perm_seed;
        for i in (1..len).rev() {
            let j = (splitmix(&mut ps) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        for precision in PRECISIONS {
            let want = reference(&model, &users, precision);
            let mut got: Vec<Option<Vec<ScoredItem>>> = vec![None; len];
            for chunk in order.chunks(7) {
                let batch_users: Vec<usize> = chunk.iter().map(|&tag| users[tag]).collect();
                let answers = model.top_k_batch_with(&batch_users, K, precision);
                for (&tag, row) in chunk.iter().zip(answers) {
                    got[tag] = Some(row);
                }
            }
            for (i, w) in want.iter().enumerate() {
                let g = got[i].as_ref().expect("every tag answered exactly once");
                assert_bitwise(g, w, &format!("permuted row {i} ({precision})"))?;
            }
        }
    }

    /// Layer 3: the partitions the real batcher policy emits. A randomized
    /// mock-time schedule interleaves offers with time advances and take
    /// polls, so the drawn cases exercise deadline flushes, full flushes and
    /// the final shutdown drain; whatever batches fall out, the scattered
    /// answers must reconstruct the synchronous reference bit-for-bit.
    #[test]
    fn batcher_policy_cuts_are_bit_identical(
        seed in 0u64..u64::MAX,
        len in 1usize..96,
        sched_seed in 0u64..u64::MAX,
        max_batch in 1usize..16,
        deadline_us in 1u64..400,
    ) {
        let model = lcg_model(29, 31, 4, 1.3);
        let users = stream(seed, len, model.n_users());
        for precision in PRECISIONS {
            let want = reference(&model, &users, precision);
            let clock = MockClock::new();
            let mut q: BatchQueue<usize> = BatchQueue::new(BatcherConfig {
                deadline: Duration::from_micros(deadline_us),
                max_batch,
                queue_cap: len.max(1), // no shedding in this property
            });
            let mut got: Vec<Option<Vec<ScoredItem>>> = vec![None; len];
            let serve = |batch: Vec<msopds_serve_async::Pending<usize>>,
                             got: &mut Vec<Option<Vec<ScoredItem>>>| {
                let batch_users: Vec<usize> = batch.iter().map(|p| p.user).collect();
                let answers = model.top_k_batch_with(&batch_users, K, precision);
                for (p, row) in batch.into_iter().zip(answers) {
                    prop_assert!(got[p.tag].is_none(), "tag {} dispatched twice", p.tag);
                    got[p.tag] = Some(row);
                }
                Ok(())
            };
            let mut ss = sched_seed;
            for (tag, &user) in users.iter().enumerate() {
                // Random inter-arrival gap, occasionally past the deadline.
                clock.advance_us(splitmix(&mut ss) % (deadline_us * 2 / 3 + 2));
                q.offer(user, tag, clock.now_ns()).expect("cap covers the stream");
                // The dispatcher polls whenever it wakes; poll probabilistically.
                if splitmix(&mut ss) & 1 == 0 {
                    if let Some((batch, _reason)) = q.take(clock.now_ns(), false) {
                        serve(batch, &mut got)?;
                    }
                }
            }
            // Shutdown drain, in max_batch chunks like the dispatcher loop.
            while let Some((batch, _reason)) = q.take(clock.now_ns(), true) {
                serve(batch, &mut got)?;
            }
            let c = q.counters();
            prop_assert_eq!(c.offered, len as u64);
            prop_assert_eq!(c.accepted, len as u64);
            prop_assert_eq!(c.rejected, 0);
            for (i, w) in want.iter().enumerate() {
                let g = got[i].as_ref().expect("every accepted query dispatched");
                assert_bitwise(g, w, &format!("policy-cut row {i} ({precision})"))?;
            }
        }
    }
}
