//! Hot-swap safety under load (ISSUE 7 satellite): a swap concurrent with
//! serving must never produce a *torn* response — every answer is
//! bit-identical to exactly what the old snapshot or the new snapshot would
//! return, never a mixture — and a fingerprint-mismatched snapshot is
//! refused with a typed error while serving continues untouched.

mod common;

use std::sync::Arc;
use std::time::Duration;

use common::{lcg_model, lcg_snapshot, splitmix};
use msopds_serve_async::{
    AsyncServeConfig, AsyncServer, BatcherConfig, ScorePrecision, ScoredItem, ServeConfig,
    ServingModel, SnapshotSource, SwapError, SwapSnapshotError, SystemClock,
};

const K: usize = 5;
const N_USERS: usize = 40;
const N_ITEMS: usize = 60;
const DIM: usize = 4;

fn cfg(precision: ScorePrecision) -> AsyncServeConfig {
    AsyncServeConfig {
        batcher: BatcherConfig {
            deadline: Duration::from_micros(50),
            max_batch: 32,
            queue_cap: 4096,
        },
        serve: ServeConfig { top_k: K, cache_capacity: 16, precision },
    }
}

/// Per-user reference answers for one model.
fn refs(model: &ServingModel, precision: ScorePrecision) -> Vec<Vec<ScoredItem>> {
    let all: Vec<usize> = (0..model.n_users()).collect();
    model.top_k_batch_with(&all, K, precision)
}

fn bitwise_eq(got: &[ScoredItem], want: &[ScoredItem]) -> bool {
    got.len() == want.len()
        && got
            .iter()
            .zip(want)
            .all(|(g, w)| g.item == w.item && g.score.to_bits() == w.score.to_bits())
}

#[test]
fn concurrent_swaps_under_load_never_serve_a_torn_model() {
    for precision in [ScorePrecision::Exact64, ScorePrecision::Fast32] {
        let old = Arc::new(lcg_model(N_USERS, N_ITEMS, DIM, 1.0));
        let new = Arc::new(lcg_model(N_USERS, N_ITEMS, DIM, 2.0));
        let ref_old = refs(&old, precision);
        let ref_new = refs(&new, precision);
        // The two models must genuinely disagree or the test proves nothing.
        assert!((0..N_USERS).any(|u| !bitwise_eq(&ref_old[u], &ref_new[u])));

        let server = AsyncServer::start_with_clock(
            Arc::clone(&old),
            cfg(precision),
            Arc::new(SystemClock::new()),
        );
        std::thread::scope(|scope| {
            for t in 0..2u64 {
                let server = &server;
                let (ref_old, ref_new) = (&ref_old, &ref_new);
                scope.spawn(move || {
                    let mut state = 0xC0FFEE ^ t;
                    for _ in 0..150 {
                        let u = (splitmix(&mut state) % N_USERS as u64) as usize;
                        let answer =
                            server.submit(u).expect("cap covers the load").wait().expect("served");
                        assert!(
                            bitwise_eq(&answer, &ref_old[u]) || bitwise_eq(&answer, &ref_new[u]),
                            "user {u} got an answer matching neither snapshot ({precision})"
                        );
                    }
                });
            }
            // Swap back and forth while the clients hammer the queue.
            for i in 0..40 {
                let next = if i % 2 == 0 { &new } else { &old };
                server.swap_model(Arc::clone(next)).expect("same dataset, same shape");
                std::thread::yield_now();
            }
        });
        let stats = server.shutdown();
        assert_eq!(stats.swaps, 40);
        assert_eq!(stats.swaps_rejected, 0);
        assert_eq!(stats.completed, 300);
        assert_eq!(stats.batcher.accepted, 300);
        assert_eq!(
            stats.engine.cache_hits + stats.engine.cache_misses + stats.batcher.rejected,
            stats.batcher.offered
        );
    }
}

#[test]
fn queries_after_a_swap_are_answered_by_the_new_model_only() {
    let old = Arc::new(lcg_model(N_USERS, N_ITEMS, DIM, 1.0));
    let new = Arc::new(lcg_model(N_USERS, N_ITEMS, DIM, 2.0));
    let precision = ScorePrecision::Exact64;
    let ref_old = refs(&old, precision);
    let ref_new = refs(&new, precision);

    let server = AsyncServer::start_with_clock(
        Arc::clone(&old),
        cfg(precision),
        Arc::new(SystemClock::new()),
    );
    // Before the swap: old answers (wait for each, so none straddles it).
    for (u, want) in ref_old.iter().enumerate().take(8) {
        assert!(bitwise_eq(&server.submit(u).unwrap().wait().expect("served"), want));
    }
    server.swap_model(Arc::clone(&new)).expect("accepted");
    // After the swap returns there is no path back to the old model: the
    // hot-user cache was cleared and the engine Arc now points at `new`.
    for (u, want) in ref_new.iter().enumerate() {
        assert!(
            bitwise_eq(&server.submit(u).unwrap().wait().expect("served"), want),
            "user {u} served a stale answer after the swap"
        );
    }
    let stats = server.shutdown();
    assert_eq!((stats.swaps, stats.swaps_rejected), (1, 0));
}

#[test]
fn fingerprint_mismatched_snapshot_is_rejected_and_serving_continues() {
    let old = Arc::new(lcg_model(N_USERS, N_ITEMS, DIM, 1.0));
    let precision = ScorePrecision::Exact64;
    let ref_old = refs(&old, precision);
    let server = AsyncServer::start_with_clock(
        Arc::clone(&old),
        cfg(precision),
        Arc::new(SystemClock::new()),
    );

    // A structurally valid snapshot fitted on a *different* dataset: the
    // fingerprints disagree, so applying it would answer for the wrong world.
    let alien = lcg_snapshot(N_USERS, N_ITEMS, DIM, 3.0, (0xBAD, 0xF00D));
    match server.swap_snapshot(&alien) {
        Err(SwapSnapshotError::Rejected(SwapError::FingerprintMismatch { running, offered })) => {
            assert_eq!(running, (0xFEED, 0xF00D));
            assert_eq!(offered, (0xBAD, 0xF00D));
        }
        other => panic!("expected a fingerprint rejection, got {other:?}"),
    }

    // Same dataset but a different item universe: shape-checked, because a
    // swap that changed n_users would invalidate the admission-door id check.
    let resized = lcg_snapshot(N_USERS, N_ITEMS + 3, DIM, 1.0, (0xFEED, 0xF00D));
    match server.swap_snapshot(&resized) {
        Err(SwapSnapshotError::Rejected(SwapError::ShapeMismatch { running, offered })) => {
            assert_eq!(running, (N_USERS, N_ITEMS));
            assert_eq!(offered, (N_USERS, N_ITEMS + 3));
        }
        other => panic!("expected a shape rejection, got {other:?}"),
    }

    // Serving never blinked: still the old model's answers, bit for bit.
    for (u, want) in ref_old.iter().enumerate() {
        assert!(bitwise_eq(&server.submit(u).unwrap().wait().expect("served"), want));
    }
    let stats = server.shutdown();
    assert_eq!((stats.swaps, stats.swaps_rejected), (0, 2));
    assert_eq!(stats.completed, N_USERS as u64);
}

#[test]
fn swap_source_gates_on_the_peeked_header_and_swaps_zero_copy() {
    let old = Arc::new(lcg_model(N_USERS, N_ITEMS, DIM, 1.0));
    let precision = ScorePrecision::Exact64;
    let server = AsyncServer::start_with_clock(
        Arc::clone(&old),
        cfg(precision),
        Arc::new(SystemClock::new()),
    );
    let dir = std::env::temp_dir();
    let pid = std::process::id();

    // Wrong-world snapshot on disk: the 64-byte header peek alone refuses
    // it — no payload bytes are parsed, no model is built.
    let alien_path = dir.join(format!("msopds-swap-alien-{pid}.snap"));
    lcg_snapshot(N_USERS, N_ITEMS, DIM, 3.0, (0xBAD, 0xF00D)).save(&alien_path).unwrap();
    match server.swap_source(&SnapshotSource::mmap(&alien_path)) {
        Err(SwapSnapshotError::Rejected(SwapError::FingerprintMismatch { running, offered })) => {
            assert_eq!(running, (0xFEED, 0xF00D));
            assert_eq!(offered, (0xBAD, 0xF00D));
        }
        other => panic!("expected a header-gate fingerprint rejection, got {other:?}"),
    }

    // Same world on disk: passes the gate and swaps in through the mmap
    // path, serving the new model's answers bit for bit.
    let good = lcg_snapshot(N_USERS, N_ITEMS, DIM, 2.0, (0xFEED, 0xF00D));
    let ref_new = refs(&ServingModel::from_snapshot(&good).unwrap(), precision);
    let good_path = dir.join(format!("msopds-swap-good-{pid}.snap"));
    good.save(&good_path).unwrap();
    server.swap_source(&SnapshotSource::mmap(&good_path)).expect("same world, same shape");
    for (u, want) in ref_new.iter().enumerate() {
        assert!(
            bitwise_eq(&server.submit(u).unwrap().wait().expect("served"), want),
            "user {u} not served by the mmap-swapped model"
        );
    }
    let stats = server.shutdown();
    assert_eq!((stats.swaps, stats.swaps_rejected), (1, 1));
    std::fs::remove_file(&alien_path).ok();
    std::fs::remove_file(&good_path).ok();
}
