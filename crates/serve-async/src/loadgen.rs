//! An open-loop load generator for SLO benchmarking.
//!
//! *Open-loop* means arrivals follow a fixed schedule derived from the
//! offered rate — the generator does **not** wait for responses before
//! submitting the next query. That models real victim-platform traffic
//! (users do not coordinate with the recommender's queue depth) and is the
//! only honest way to measure tail latency under load: a closed-loop client
//! self-throttles exactly when the server is slow, hiding the queueing the
//! p99 is supposed to expose.
//!
//! The query stream is the same deterministic Fibonacci-hash walk the
//! `serve` binary replays, so runs are reproducible. Latency percentiles
//! come from the server's own admission→response measurements and therefore
//! cover **accepted** requests; shed requests are reported separately as
//! `rejected` (the shed count is part of the result, not a hidden success).

use std::time::{Duration, Instant};

use crate::server::{AsyncServer, LatencyProfile, ServeAsyncError, Ticket};

/// Parameters of one open-loop run.
#[derive(Clone, Copy, Debug)]
pub struct LoadGenConfig {
    /// Total queries to offer.
    pub requests: usize,
    /// Offered arrival rate, queries per second.
    pub offered_qps: f64,
}

/// The outcome of one open-loop run against a freshly started server.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// The configured offered rate.
    pub offered_qps: f64,
    /// The rate actually achieved by the submit loop (pacing is best-effort
    /// on a loaded machine; throughput math uses this, not the target).
    pub achieved_qps: f64,
    /// Queries offered.
    pub offered: u64,
    /// Queries admitted.
    pub accepted: u64,
    /// Queries shed at the admission door.
    pub rejected: u64,
    /// Queries answered.
    pub completed: u64,
    /// Completed-query throughput over the whole run (first submit → last
    /// response).
    pub completed_per_sec: f64,
    /// Admission→response latency of accepted queries.
    pub latency: LatencyProfile,
    /// Mean queries per dispatched batch.
    pub mean_batch_fill: f64,
    /// First submit → last response.
    pub elapsed: Duration,
}

/// The deterministic query stream shared with the `serve` binary: a
/// Fibonacci-hash walk covering the user universe before repeating.
pub fn stream_user(i: usize, n_users: usize) -> usize {
    (i.wrapping_mul(0x9E3779B97F4A7C15) >> 7) % n_users
}

/// Offers `cfg.requests` queries to `server` on the open-loop schedule,
/// waits for every admitted query to complete, and reports throughput and
/// tail latency. Expects a freshly started server (the report reads the
/// server's cumulative accounting).
///
/// # Panics
/// Panics if `offered_qps` is not positive or the server rejects a stream
/// user id (the stream stays inside `server.n_users()`, so that indicates a
/// server misconfiguration).
pub fn run_open_loop(server: &AsyncServer, cfg: &LoadGenConfig) -> LoadReport {
    assert!(cfg.offered_qps > 0.0, "offered_qps must be positive");
    let n_users = server.n_users();
    let interval_ns = 1e9 / cfg.offered_qps;
    let mut tickets: Vec<Ticket> = Vec::with_capacity(cfg.requests);
    let start = Instant::now();
    for i in 0..cfg.requests {
        let target_ns = (i as f64 * interval_ns) as u64;
        // Coarse sleep toward the schedule, then yield to the dispatcher
        // until the slot arrives — spinning would starve the dispatcher on
        // small machines, which is exactly the contention the bench runs
        // under.
        loop {
            let now_ns = start.elapsed().as_nanos() as u64;
            if now_ns >= target_ns {
                break;
            }
            let gap = target_ns - now_ns;
            if gap > 500_000 {
                std::thread::sleep(Duration::from_nanos(gap - 200_000));
            } else {
                std::thread::yield_now();
            }
        }
        match server.submit(stream_user(i, n_users)) {
            Ok(ticket) => tickets.push(ticket),
            Err(ServeAsyncError::Overloaded { .. }) => {} // counted server-side
            Err(e) => panic!("open-loop submit failed: {e}"),
        }
    }
    let submit_elapsed = start.elapsed();
    for ticket in &tickets {
        // Fault-free runs fulfill every admitted ticket; a typed failure
        // (injected dispatch fault) still terminates and is visible in the
        // server's `failed` accounting rather than silently dropped here.
        let _ = ticket.wait();
    }
    let elapsed = start.elapsed();

    let stats = server.stats();
    let secs = elapsed.as_secs_f64();
    LoadReport {
        offered_qps: cfg.offered_qps,
        achieved_qps: if submit_elapsed.as_secs_f64() > 0.0 {
            cfg.requests as f64 / submit_elapsed.as_secs_f64()
        } else {
            0.0
        },
        offered: stats.batcher.offered,
        accepted: stats.batcher.accepted,
        rejected: stats.batcher.rejected,
        completed: stats.completed,
        completed_per_sec: if secs > 0.0 { stats.completed as f64 / secs } else { 0.0 },
        latency: stats.latency,
        mean_batch_fill: stats.mean_batch_fill(),
        elapsed,
    }
}
