//! Glue between the ticketed submit API and an event-driven network front.
//!
//! A socket layer cannot block on [`Ticket::wait`] from its poll loop — one
//! slow batch would stall every connection. The [`CompletionPump`] bridges
//! the two worlds: the poll loop hands each admitted ticket to the pump with
//! an opaque `token` (connection × request id, typically) and goes back to
//! polling; a single pump thread waits the tickets out **in submission
//! order** and delivers terminal [`Completion`]s through a channel, invoking
//! a caller-supplied `wake` after each so the poll loop can interrupt its
//! `poll(2)` sleep (a self-pipe write, in `msopds-serve-net`).
//!
//! FIFO waiting is not a bottleneck: the dispatcher fulfills tickets whether
//! or not anyone is waiting, and batches complete in admission order, so the
//! pump's head-of-line wait is bounded by one in-flight batch — everything
//! behind the head resolves concurrently and drains without blocking.
//!
//! Every pushed ticket produces exactly one [`Completion`] — including
//! failed tickets ([`TicketError`]), which is what lets the socket layer's
//! accounting identity (`offered == completed + rejected + drained`) hold
//! exactly through dispatcher panics and shutdown races.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use msopds_serve::ScoredItem;

use crate::server::{Ticket, TicketError};

/// One resolved ticket: the caller's token plus the terminal outcome.
#[derive(Clone, Debug)]
pub struct Completion {
    /// The token the ticket was pushed with.
    pub token: u64,
    /// The ticket's terminal state: the served top-K list, or the typed
    /// failure.
    pub result: Result<Arc<Vec<ScoredItem>>, TicketError>,
}

/// The ticket-waiting side thread; see the module docs. Dropping the pump
/// joins the thread after it drains every ticket already pushed.
pub struct CompletionPump {
    tx: Option<Sender<(u64, Ticket)>>,
    thread: Option<JoinHandle<()>>,
}

impl CompletionPump {
    /// Starts the pump thread. `wake` is called after each completion is
    /// sent — it must be cheap, non-blocking and callable from a non-poll
    /// thread (a self-pipe write qualifies; a mutex-heavy callback does not).
    /// Returns the pump handle and the completion stream.
    pub fn start(wake: impl Fn() + Send + 'static) -> (Self, Receiver<Completion>) {
        let (tx, rx) = channel::<(u64, Ticket)>();
        let (out_tx, out_rx) = channel::<Completion>();
        let thread = std::thread::Builder::new()
            .name("serve-async-completion-pump".to_string())
            .spawn(move || {
                for (token, ticket) in rx {
                    let result = ticket.wait();
                    if out_tx.send(Completion { token, result }).is_err() {
                        return; // receiver gone: the front end already closed
                    }
                    wake();
                }
            })
            .expect("spawn completion pump");
        (Self { tx: Some(tx), thread: Some(thread) }, out_rx)
    }

    /// Hands an admitted ticket to the pump; its [`Completion`] will carry
    /// `token`. Tickets resolve in push order.
    ///
    /// # Panics
    /// Panics if called after the pump started shutting down (the pump
    /// outlives the poll loop that pushes into it by construction).
    pub fn push(&self, token: u64, ticket: Ticket) {
        self.tx
            .as_ref()
            .expect("pump closed")
            .send((token, ticket))
            .expect("completion pump thread alive");
    }
}

impl Drop for CompletionPump {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the channel so the thread drains and exits
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{AsyncServeConfig, AsyncServer};
    use crate::BatcherConfig;
    use msopds_autograd::Tensor;
    use msopds_recsys::snapshot::{ModelKind, Snapshot, SnapshotHeader};
    use msopds_recsys::Backend;
    use msopds_serve::{ServeConfig, ServingModel};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    fn tiny_model() -> ServingModel {
        let n_users = 8;
        let n_items = 6;
        let d = 3;
        let fill = |n: usize, mul: f64| -> Vec<f64> {
            (0..n).map(|i| mul * ((i % 7) as f64 - 3.0)).collect()
        };
        let snap = Snapshot {
            header: SnapshotHeader {
                kind: ModelKind::Mf,
                backend: Backend::Dense,
                seed: 1,
                social_fingerprint: 1,
                item_fingerprint: 2,
                n_users: n_users as u64,
                n_items: n_items as u64,
                mu: 3.0,
            },
            config_json: String::from("{}"),
            tensors: vec![
                (String::from("p"), Tensor::from_vec(fill(n_users * d, 0.1), &[n_users, d])),
                (String::from("q"), Tensor::from_vec(fill(n_items * d, 0.2), &[n_items, d])),
                (String::from("b_u"), Tensor::from_vec(fill(n_users, 0.01), &[n_users, 1])),
                (String::from("b_i"), Tensor::from_vec(fill(n_items, 0.02), &[n_items, 1])),
            ],
        };
        ServingModel::from_snapshot(&snap).expect("fixture snapshot")
    }

    #[test]
    fn pump_delivers_every_ticket_in_order_with_wakes() {
        let server = AsyncServer::start(
            tiny_model(),
            AsyncServeConfig {
                batcher: BatcherConfig {
                    deadline: Duration::from_micros(50),
                    max_batch: 4,
                    queue_cap: 64,
                },
                serve: ServeConfig::default(),
            },
        );
        let wakes = Arc::new(AtomicU64::new(0));
        let (pump, completions) = {
            let wakes = Arc::clone(&wakes);
            CompletionPump::start(move || {
                wakes.fetch_add(1, Ordering::Relaxed);
            })
        };
        let n = 32u64;
        for token in 0..n {
            let ticket = server.submit((token % 8) as usize).expect("admitted");
            pump.push(token, ticket);
        }
        let mut seen = Vec::new();
        for _ in 0..n {
            let c = completions.recv_timeout(Duration::from_secs(5)).expect("completion");
            assert!(c.result.is_ok(), "fault-free run must fulfill every ticket");
            seen.push(c.token);
        }
        assert_eq!(seen, (0..n).collect::<Vec<_>>(), "completions arrive in push order");
        assert_eq!(wakes.load(Ordering::Relaxed), n, "one wake per completion");
        drop(pump);
        server.shutdown();
    }
}
