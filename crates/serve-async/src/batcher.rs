//! The dynamic batcher's deterministic core.
//!
//! [`BatchQueue`] is a *pure state machine*: admission, coalescing and flush
//! decisions are functions of the operations applied to it and the explicit
//! `now_ns` timestamps passed in — it never reads a clock, spawns a thread,
//! or sleeps. The threaded [`crate::AsyncServer`] drives it under a mutex
//! with a real clock; the unit tests drive it with a [`crate::MockClock`]
//! and cover every flush path (deadline, max-batch, shutdown) without real
//! sleeps. Same transitions either way — that is what makes the concurrency
//! suite deterministic.
//!
//! ## Flush policy
//!
//! A query admitted at time `t` is dispatched no later than `t + deadline`
//! (the batcher's latency contract) and no earlier than whichever comes
//! first: the queue reaching `max_batch` (a **Full** flush — the throughput
//! path) or the *oldest* pending query's deadline expiring (a **Deadline**
//! flush — the latency path; the deadline is armed by the queue's front, so
//! a stream of arrivals cannot starve the first query by pushing the window
//! forward). Shutdown flushes whatever remains immediately.
//!
//! ## Admission
//!
//! The queue is bounded by `queue_cap`: an offer beyond the cap is rejected
//! *at admission time* with exact accounting (`offered == accepted +
//! rejected`, always). Shedding at the door keeps the latency of accepted
//! queries bounded — an unbounded queue would instead convert overload into
//! unbounded waiting, the failure mode the SLO bench measures.

use std::collections::VecDeque;
use std::time::Duration;

/// Knobs of the dynamic batcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatcherConfig {
    /// Maximum time a query may wait for co-batched company before the
    /// accumulated batch is dispatched anyway.
    pub deadline: Duration,
    /// Dispatch as soon as this many queries are pending (also the largest
    /// batch a single dispatch hands the engine).
    pub max_batch: usize,
    /// Bounded-queue admission cap: offers beyond this many pending queries
    /// are shed with a typed `Overloaded` rejection.
    pub queue_cap: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self { deadline: Duration::from_micros(200), max_batch: 1024, queue_cap: 8192 }
    }
}

impl BatcherConfig {
    /// Validates the knobs (`max_batch` and `queue_cap` must be positive).
    pub fn validate(&self) -> Result<(), String> {
        if self.max_batch == 0 {
            return Err("max_batch must be positive".to_string());
        }
        if self.queue_cap == 0 {
            return Err("queue_cap must be positive".to_string());
        }
        Ok(())
    }

    fn deadline_ns(&self) -> u64 {
        self.deadline.as_nanos() as u64
    }
}

/// Why a batch was dispatched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// `max_batch` queries were pending.
    Full,
    /// The oldest pending query reached its coalescing deadline.
    Deadline,
    /// The batcher is shutting down and drained its remainder.
    Shutdown,
}

/// One admitted query waiting for dispatch. `T` is the caller's tag —
/// the threaded server stores the response ticket, tests store the query's
/// position in the original stream.
#[derive(Clone, Debug)]
pub struct Pending<T> {
    /// User id to score.
    pub user: usize,
    /// Caller payload, handed back on dispatch.
    pub tag: T,
    /// Admission timestamp (the clock reading passed to `offer`).
    pub enqueued_ns: u64,
}

/// Exact admission/dispatch accounting (`offered == accepted + rejected`
/// by construction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatcherCounters {
    /// Queries presented to `offer`.
    pub offered: u64,
    /// Queries admitted to the queue.
    pub accepted: u64,
    /// Queries shed at the admission door.
    pub rejected: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Batches dispatched because the queue hit `max_batch`.
    pub flush_full: u64,
    /// Batches dispatched because the oldest query's deadline expired.
    pub flush_deadline: u64,
    /// Batches drained at shutdown.
    pub flush_shutdown: u64,
    /// Largest queue depth ever observed after an admission.
    pub peak_depth: u64,
}

/// The deterministic batching state machine. See the module docs for the
/// flush and admission policy.
#[derive(Debug)]
pub struct BatchQueue<T> {
    cfg: BatcherConfig,
    queue: VecDeque<Pending<T>>,
    counters: BatcherCounters,
}

impl<T> BatchQueue<T> {
    /// An empty queue with knobs `cfg`.
    ///
    /// # Panics
    /// Panics on an invalid config (zero `max_batch` or `queue_cap`);
    /// callers that parse user input validate first via
    /// [`BatcherConfig::validate`].
    pub fn new(cfg: BatcherConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("BatcherConfig: {e}");
        }
        Self {
            cfg,
            queue: VecDeque::with_capacity(cfg.max_batch.min(4096)),
            counters: BatcherCounters::default(),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> BatcherConfig {
        self.cfg
    }

    /// Pending query count.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The running exact counters.
    pub fn counters(&self) -> BatcherCounters {
        self.counters
    }

    /// Admits `user` at time `now_ns`, or sheds it if the queue is at
    /// `queue_cap`. Returns the rejected tag so the caller can fail the
    /// response handle it minted.
    pub fn offer(&mut self, user: usize, tag: T, now_ns: u64) -> Result<(), T> {
        self.counters.offered += 1;
        if self.queue.len() >= self.cfg.queue_cap {
            self.counters.rejected += 1;
            return Err(tag);
        }
        self.counters.accepted += 1;
        self.queue.push_back(Pending { user, tag, enqueued_ns: now_ns });
        self.counters.peak_depth = self.counters.peak_depth.max(self.queue.len() as u64);
        Ok(())
    }

    /// When the *current* queue must flush absent new arrivals: the oldest
    /// pending query's admission time plus the deadline. `None` when empty
    /// or when the queue is already full enough to flush immediately.
    pub fn next_deadline_ns(&self) -> Option<u64> {
        if self.queue.len() >= self.cfg.max_batch {
            return None;
        }
        self.queue.front().map(|p| p.enqueued_ns.saturating_add(self.cfg.deadline_ns()))
    }

    /// Whether `take` would dispatch at time `now_ns`.
    pub fn due(&self, now_ns: u64, shutdown: bool) -> bool {
        if self.queue.is_empty() {
            return false;
        }
        if shutdown || self.queue.len() >= self.cfg.max_batch {
            return true;
        }
        self.next_deadline_ns().is_some_and(|dl| now_ns >= dl)
    }

    /// Dispatches the next batch if one is due at `now_ns` (see the module
    /// docs): up to `max_batch` queries in admission order, plus the reason
    /// the flush fired. Returns `None` when nothing is due yet — the caller
    /// should sleep until [`BatchQueue::next_deadline_ns`] or the next offer.
    ///
    /// A `Full` flush of a longer queue leaves the remainder pending; its
    /// deadline re-arms from the *remaining* front's admission time, so
    /// overflow queries inherit their own latency budget, not the flushed
    /// batch's.
    pub fn take(&mut self, now_ns: u64, shutdown: bool) -> Option<(Vec<Pending<T>>, FlushReason)> {
        if !self.due(now_ns, shutdown) {
            return None;
        }
        let reason = if self.queue.len() >= self.cfg.max_batch {
            FlushReason::Full
        } else if self.next_deadline_ns().is_some_and(|dl| now_ns >= dl) {
            FlushReason::Deadline
        } else {
            FlushReason::Shutdown
        };
        let n = self.queue.len().min(self.cfg.max_batch);
        let batch: Vec<Pending<T>> = self.queue.drain(..n).collect();
        self.counters.batches += 1;
        match reason {
            FlushReason::Full => self.counters.flush_full += 1,
            FlushReason::Deadline => self.counters.flush_deadline += 1,
            FlushReason::Shutdown => self.counters.flush_shutdown += 1,
        }
        Some((batch, reason))
    }
}
