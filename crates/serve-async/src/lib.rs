//! # msopds-serve-async
//!
//! The *online* serving tier: an asynchronous front end over
//! `msopds-serve`'s engine that turns one-query-at-a-time traffic — the
//! arrival pattern of the victim platform the paper's multiplayer game
//! models — into the large batches the scoring kernels are fast at.
//!
//! `BENCH_serve.json` puts batch-1 serving ~6× below batch-1024 throughput;
//! this crate closes that gap with a **request scheduler** rather than a
//! faster kernel:
//!
//! * [`AsyncServer`] — submit single-user queries, get a [`Ticket`] back;
//!   one dispatcher thread coalesces pending queries up to a deadline
//!   (default 200 µs) or `max_batch` (default 1024) and dispatches one
//!   blocked `serve_batch` for the whole batch.
//! * **Admission control** — the pending queue is bounded
//!   ([`BatcherConfig::queue_cap`]); overload sheds with a typed
//!   [`ServeAsyncError::Overloaded`] instead of queueing into unbounded
//!   latency. Accounting is exact: `offered == accepted + rejected`, and
//!   after a drain `hits + misses + rejected == offered`.
//! * **Hot-swap** — [`AsyncServer::swap_model`] atomically replaces the
//!   served `Arc<ServingModel>`, fingerprint- and shape-checked against the
//!   running dataset, serialized with dispatch so every response is exactly
//!   one model's answer (never torn). Rejected swaps leave serving
//!   untouched.
//! * [`run_open_loop`] — an open-loop load generator reporting
//!   p50/p99/p99.9 admission→response latency vs offered load; `--bench
//!   serve_async` sweeps it into `BENCH_serve_async.json`.
//!
//! ## Fidelity
//!
//! Dynamic batching never changes answers: each top-K row depends only on
//! its own user (the serve crate's batch-invariance contract), so any
//! coalescing/partition of a query stream is bit-identical to one
//! synchronous `top_k_batch` call — for both `ScorePrecision` kernels. The
//! property suite (`tests/batcher_props.rs`) pins this.
//!
//! ## Determinism in tests
//!
//! All time-dependent behavior lives in the pure [`BatchQueue`] state
//! machine, which reads time only as explicit `now_ns` arguments via the
//! injectable [`Clock`]. The unit suites drive it with a [`MockClock`] —
//! deadline-flush, max-batch-flush and shutdown-flush are all covered
//! without one real sleep, so nothing in CI is timing-flaky. The threaded
//! [`AsyncServer`] adds only lock/condvar plumbing around that core.

#![warn(missing_docs)]

mod batcher;
mod clock;
mod loadgen;
pub mod net;
mod server;

pub use batcher::{BatchQueue, BatcherConfig, BatcherCounters, FlushReason, Pending};
pub use clock::{Clock, MockClock, SystemClock};
pub use loadgen::{run_open_loop, stream_user, LoadGenConfig, LoadReport};
pub use net::{Completion, CompletionPump};
pub use server::{
    AsyncServeConfig, AsyncServer, AsyncStats, LatencyProfile, PauseHandle, ServeAsyncError,
    SwapSnapshotError, Ticket, TicketError,
};

pub use msopds_serve::{
    ScorePrecision, ScoredItem, ServeConfig, ServingModel, Snapshot, SnapshotError,
    SnapshotSource, SwapError,
};
