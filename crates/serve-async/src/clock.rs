//! Injectable time for the batching tier.
//!
//! Every deadline decision in this crate reads time as a monotone nanosecond
//! count through the [`Clock`] trait instead of calling `Instant::now()`
//! directly. Production code runs on [`SystemClock`]; the deterministic test
//! suites run on [`MockClock`], which only moves when a test advances it —
//! so the deadline-flush, max-batch-flush and shutdown-flush paths are all
//! exercised without a single real sleep (DESIGN.md §14: no timing-flaky
//! tests in CI).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotone nanosecond clock. Implementations must be cheap — the batcher
/// reads the clock on every submit and every dispatcher wakeup.
pub trait Clock: Send + Sync + 'static {
    /// Nanoseconds since an arbitrary fixed origin; never decreases.
    fn now_ns(&self) -> u64;
}

/// The real monotonic clock, anchored at construction so readings fit `u64`
/// nanoseconds comfortably (584 years of range).
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock anchored at "now".
    pub fn new() -> Self {
        Self { origin: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A clock that only moves when told to — the deterministic-time test
/// harness. Shared freely across threads; `advance` publishes with release
/// ordering so a reader that observes the new time also observes everything
/// the advancing thread did before it.
#[derive(Debug, Default)]
pub struct MockClock {
    ns: AtomicU64,
}

impl MockClock {
    /// A mock clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `ns` nanoseconds, returning the new reading.
    pub fn advance(&self, ns: u64) -> u64 {
        self.ns.fetch_add(ns, Ordering::AcqRel) + ns
    }

    /// Moves time forward by `us` microseconds, returning the new reading.
    pub fn advance_us(&self, us: u64) -> u64 {
        self.advance(us * 1_000)
    }
}

impl Clock for MockClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotone() {
        let c = SystemClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn mock_clock_moves_only_when_advanced() {
        let c = MockClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.advance_us(200), 200_000);
        assert_eq!(c.now_ns(), 200_000);
        assert_eq!(c.advance(1), 200_001);
    }
}
