//! The threaded async serving front end over a [`SharedServeEngine`].
//!
//! One dispatcher thread drives the deterministic [`BatchQueue`] core:
//! clients [`AsyncServer::submit`] single-user queries and get a [`Ticket`]
//! back immediately (or a typed [`ServeAsyncError::Overloaded`] rejection at
//! the admission door); the dispatcher coalesces pending queries up to the
//! configured deadline or `max_batch`, dispatches **one** blocked
//! `serve_batch` call for the whole coalesced batch, and fulfills every
//! ticket with its row.
//!
//! ## Fidelity
//!
//! Batching never changes answers: each top-K row depends only on its own
//! user's embedding row (the serve crate's batch-invariance contract), so
//! any coalescing of a query stream returns bit-identical lists to one
//! synchronous `top_k_batch` over the same stream — the property suite in
//! `tests/batcher_props.rs` pins exactly that, for both [`ScorePrecision`]
//! kernels.
//!
//! ## Hot-swap
//!
//! [`AsyncServer::swap_model`] replaces the served [`ServingModel`] by an
//! atomic `Arc` swap inside the engine, serialized with dispatch on the
//! engine lock: a swap happens *between* batches, so every response is
//! computed entirely against exactly one model — old or new, never torn.
//! Snapshots are fingerprint-checked against the running dataset; a
//! mismatch is refused with a typed error while serving continues.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use msopds_serve::{
    ScoredItem, ServeConfig, ServeEngine, ServeSummary, ServingModel, SharedServeEngine, Snapshot,
    SnapshotError, SnapshotSource, SwapError,
};
use msopds_telemetry::{self as telemetry, Counter, Gauge};

use crate::batcher::{BatchQueue, BatcherConfig, BatcherCounters, FlushReason, Pending};
use crate::clock::{Clock, SystemClock};

static SUBMITTED: Counter = Counter::new("serve_async.submitted");
static REJECTED: Counter = Counter::new("serve_async.rejected");
static COMPLETED: Counter = Counter::new("serve_async.completed");
static FAILED: Counter = Counter::new("serve_async.failed");
static BATCHES: Counter = Counter::new("serve_async.batches");
static FLUSH_FULL: Counter = Counter::new("serve_async.flush.full");
static FLUSH_DEADLINE: Counter = Counter::new("serve_async.flush.deadline");
static FLUSH_SHUTDOWN: Counter = Counter::new("serve_async.flush.shutdown");
static SWAPS: Counter = Counter::new("serve_async.swaps");
static SWAPS_REJECTED: Counter = Counter::new("serve_async.swaps_rejected");
static QUEUE_PEAK: Gauge = Gauge::new("serve_async.queue_peak");
static BATCH_FILL: Gauge = Gauge::new("serve_async.batch_fill");
static P50_US: Gauge = Gauge::new("serve_async.latency.p50_us");
static P99_US: Gauge = Gauge::new("serve_async.latency.p99_us");
static P999_US: Gauge = Gauge::new("serve_async.latency.p999_us");

/// Knobs of the async tier: the batcher policy plus the wrapped engine's
/// own configuration (top-K length, hot-user cache, scoring precision).
#[derive(Clone, Copy, Debug, Default)]
pub struct AsyncServeConfig {
    /// Coalescing deadline, max batch, and admission cap.
    pub batcher: BatcherConfig,
    /// The inner [`ServeEngine`] knobs (list length, LRU, precision).
    pub serve: ServeConfig,
}

/// Typed failures of the async submission path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeAsyncError {
    /// The admission queue is at capacity; the query was shed instead of
    /// queued into unbounded latency. Retry with backoff or shed upstream.
    Overloaded {
        /// The configured admission cap that was hit.
        queue_cap: usize,
    },
    /// The server is draining and accepts no new queries.
    ShuttingDown,
    /// The user id is outside the served model's universe (validated at the
    /// door so a bad id becomes a typed rejection, not an engine panic that
    /// would strand every co-batched ticket).
    UnknownUser {
        /// The offending user id.
        user: usize,
        /// The model's user-universe size.
        n_users: usize,
    },
}

impl std::fmt::Display for ServeAsyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeAsyncError::Overloaded { queue_cap } => {
                write!(f, "admission queue at capacity ({queue_cap}); query shed")
            }
            ServeAsyncError::ShuttingDown => write!(f, "server is shutting down"),
            ServeAsyncError::UnknownUser { user, n_users } => {
                write!(f, "user id {user} out of range for {n_users} users")
            }
        }
    }
}

impl std::error::Error for ServeAsyncError {}

/// Why an admitted query's [`Ticket`] terminated without an answer. Every
/// admitted ticket reaches a terminal state — [`Ticket::wait`] never hangs
/// on a dead server and never panics on a poisoned mutex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TicketError {
    /// The batch this query was coalesced into panicked inside dispatch
    /// (engine call or an injected fault). The server caught the unwind and
    /// keeps serving later batches; only this batch's tickets fail.
    DispatchFailed,
    /// The server shut down before this query's batch was dispatched. Only
    /// reachable through the submit/shutdown race — the drain flush serves
    /// everything the dispatcher can still see — but "only" races must still
    /// terminate, not hang.
    ServerClosed,
}

impl std::fmt::Display for TicketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TicketError::DispatchFailed => write!(f, "batch dispatch panicked; query not served"),
            TicketError::ServerClosed => write!(f, "server closed before the query was served"),
        }
    }
}

impl std::error::Error for TicketError {}

/// Why [`AsyncServer::swap_snapshot`] failed.
#[derive(Debug)]
pub enum SwapSnapshotError {
    /// The snapshot does not build a serving model at all.
    Invalid(SnapshotError),
    /// The snapshot builds, but was rejected against the running dataset
    /// (fingerprint or shape mismatch); serving continues on the old model.
    Rejected(SwapError),
}

impl std::fmt::Display for SwapSnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapSnapshotError::Invalid(e) => write!(f, "snapshot rejected: {e}"),
            SwapSnapshotError::Rejected(e) => write!(f, "swap rejected: {e}"),
        }
    }
}

impl std::error::Error for SwapSnapshotError {}

/// Percentile summary of per-request latency (admission → response ready),
/// microseconds. Percentiles use the nearest-rank convention of
/// `ServeStats::summarize`.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyProfile {
    /// Requests measured.
    pub count: u64,
    /// Mean latency.
    pub mean_us: f64,
    /// Median.
    pub p50_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// 99.9th percentile.
    pub p999_us: u64,
    /// Worst observed.
    pub max_us: u64,
}

impl LatencyProfile {
    /// Summarizes a set of latency samples (order irrelevant).
    pub fn from_unsorted(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let pct = |p: f64| -> u64 {
            let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
            samples[idx]
        };
        Self {
            count: samples.len() as u64,
            mean_us: samples.iter().sum::<u64>() as f64 / samples.len() as f64,
            p50_us: pct(0.50),
            p99_us: pct(0.99),
            p999_us: pct(0.999),
            max_us: *samples.last().expect("non-empty"),
        }
    }
}

/// A point-in-time view of the async tier's accounting. After a drain
/// ([`AsyncServer::shutdown`]) the books balance exactly:
/// `batcher.accepted == completed + failed` and — in a fault-free run, where
/// `failed == 0` — `engine.cache_hits + engine.cache_misses +
/// batcher.rejected == batcher.offered` and `completed == batcher.accepted`.
#[derive(Clone, Debug)]
pub struct AsyncStats {
    /// Admission and flush accounting from the batcher core.
    pub batcher: BatcherCounters,
    /// Tickets fulfilled with an answer.
    pub completed: u64,
    /// Tickets failed with a typed [`TicketError`] (dispatch panic or
    /// shutdown race); zero in a fault-free run.
    pub failed: u64,
    /// Model hot-swaps applied.
    pub swaps: u64,
    /// Hot-swaps refused (fingerprint/shape mismatch).
    pub swaps_rejected: u64,
    /// Per-request latency summary (admission → response ready).
    pub latency: LatencyProfile,
    /// The wrapped engine's own summary (hits/misses/queries, per-batch
    /// percentiles).
    pub engine: ServeSummary,
}

impl AsyncStats {
    /// Mean coalesced-batch fill (queries per dispatched batch).
    pub fn mean_batch_fill(&self) -> f64 {
        if self.batcher.batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.batcher.batches as f64
        }
    }
}

enum TicketState {
    Waiting,
    Ready(Arc<Vec<ScoredItem>>),
    Failed(TicketError),
}

struct TicketCell {
    state: Mutex<TicketState>,
    cv: Condvar,
}

impl TicketCell {
    fn new() -> Self {
        Self { state: Mutex::new(TicketState::Waiting), cv: Condvar::new() }
    }

    fn fulfill(&self, answer: Arc<Vec<ScoredItem>>) {
        let mut state = lock_clean(&self.state);
        *state = TicketState::Ready(answer);
        self.cv.notify_all();
    }

    fn fail(&self, error: TicketError) {
        let mut state = lock_clean(&self.state);
        // A ticket that already has its answer keeps it; failure is only a
        // terminal state for tickets still waiting.
        if matches!(*state, TicketState::Waiting) {
            *state = TicketState::Failed(error);
        }
        self.cv.notify_all();
    }
}

/// The response handle of an admitted query. Cheap to move across threads;
/// dropping it without waiting discards the answer but never blocks the
/// server.
pub struct Ticket {
    cell: Arc<TicketCell>,
}

impl Ticket {
    /// Blocks until the query's coalesced batch is served, then returns the
    /// top-K list (shared with the hot-user cache) — or the typed
    /// [`TicketError`] if the batch's dispatch panicked or the server closed
    /// first. Never hangs: every admitted ticket reaches a terminal state,
    /// even across shutdown races and dispatcher panics.
    pub fn wait(&self) -> Result<Arc<Vec<ScoredItem>>, TicketError> {
        let mut state = lock_clean(&self.cell.state);
        loop {
            match &*state {
                TicketState::Ready(answer) => return Ok(Arc::clone(answer)),
                TicketState::Failed(error) => return Err(*error),
                TicketState::Waiting => {
                    state =
                        self.cell.cv.wait(state).unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            }
        }
    }

    /// Non-blocking poll: the terminal outcome if the batch already resolved.
    pub fn try_take(&self) -> Option<Result<Arc<Vec<ScoredItem>>, TicketError>> {
        match &*lock_clean(&self.cell.state) {
            TicketState::Ready(answer) => Some(Ok(Arc::clone(answer))),
            TicketState::Failed(error) => Some(Err(*error)),
            TicketState::Waiting => None,
        }
    }
}

fn lock_clean<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct Inner {
    queue: Mutex<BatchQueue<Arc<TicketCell>>>,
    cv: Condvar,
    engine: SharedServeEngine,
    clock: Arc<dyn Clock>,
    cfg: AsyncServeConfig,
    n_users: usize,
    shutdown: AtomicBool,
    paused: AtomicBool,
    completed: AtomicU64,
    failed: AtomicU64,
    swaps: AtomicU64,
    swaps_rejected: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

/// The async serving front end; see the module docs. Construction spawns
/// the dispatcher thread; [`AsyncServer::shutdown`] (or drop) drains the
/// queue and joins it.
pub struct AsyncServer {
    inner: Arc<Inner>,
    dispatcher: Option<JoinHandle<()>>,
}

impl AsyncServer {
    /// Starts a server over `model` on the real monotonic clock.
    pub fn start(model: ServingModel, cfg: AsyncServeConfig) -> Self {
        Self::start_with_clock(Arc::new(model), cfg, Arc::new(SystemClock::new()))
    }

    /// Starts a server with an injected [`Clock`] (shared-model form; the
    /// deterministic suites pass a [`crate::MockClock`] and drive the
    /// batcher core directly, so the dispatcher clock only affects pacing).
    pub fn start_with_clock(
        model: Arc<ServingModel>,
        cfg: AsyncServeConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let n_users = model.n_users();
        let inner = Arc::new(Inner {
            queue: Mutex::new(BatchQueue::new(cfg.batcher)),
            cv: Condvar::new(),
            engine: SharedServeEngine::new(ServeEngine::new_shared(model, cfg.serve)),
            clock,
            cfg,
            n_users,
            shutdown: AtomicBool::new(false),
            paused: AtomicBool::new(false),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            swaps_rejected: AtomicU64::new(0),
            latencies_us: Mutex::new(Vec::new()),
        });
        let dispatcher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("serve-async-dispatch".to_string())
                .spawn(move || dispatcher_loop(&inner))
                .expect("spawn dispatcher")
        };
        Self { inner, dispatcher: Some(dispatcher) }
    }

    /// The configured knobs.
    pub fn config(&self) -> AsyncServeConfig {
        self.inner.cfg
    }

    /// The served user-universe size (constant across hot-swaps — swaps are
    /// shape-checked).
    pub fn n_users(&self) -> usize {
        self.inner.n_users
    }

    /// Submits one user query. Returns a [`Ticket`] immediately on
    /// admission, or a typed rejection: [`ServeAsyncError::Overloaded`] at
    /// the queue cap, [`ServeAsyncError::UnknownUser`] for an out-of-range
    /// id, [`ServeAsyncError::ShuttingDown`] during drain.
    pub fn submit(&self, user: usize) -> Result<Ticket, ServeAsyncError> {
        if user >= self.inner.n_users {
            return Err(ServeAsyncError::UnknownUser { user, n_users: self.inner.n_users });
        }
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(ServeAsyncError::ShuttingDown);
        }
        SUBMITTED.incr();
        let cell = Arc::new(TicketCell::new());
        let mut q = lock_clean(&self.inner.queue);
        let was_empty = q.is_empty();
        match q.offer(user, Arc::clone(&cell), self.inner.clock.now_ns()) {
            Ok(()) => {
                // Wake the dispatcher only when its wait state changes: the
                // first query of an empty queue arms the deadline timer, and
                // a full queue must flush now. In between, the dispatcher is
                // already sleeping toward the armed deadline — notifying on
                // every submit would just burn wakeups on the hot path.
                let flush_now = q.len() >= self.inner.cfg.batcher.max_batch;
                drop(q);
                if was_empty || flush_now {
                    self.inner.cv.notify_one();
                }
                Ok(Ticket { cell })
            }
            Err(_cell) => {
                REJECTED.incr();
                Err(ServeAsyncError::Overloaded { queue_cap: self.inner.cfg.batcher.queue_cap })
            }
        }
    }

    /// Atomically replaces the served model (see the module docs). The swap
    /// serializes with dispatch on the engine lock, so it lands between
    /// batches; the engine's hot-user cache is cleared, its stats carry
    /// over, and a fingerprint/shape mismatch is refused with serving
    /// untouched.
    pub fn swap_model(&self, model: Arc<ServingModel>) -> Result<(), SwapError> {
        msopds_faultline::fault_point!("serve_async.swap");
        match self.inner.engine.try_swap(model) {
            Ok(_old) => {
                self.inner.swaps.fetch_add(1, Ordering::Relaxed);
                SWAPS.incr();
                Ok(())
            }
            Err(e) => {
                self.inner.swaps_rejected.fetch_add(1, Ordering::Relaxed);
                SWAPS_REJECTED.incr();
                Err(e)
            }
        }
    }

    /// Pre-scores `users` straight through the wrapped engine, bypassing the
    /// queue: warms the hot-user LRU so a steady-state benchmark measures
    /// serving, not first-touch scoring (the same convention as the serve
    /// bench's engine rows). The engine's own counters do record the warm-up
    /// batch; the async tier's admission books and latency profile do not,
    /// so a warmed server no longer satisfies the post-drain identity
    /// `engine hits + misses + rejected == offered`.
    pub fn warm(&self, users: &[usize]) {
        let _ = self.inner.engine.serve_batch(users);
    }

    /// [`AsyncServer::swap_model`] from a parsed snapshot file.
    pub fn swap_snapshot(&self, snap: &Snapshot) -> Result<(), SwapSnapshotError> {
        let model = ServingModel::from_snapshot(snap).map_err(SwapSnapshotError::Invalid)?;
        self.swap_model(Arc::new(model)).map_err(SwapSnapshotError::Rejected)
    }

    /// [`AsyncServer::swap_model`] from any [`SnapshotSource`], with an
    /// early header gate: the 64-byte prefix is peeked first, and a
    /// snapshot whose CSR fingerprints disagree with the running dataset
    /// is refused **before a single tensor payload is read** — offering a
    /// multi-gigabyte snapshot of the wrong world costs one tiny read,
    /// not a full parse. A source that passes the gate loads through
    /// [`ServingModel::open`], so `SnapshotSource::Mmap` swaps in
    /// zero-copy.
    pub fn swap_source(&self, source: &SnapshotSource) -> Result<(), SwapSnapshotError> {
        let head = Snapshot::peek(source).map_err(SwapSnapshotError::Invalid)?;
        let offered = (head.social_fingerprint, head.item_fingerprint);
        let running = self.inner.engine.model_arc().fingerprints();
        if offered != running {
            self.inner.swaps_rejected.fetch_add(1, Ordering::Relaxed);
            SWAPS_REJECTED.incr();
            return Err(SwapSnapshotError::Rejected(SwapError::FingerprintMismatch {
                running,
                offered,
            }));
        }
        let model = ServingModel::open(source).map_err(SwapSnapshotError::Invalid)?;
        self.swap_model(Arc::new(model)).map_err(SwapSnapshotError::Rejected)
    }

    /// Holds the dispatcher: admitted queries keep queueing (and shedding at
    /// the cap) but nothing flushes until [`AsyncServer::resume`]. Used by
    /// the admission tests to pin exact rejection counts, and usable to
    /// stage a swap + warm-up before taking traffic.
    pub fn pause(&self) {
        self.inner.paused.store(true, Ordering::Release);
    }

    /// Releases a [`AsyncServer::pause`]d dispatcher.
    pub fn resume(&self) {
        self.inner.paused.store(false, Ordering::Release);
        self.inner.cv.notify_one();
    }

    /// A detachable pause/resume control, usable after the server itself has
    /// been moved elsewhere (the socket front end owns the `AsyncServer`
    /// inside its poll thread; chaos tests still need to hold the dispatcher
    /// to pin exact admission counts).
    pub fn pause_handle(&self) -> PauseHandle {
        PauseHandle { inner: Arc::clone(&self.inner) }
    }

    /// A snapshot of the tier's accounting; also publishes the
    /// `serve_async.*` gauges.
    pub fn stats(&self) -> AsyncStats {
        let batcher = lock_clean(&self.inner.queue).counters();
        let latency = LatencyProfile::from_unsorted(lock_clean(&self.inner.latencies_us).clone());
        let stats = AsyncStats {
            batcher,
            completed: self.inner.completed.load(Ordering::Relaxed),
            failed: self.inner.failed.load(Ordering::Relaxed),
            swaps: self.inner.swaps.load(Ordering::Relaxed),
            swaps_rejected: self.inner.swaps_rejected.load(Ordering::Relaxed),
            latency,
            engine: self.inner.engine.summary(),
        };
        QUEUE_PEAK.set(batcher.peak_depth as f64);
        BATCH_FILL.set(stats.mean_batch_fill());
        P50_US.set(latency.p50_us as f64);
        P99_US.set(latency.p99_us as f64);
        P999_US.set(latency.p999_us as f64);
        stats
    }

    /// Stops admissions, drains every pending query (a final
    /// [`FlushReason::Shutdown`] flush per remaining chunk), joins the
    /// dispatcher, and returns the final accounting.
    pub fn shutdown(mut self) -> AsyncStats {
        self.join_dispatcher();
        self.stats()
    }

    fn join_dispatcher(&mut self) {
        if let Some(handle) = self.dispatcher.take() {
            self.inner.shutdown.store(true, Ordering::Release);
            self.inner.cv.notify_one();
            let _ = handle.join();
            // Submit/shutdown race sweep: an offer can land between the
            // dispatcher's last empty take() and its exit. Fail any such
            // straggler with a typed error so no ticket ever hangs.
            let mut q = lock_clean(&self.inner.queue);
            while let Some((batch, _reason)) = q.take(self.inner.clock.now_ns(), true) {
                for pending in batch {
                    pending.tag.fail(TicketError::ServerClosed);
                    self.inner.failed.fetch_add(1, Ordering::Relaxed);
                    FAILED.incr();
                }
            }
        }
    }
}

impl Drop for AsyncServer {
    fn drop(&mut self) {
        self.join_dispatcher();
    }
}

/// A clonable remote control for [`AsyncServer::pause`] /
/// [`AsyncServer::resume`], detached from the server's ownership. Holding
/// one does not keep the server alive in any user-visible way — it only
/// pins the shared state block; pausing after shutdown is a harmless no-op.
#[derive(Clone)]
pub struct PauseHandle {
    inner: Arc<Inner>,
}

impl PauseHandle {
    /// [`AsyncServer::pause`] through the handle.
    pub fn pause(&self) {
        self.inner.paused.store(true, Ordering::Release);
    }

    /// [`AsyncServer::resume`] through the handle.
    pub fn resume(&self) {
        self.inner.paused.store(false, Ordering::Release);
        self.inner.cv.notify_one();
    }
}

fn dispatcher_loop(inner: &Inner) {
    let mut q = lock_clean(&inner.queue);
    loop {
        let shutting = inner.shutdown.load(Ordering::Acquire);
        if inner.paused.load(Ordering::Acquire) && !shutting {
            q = inner.cv.wait(q).unwrap_or_else(|poisoned| poisoned.into_inner());
            continue;
        }
        let now = inner.clock.now_ns();
        if let Some((batch, reason)) = q.take(now, shutting) {
            drop(q);
            dispatch(inner, batch, reason);
            q = lock_clean(&inner.queue);
            continue;
        }
        if shutting {
            return; // take() under shutdown only declines when empty
        }
        match q.next_deadline_ns() {
            // Empty queue: sleep until the next submit arms a deadline.
            None => q = inner.cv.wait(q).unwrap_or_else(|poisoned| poisoned.into_inner()),
            Some(deadline) => {
                let now = inner.clock.now_ns();
                if deadline <= now {
                    continue;
                }
                let (guard, _timeout) = inner
                    .cv
                    .wait_timeout(q, Duration::from_nanos(deadline - now))
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                q = guard;
            }
        }
    }
}

/// Serves one coalesced batch and fulfills its tickets. Runs with no queue
/// lock held — admissions proceed while the engine scores.
///
/// The engine call is panic-guarded: a batch that unwinds (a model bug, or
/// an injected fault at the `serve_async.batch.take` / `serve_async.engine.call`
/// sites) fails exactly its own tickets with [`TicketError::DispatchFailed`]
/// and the dispatcher keeps serving later batches. The guard closure borrows
/// only the user ids — the tickets stay outside, so an unwind can never drop
/// a waiting ticket without a terminal state.
fn dispatch(inner: &Inner, batch: Vec<Pending<Arc<TicketCell>>>, reason: FlushReason) {
    let _span = telemetry::span("serve_async_batch");
    let users: Vec<usize> = batch.iter().map(|p| p.user).collect();
    let answers = catch_unwind(AssertUnwindSafe(|| {
        msopds_faultline::fault_point!("serve_async.batch.take");
        msopds_faultline::fault_point!("serve_async.engine.call");
        inner.engine.serve_batch(&users)
    }));
    BATCHES.incr();
    match reason {
        FlushReason::Full => FLUSH_FULL.incr(),
        FlushReason::Deadline => FLUSH_DEADLINE.incr(),
        FlushReason::Shutdown => FLUSH_SHUTDOWN.incr(),
    }
    let answers = match answers {
        Ok(answers) => answers,
        Err(_) => {
            let n = batch.len() as u64;
            for pending in batch {
                pending.tag.fail(TicketError::DispatchFailed);
            }
            inner.failed.fetch_add(n, Ordering::Relaxed);
            FAILED.add(n);
            return;
        }
    };
    let done_ns = inner.clock.now_ns();
    let mut latencies = Vec::with_capacity(batch.len());
    for (pending, answer) in batch.into_iter().zip(answers) {
        latencies.push(done_ns.saturating_sub(pending.enqueued_ns) / 1_000);
        pending.tag.fulfill(answer);
    }
    inner.completed.fetch_add(latencies.len() as u64, Ordering::Relaxed);
    COMPLETED.add(latencies.len() as u64);
    lock_clean(&inner.latencies_us).extend(latencies);
}
