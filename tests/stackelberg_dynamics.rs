//! Integration tests of the Stackelberg machinery against the full PDS stack:
//! eq. (14)'s N-opponent reduction, the push–pull discipline, and the exact
//! vs finite-difference second-order paths.

mod common;

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use msopds::autograd::HvpMode;
use msopds::core::{
    build_ca_capacity, plan_msopds, prepare_planning_data, CaCapacitySpec, MsoConfig, Objective,
    PlannerConfig, PlayerSetup,
};
use msopds::prelude::*;

type Setup = (Dataset, Market, PlayerSetup, Vec<PlayerSetup>);

/// The planning setup for `n_opponents`, built once per binary: capacity
/// building (fake-user registration + candidate enumeration) dominates these
/// tests' fixed cost, and each setup is reused read-only by several tests.
fn setup(n_opponents: usize) -> &'static Setup {
    static CACHE: OnceLock<Mutex<HashMap<usize, &'static Setup>>> = OnceLock::new();
    let mut cache = CACHE.get_or_init(|| Mutex::new(HashMap::new())).lock().unwrap();
    cache.entry(n_opponents).or_insert_with(|| Box::leak(Box::new(build_setup(n_opponents))))
}

fn build_setup(n_opponents: usize) -> Setup {
    let (data, market) = common::world(21, 8, n_opponents);
    let mut data = data.clone(); // capacity building registers fake users
    let market = market.clone();
    let cap = build_ca_capacity(
        &mut data,
        &market.players[0],
        market.target_item,
        &CaCapacitySpec::promote(3),
    );
    let attacker = PlayerSetup {
        capacity: cap,
        objective: Objective::Comprehensive {
            audience: market.target_audience.clone(),
            target: market.target_item,
            competing: market.competing_items.clone(),
        },
    };
    let opponents: Vec<PlayerSetup> = (0..n_opponents)
        .map(|i| {
            let cap = build_ca_capacity(
                &mut data,
                &market.players[1 + i],
                market.target_item,
                &CaCapacitySpec::demote(2),
            );
            PlayerSetup {
                capacity: cap,
                objective: Objective::Demote {
                    audience: market.target_audience.clone(),
                    target: market.target_item,
                },
            }
        })
        .collect();
    let caps: Vec<_> =
        std::iter::once(&attacker.capacity).chain(opponents.iter().map(|o| &o.capacity)).collect();
    let planning = prepare_planning_data(&data, &caps);
    (planning, market, attacker, opponents)
}

fn cfg(iters: usize, hvp: HvpMode) -> PlannerConfig {
    PlannerConfig {
        mso: MsoConfig { iters, cg_iters: 3, hvp_mode: hvp, ..Default::default() },
        pds: msopds::recsys::pds::PdsConfig { inner_steps: 3, ..Default::default() },
    }
}

#[test]
fn exact_and_finite_diff_hvp_agree_on_the_full_game() {
    // The two second-order mechanisms must drive the planner to similar
    // importance vectors — a strong correctness check of double backward
    // through the unrolled surrogate.
    let (planning, _, attacker, opponents) = setup(1);
    let exact = plan_msopds(planning, attacker, opponents, &cfg(2, HvpMode::Exact));
    let fd = plan_msopds(planning, attacker, opponents, &cfg(2, HvpMode::FiniteDiff));
    let dot: f64 = exact.importance.iter().zip(&fd.importance).map(|(a, b)| a * b).sum();
    let na: f64 = exact.importance.iter().map(|a| a * a).sum::<f64>().sqrt();
    let nb: f64 = fd.importance.iter().map(|b| b * b).sum::<f64>().sqrt();
    assert!(na > 0.0 && nb > 0.0, "planners must move the importance vectors");
    let cosine = dot / (na * nb);
    assert!(cosine > 0.95, "exact vs finite-diff cosine similarity {cosine}");
}

#[test]
fn follower_descends_its_own_loss() {
    // Under eq. (9), the simulated opponent's loss should trend downward over
    // the outer iterations (the "pull" of Fig. 3).
    let (planning, _, attacker, opponents) = setup(1);
    let out = plan_msopds(planning, attacker, opponents, &cfg(6, HvpMode::Exact));
    let follower_losses: Vec<f64> = out.diagnostics.follower_loss.iter().map(|v| v[0]).collect();
    let first = follower_losses[0];
    let last = *follower_losses.last().unwrap();
    assert!(
        last <= first + 1e-6,
        "follower loss should not increase: {first} -> {last} ({follower_losses:?})"
    );
}

#[test]
fn n_opponent_reduction_matches_single_when_duplicated() {
    // eq. (14) with one follower must equal eq. (13); adding a second,
    // *identical* follower must change the correction (it is summed).
    let (planning, _, attacker, opponents) = setup(2);
    let one = plan_msopds(planning, attacker, &opponents[..1], &cfg(2, HvpMode::Exact));
    let two = plan_msopds(planning, attacker, opponents, &cfg(2, HvpMode::Exact));
    assert_eq!(one.opponent_importance.len(), 1);
    assert_eq!(two.opponent_importance.len(), 2);
    assert_ne!(
        one.importance, two.importance,
        "a second opponent must influence the attacker's plan"
    );
}

#[test]
fn eta_discipline_is_enforced_at_the_planner_level() {
    let (planning, _, attacker, opponents) = setup(1);
    let mut bad = cfg(1, HvpMode::Exact);
    bad.mso.eta_p = bad.mso.eta_q; // violates Theorem 3
    let result = std::panic::catch_unwind(|| plan_msopds(planning, attacker, opponents, &bad));
    assert!(result.is_err(), "η^p ≥ η^q must be rejected");
}
