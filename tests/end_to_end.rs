//! Cross-crate integration tests: full games, planner/game consistency, and
//! determinism of the whole pipeline.
//!
//! Worlds come from the shared [`common`] fixture cache, so the concurrently
//! running tests of this binary generate each `(Dataset, Market)` pair once
//! and read it immutably.

mod common;

use common::tiny_game_cfg;
use msopds::prelude::*;

fn setup(n_opponents: usize) -> &'static (Dataset, Market) {
    common::world(13, 5, n_opponents)
}

#[test]
fn full_pipeline_every_method_finishes() {
    let (data, market) = setup(1);
    let cfg = tiny_game_cfg();
    let methods = [
        AttackMethod::Baseline(Baseline::None),
        AttackMethod::Baseline(Baseline::Random),
        AttackMethod::Baseline(Baseline::Popular),
        AttackMethod::Baseline(Baseline::Pga),
        AttackMethod::Baseline(Baseline::SAttack),
        AttackMethod::Baseline(Baseline::RevAdv),
        AttackMethod::Baseline(Baseline::Trial),
        AttackMethod::Msopds(ActionToggles::all()),
        AttackMethod::Bopds(ActionToggles::all()),
    ];
    for method in methods {
        let out = run_game(data, market, method, &cfg);
        assert!(out.avg_rating.is_finite(), "{} produced a non-finite r̄", out.method);
        assert!((0.0..=1.0).contains(&out.hit_rate_at_3), "{} HR out of range", out.method);
        assert!(out.victim_rmse < 2.0, "{} victim failed to train", out.method);
    }
}

/// Plans once, then averages r̄ over several victim initializations.
///
/// At this test scale the dim-8 victim has multiple Adam convergence basins
/// (clean r̄ swings ±0.9 across inits, and the spread does not shrink with
/// more epochs), so a single retrain per world measures basin luck, not
/// attack effect. Averaging the *evaluation* over victim seeds washes that
/// out without re-running the expensive planning step.
fn mean_rbar_over_victim_inits(
    data: &Dataset,
    market: &Market,
    method: AttackMethod,
    cfg: &GameConfig,
    n_inits: u64,
) -> f64 {
    use msopds::gameplay::{play_world, score_world};
    let played = play_world(data, market, method, cfg);
    let mut acc = 0.0;
    for v in 0..n_inits {
        let scoring = GameConfig { seed: cfg.seed.wrapping_add(v * 7919), ..cfg.clone() };
        acc += score_world(&played.world, market, method, &scoring, &played).avg_rating;
    }
    acc / n_inits as f64
}

#[test]
fn msopds_poison_raises_target_rating() {
    // The headline direction of Table III: attacking must beat not attacking
    // under a single opponent, averaged over planning seeds and victim
    // initializations (see mean_rbar_over_victim_inits for why the latter).
    let mut lift = 0.0;
    for seed in [3u64, 4, 5] {
        let (data, market) = common::world(seed, seed, 1);
        let mut cfg = tiny_game_cfg();
        cfg.seed = seed;
        cfg.planner.mso.iters = 5;
        let clean = mean_rbar_over_victim_inits(
            data,
            market,
            AttackMethod::Baseline(Baseline::None),
            &cfg,
            5,
        );
        let attacked = mean_rbar_over_victim_inits(
            data,
            market,
            AttackMethod::Msopds(ActionToggles::all()),
            &cfg,
            5,
        );
        lift += attacked - clean;
    }
    assert!(lift / 3.0 > 0.1, "mean MSOPDS lift over 3 seeds was {}", lift / 3.0);
}

#[test]
fn planner_budget_invariants_hold_end_to_end() {
    use msopds::core::{
        build_ca_capacity, plan_msopds, prepare_planning_data, CaCapacitySpec, PlayerSetup,
    };
    let (data, market) = setup(1);
    let mut data = data.clone(); // capacity building registers fake users
    let spec = CaCapacitySpec::promote(4);
    let cap = build_ca_capacity(&mut data, &market.players[0], market.target_item, &spec);
    let expected_budget = cap.importance.total_budget();
    let attacker = PlayerSetup {
        capacity: cap,
        objective: Objective::Comprehensive {
            audience: market.target_audience.clone(),
            target: market.target_item,
            competing: market.competing_items.clone(),
        },
    };
    let opp_cap = build_ca_capacity(
        &mut data,
        &market.players[1],
        market.target_item,
        &CaCapacitySpec::demote(2),
    );
    let opponent = PlayerSetup {
        capacity: opp_cap,
        objective: Objective::Demote {
            audience: market.target_audience.clone(),
            target: market.target_item,
        },
    };
    let planning = prepare_planning_data(&data, &[&attacker.capacity, &opponent.capacity]);
    let mut cfg = PlannerConfig::default();
    cfg.mso.iters = 3;
    cfg.mso.cg_iters = 2;
    cfg.pds.inner_steps = 3;
    let out = plan_msopds(&planning, &attacker, &[opponent], &cfg);

    // Budget exactly respected and every selected action applies cleanly.
    assert_eq!(out.selected.len(), expected_budget);
    let poisoned = planning.apply_poison(&out.selected);
    assert!(poisoned.ratings.len() >= planning.ratings.len());
    // Diagnostics recorded for each outer iteration.
    assert_eq!(out.diagnostics.leader_loss.len(), 3);
    assert!(out.diagnostics.leader_grad_norm.iter().all(|g| g.is_finite()));
}

#[test]
fn whole_pipeline_is_deterministic_across_thread_counts() {
    // The kernel pool's contract: thread count changes latency, never bits.
    // Run the same game single-lane and with 4 lanes (thresholds dropped so
    // the parallel paths actually execute at this tiny scale) and require
    // identical output.
    use msopds::autograd::pool;
    let run = |threads: usize| {
        pool::configure_threads(threads);
        let (data, market) = setup(1);
        let cfg = GameConfig { kernel_threads: threads, ..tiny_game_cfg() };
        run_game(data, market, AttackMethod::Msopds(ActionToggles::all()), &cfg)
    };
    // Serialize against other pool-reconfiguring tests in this binary.
    let _pool = common::pool_guard();
    pool::set_parallel_thresholds(1, 1, 1);
    let a = run(1);
    let b = run(4);
    pool::set_parallel_thresholds(
        pool::DEFAULT_ELEMWISE_MIN,
        pool::DEFAULT_COPY_MIN,
        pool::DEFAULT_MATMUL_MIN,
    );
    pool::configure_threads(1);
    assert_eq!(a.avg_rating, b.avg_rating);
    assert_eq!(a.hit_rate_at_3, b.hit_rate_at_3);
    assert_eq!(a.attacker_actions, b.attacker_actions);
}

#[test]
fn gradient_reaches_every_action_category_through_full_stack() {
    use msopds::autograd::Tape;
    use msopds::core::{build_ca_capacity, CaCapacitySpec};
    use msopds::recdata::ActionKind;
    use msopds::recsys::losses::ca_loss;
    use msopds::recsys::pds::{build_pds, PdsConfig, PlayerInput};

    let (data, market) = setup(1);
    let mut data = data.clone(); // capacity building registers fake users
    let cap = build_ca_capacity(
        &mut data,
        &market.players[0],
        market.target_item,
        &CaCapacitySpec::promote(5),
    );
    let planning = data.apply_poison(&cap.fixed);
    let tape = Tape::new();
    let pds = build_pds(
        &tape,
        &planning,
        &[PlayerInput { candidates: &cap.importance.candidates, xhat: cap.importance.binarize() }],
        &PdsConfig { inner_steps: 3, ..Default::default() },
    );
    let loss = ca_loss(
        &pds.scores(),
        &market.target_audience,
        market.target_item,
        &market.competing_items,
    );
    let grad = tape.grad(loss, &[pds.xhats[0]]).remove(0);
    for kind in [ActionKind::Rating, ActionKind::SocialEdge, ActionKind::ItemEdge] {
        let mass: f64 = cap
            .importance
            .candidates
            .iter()
            .zip(grad.data())
            .filter(|(a, _)| a.kind() == kind)
            .map(|(_, g)| g.abs())
            .sum();
        assert!(mass > 0.0, "no gradient signal for {kind:?} candidates");
    }
}
