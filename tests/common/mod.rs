//! Shared lazily-built fixtures for the root integration suites.
//!
//! World generation plus market sampling is repeated by almost every
//! integration test, and the slowest ones retrain whole victims per test.
//! Caching the `(Dataset, Market)` pairs behind a process-wide map means each
//! world is generated exactly once per test binary regardless of how many
//! tests (running concurrently on the harness's thread pool) ask for it, and
//! every test sees the *same* immutable world — a test can no longer drift
//! because a sibling regenerated with a subtly different spec.
//!
//! Tests that mutate process-global kernel state (pool thread count or
//! parallelism thresholds) must hold [`pool_guard`] for their whole body so
//! they serialize against each other instead of racing.

#![allow(dead_code)] // each test binary uses a subset of the fixtures

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

use msopds::prelude::*;
use rand::SeedableRng;

/// The common integration-test scale (Ciao at ~1/24 of the paper's size).
pub const SCALE: f64 = 24.0;

type WorldKey = (u64, u64, usize);

/// A Ciao world plus sampled market, generated once per `(data_seed,
/// market_seed, n_opponents)` triple and shared (immutably) by every test in
/// the binary. Tests that need to mutate the dataset clone it.
pub fn world(data_seed: u64, market_seed: u64, n_opponents: usize) -> &'static (Dataset, Market) {
    static CACHE: OnceLock<Mutex<HashMap<WorldKey, &'static (Dataset, Market)>>> = OnceLock::new();
    let mut cache = CACHE.get_or_init(|| Mutex::new(HashMap::new())).lock().unwrap();
    cache.entry((data_seed, market_seed, n_opponents)).or_insert_with(|| {
        let data = DatasetSpec::ciao().scaled(SCALE).generate(data_seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(market_seed);
        let market =
            sample_market(&data, &DemographicsSpec::default().scaled(SCALE), n_opponents, &mut rng);
        Box::leak(Box::new((data, market)))
    })
}

/// Serializes tests that reconfigure the global kernel pool (thread count or
/// parallel thresholds). Hold the guard for the whole test body and restore
/// the defaults before dropping it.
pub fn pool_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    // A test that panicked while holding the guard has already failed; the
    // state it left behind is restored by the next holder anyway.
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The shared quick game configuration: a dim-8 victim with few planner
/// iterations, enough for directionally-correct games in seconds.
pub fn tiny_game_cfg() -> GameConfig {
    let mut cfg = GameConfig::at_scale(SCALE);
    cfg.victim.epochs = 30;
    cfg.victim.dim = 8;
    cfg.planner.mso.iters = 3;
    cfg.planner.mso.cg_iters = 2;
    cfg.planner.pds.inner_steps = 3;
    cfg.opponent_planner = cfg.planner;
    cfg
}
