//! Golden-trace regression suite: fixed-seed attack outcomes pinned to
//! committed JSON files.
//!
//! Every attack in the repertoire (MSOPDS and the §VI-A.5 baselines) is run
//! on one frozen world and its two paper metrics — HR@10 lift and prediction
//! shift of the target item — are compared against `tests/golden/<method>.json`
//! within an absolute tolerance of 1e-6. The whole pipeline is deterministic
//! and bit-identical across kernel backends and lane counts (the victim uses
//! attention convolution, which materializes identically under `Dense` and
//! `Sparse` GraphOps), so any drift beyond rounding is a behaviour change —
//! an optimisation that reorders floating-point math, a planner tweak, a
//! dataset-generator edit — and must be reviewed, not absorbed.
//!
//! To re-bless after an *intentional* change:
//!
//! ```text
//! MSOPDS_BLESS=1 cargo test --test golden_traces
//! ```
//!
//! then inspect the diff of `tests/golden/*.json` and commit it. See
//! `tests/README.md` for the policy.

mod common;

use std::path::PathBuf;

use msopds::prelude::*;
use msopds::recsys::metrics::{avg_predicted_rating, hit_rate_at_k};
use msopds::recsys::{HetRec, HetRecConfig};
use serde::{Deserialize, Serialize};

/// Absolute per-metric tolerance. The pipeline is bit-deterministic, so this
/// only has to absorb JSON round-off of the printed decimals.
const TOL: f64 = 1e-6;

/// Ranking depth for the golden hit-rate (HR@10 over a 15-item pool).
const K: usize = 10;

/// One attack's pinned outcome. Metrics are measured on a freshly retrained
/// victim exactly as `score_world` trains it; `clean_*` columns come from the
/// same victim config fitted on the unpoisoned world.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct GoldenTrace {
    method: String,
    attacker_actions: usize,
    opponent_actions: usize,
    clean_hr_at_10: f64,
    poisoned_hr_at_10: f64,
    hr_lift_at_10: f64,
    clean_avg_rating: f64,
    poisoned_avg_rating: f64,
    prediction_shift: f64,
}

fn bless() -> bool {
    std::env::var("MSOPDS_BLESS").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn golden_path(slug: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{slug}.json"))
}

/// The frozen world every golden trace runs on.
fn fixture() -> &'static (Dataset, Market) {
    common::world(13, 5, 1)
}

/// A deterministic 15-item ranking pool: the target plus its 14 nearest
/// competitors by raw average rating in the clean data (ascending distance,
/// item id as tiebreak). The sampled market's own competing pool can be as
/// small as 8 items at this scale — too shallow for a meaningful HR@10 — and
/// any broad pool pins the target (by construction the worst-rated item, it
/// sits around rank 150 of 159 on the clean victim) at the bottom for every
/// method. Ranking it against its own low-rated weight class keeps HR@10 in
/// the interior, where drift is actually visible.
fn competing_pool(data: &Dataset, target: usize) -> Vec<usize> {
    let target_mean = data.ratings.item_mean(target).expect("target is rated");
    let mut items: Vec<usize> =
        (0..data.n_items()).filter(|&i| i != target && data.ratings.item_degree(i) > 0).collect();
    items.sort_by(|&a, &b| {
        let da = (data.ratings.item_mean(a).unwrap() - target_mean).abs();
        let db = (data.ratings.item_mean(b).unwrap() - target_mean).abs();
        da.total_cmp(&db).then(a.cmp(&b))
    });
    items.truncate(14);
    items.push(target);
    items.sort_unstable();
    items
}

/// Trains the evaluation victim on `world` with the exact config
/// `score_world` uses (same derived seed), so golden metrics match what the
/// game reports.
fn eval_victim(world: &Dataset, cfg: &GameConfig) -> HetRec {
    let victim_cfg = HetRecConfig { seed: cfg.seed.wrapping_add(97), ..cfg.victim };
    let mut victim = HetRec::new(victim_cfg, world.n_users(), world.n_items());
    victim.fit(world);
    victim
}

/// The clean reference: the evaluation victim fitted on the unpoisoned
/// world, with its two metrics. Built once per test binary.
fn clean_reference() -> &'static (f64, f64) {
    use std::sync::OnceLock;
    static CLEAN: OnceLock<(f64, f64)> = OnceLock::new();
    CLEAN.get_or_init(|| {
        let (data, market) = fixture();
        let victim = eval_victim(data, &common::tiny_game_cfg());
        let pool = competing_pool(data, market.target_item);
        (
            hit_rate_at_k(&victim, &market.target_audience, market.target_item, &pool, K),
            avg_predicted_rating(&victim, &market.target_audience, market.target_item),
        )
    })
}

fn check(method: &str, field: &str, got: f64, want: f64) {
    assert!(
        (got - want).abs() <= TOL,
        "golden-trace drift for {method} / {field}: got {got:.12}, golden {want:.12} \
         (|Δ| = {:.3e} > tol {TOL:.0e}).\n\
         The pipeline is bit-deterministic, so this is a behaviour change. If it is\n\
         intentional, re-bless the goldens and commit the diff:\n\n    \
         MSOPDS_BLESS=1 cargo test --test golden_traces\n",
        (got - want).abs()
    );
}

/// Runs `method` on the frozen world, measures its trace, and either blesses
/// `tests/golden/<slug>.json` (`MSOPDS_BLESS=1`) or asserts against it.
fn run_trace(method: AttackMethod, slug: &str) {
    let (data, market) = fixture();
    let cfg = common::tiny_game_cfg();
    let pool = competing_pool(data, market.target_item);
    let &(clean_hr, clean_rbar) = clean_reference();

    let played = msopds::gameplay::play_world(data, market, method, &cfg);
    let victim = eval_victim(&played.world, &cfg);
    let hr = hit_rate_at_k(&victim, &market.target_audience, market.target_item, &pool, K);
    let rbar = avg_predicted_rating(&victim, &market.target_audience, market.target_item);

    let trace = GoldenTrace {
        method: method.name(),
        attacker_actions: played.attacker_actions,
        opponent_actions: played.opponent_actions,
        clean_hr_at_10: clean_hr,
        poisoned_hr_at_10: hr,
        hr_lift_at_10: hr - clean_hr,
        clean_avg_rating: clean_rbar,
        poisoned_avg_rating: rbar,
        prediction_shift: rbar - clean_rbar,
    };

    let path = golden_path(slug);
    if bless() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let json = serde_json::to_string_pretty(&trace).unwrap();
        std::fs::write(&path, json + "\n").unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }

    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}).\nGenerate it with:\n\n    \
             MSOPDS_BLESS=1 cargo test --test golden_traces\n",
            path.display()
        )
    });
    let want: GoldenTrace = serde_json::from_str(&raw)
        .unwrap_or_else(|e| panic!("unparseable golden file {}: {e:?}", path.display()));

    assert_eq!(trace.method, want.method, "method name changed for {slug}");
    assert_eq!(
        trace.attacker_actions, want.attacker_actions,
        "attacker action count changed for {slug} (golden {}, got {})",
        want.attacker_actions, trace.attacker_actions
    );
    assert_eq!(
        trace.opponent_actions, want.opponent_actions,
        "opponent action count changed for {slug}"
    );
    check(slug, "clean_hr_at_10", trace.clean_hr_at_10, want.clean_hr_at_10);
    check(slug, "poisoned_hr_at_10", trace.poisoned_hr_at_10, want.poisoned_hr_at_10);
    check(slug, "hr_lift_at_10", trace.hr_lift_at_10, want.hr_lift_at_10);
    check(slug, "clean_avg_rating", trace.clean_avg_rating, want.clean_avg_rating);
    check(slug, "poisoned_avg_rating", trace.poisoned_avg_rating, want.poisoned_avg_rating);
    check(slug, "prediction_shift", trace.prediction_shift, want.prediction_shift);
}

/// One detector pipeline's pinned outcome on the frozen flood world: exact
/// per-stage ban counts plus the §VI-A.6 metrics of the victim retrained on
/// the scrubbed world. Integer columns are compared exactly; float columns
/// within [`TOL`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DetectorGolden {
    spec: String,
    stages: Vec<String>,
    banned_per_stage: Vec<usize>,
    rounds_per_stage: Vec<usize>,
    total_banned: usize,
    poisoned_ratings: usize,
    scrubbed_ratings: usize,
    defended_hr_at_10: f64,
    defended_avg_rating: f64,
    hr_lift_at_10: f64,
    prediction_shift: f64,
}

/// The frozen detector fixture: the golden world plus a 6-account 5★ flood
/// cohort promoting the market's target item — fully deterministic (no RNG),
/// blatant enough that the degree and spectral stages fire.
fn flooded_fixture() -> &'static Dataset {
    use std::sync::OnceLock;
    static FLOODED: OnceLock<Dataset> = OnceLock::new();
    FLOODED.get_or_init(|| {
        let (data, market) = fixture();
        let mut poisoned = data.clone();
        let fakes = poisoned.add_fake_users(6);
        let mut actions = Vec::new();
        for &f in &fakes {
            actions.push(msopds::recdata::PoisonAction::Rating {
                user: f as u32,
                item: market.target_item as u32,
                value: 5.0,
            });
            for item in 0..40u32 {
                if item as usize != market.target_item {
                    actions.push(msopds::recdata::PoisonAction::Rating {
                        user: f as u32,
                        item,
                        value: 5.0,
                    });
                }
            }
        }
        poisoned.apply_poison(&actions)
    })
}

/// Runs detector pipeline `spec` on the flood fixture and pins its trace to
/// `tests/golden/detector_<slug>.json`.
fn run_detector_trace(spec: &str, slug: &str) {
    let (_, market) = fixture();
    let cfg = common::tiny_game_cfg();
    let world = flooded_fixture();
    let pool = competing_pool(&fixture().0, market.target_item);
    let &(clean_hr, clean_rbar) = clean_reference();

    let policy = msopds::gameplay::ShadowBanPolicy::from_spec(spec).expect("valid spec");
    let (scrubbed, reports) = policy.run(world);
    let victim = eval_victim(&scrubbed, &cfg);
    let hr = hit_rate_at_k(&victim, &market.target_audience, market.target_item, &pool, K);
    let rbar = avg_predicted_rating(&victim, &market.target_audience, market.target_item);

    let trace = DetectorGolden {
        spec: spec.to_string(),
        stages: reports.iter().map(|r| r.detector.clone()).collect(),
        banned_per_stage: reports.iter().map(|r| r.banned.len()).collect(),
        rounds_per_stage: reports.iter().map(|r| r.rounds).collect(),
        total_banned: reports.iter().map(|r| r.banned.len()).sum(),
        poisoned_ratings: world.ratings.len(),
        scrubbed_ratings: scrubbed.ratings.len(),
        defended_hr_at_10: hr,
        defended_avg_rating: rbar,
        hr_lift_at_10: hr - clean_hr,
        prediction_shift: rbar - clean_rbar,
    };

    let path = golden_path(&format!("detector_{slug}"));
    if bless() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let json = serde_json::to_string_pretty(&trace).unwrap();
        std::fs::write(&path, json + "\n").unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }

    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}).\nGenerate it with:\n\n    \
             MSOPDS_BLESS=1 cargo test --test golden_traces\n",
            path.display()
        )
    });
    let want: DetectorGolden = serde_json::from_str(&raw)
        .unwrap_or_else(|e| panic!("unparseable golden file {}: {e:?}", path.display()));

    assert_eq!(trace.spec, want.spec);
    assert_eq!(trace.stages, want.stages, "stage list changed for {slug}");
    assert_eq!(
        trace.banned_per_stage, want.banned_per_stage,
        "exact ban counts changed for {slug}"
    );
    assert_eq!(trace.rounds_per_stage, want.rounds_per_stage, "round counts changed for {slug}");
    assert_eq!(trace.total_banned, want.total_banned);
    assert_eq!(trace.poisoned_ratings, want.poisoned_ratings);
    assert_eq!(trace.scrubbed_ratings, want.scrubbed_ratings, "scrub size changed for {slug}");
    check(slug, "defended_hr_at_10", trace.defended_hr_at_10, want.defended_hr_at_10);
    check(slug, "defended_avg_rating", trace.defended_avg_rating, want.defended_avg_rating);
    check(slug, "hr_lift_at_10", trace.hr_lift_at_10, want.hr_lift_at_10);
    check(slug, "prediction_shift", trace.prediction_shift, want.prediction_shift);
}

#[test]
fn golden_msopds() {
    run_trace(AttackMethod::Msopds(ActionToggles::all()), "msopds");
}

#[test]
fn golden_pga() {
    run_trace(AttackMethod::Baseline(Baseline::Pga), "pga");
}

#[test]
fn golden_revadv() {
    run_trace(AttackMethod::Baseline(Baseline::RevAdv), "revadv");
}

#[test]
fn golden_s_attack() {
    run_trace(AttackMethod::Baseline(Baseline::SAttack), "s_attack");
}

#[test]
fn golden_popular_heuristic() {
    run_trace(AttackMethod::Baseline(Baseline::Popular), "popular");
}

#[test]
fn golden_influence() {
    run_trace(AttackMethod::Baseline(Baseline::Influence), "influence");
}

#[test]
fn golden_dl_attack() {
    run_trace(AttackMethod::Baseline(Baseline::DlAttack), "dl_attack");
}

#[test]
fn golden_detector_degree() {
    run_detector_trace("degree", "degree");
}

#[test]
fn golden_detector_distribution() {
    run_detector_trace("distribution", "distribution");
}

#[test]
fn golden_detector_chi2() {
    run_detector_trace("chi2", "chi2");
}

#[test]
fn golden_detector_spectral() {
    run_detector_trace("spectral", "spectral");
}

#[test]
fn golden_detector_composed() {
    run_detector_trace("composed", "composed");
}
