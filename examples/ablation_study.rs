//! Ablation study: which poisoning channels matter? (Figures 8 and 9.)
//!
//! Runs MSOPDS with subsets of its capacity — ratings only, ratings + item
//! edges, ratings + social edges, full — and separately compares hiring real
//! users against injecting fake accounts.
//!
//! ```text
//! cargo run --release --example ablation_study
//! ```

use msopds::prelude::*;
use rand::SeedableRng;

fn main() {
    let scale = 16.0;
    let data = DatasetSpec::epinions().scaled(scale).generate(5);
    println!("dataset: {}\n", data.summary());

    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let market = sample_market(&data, &DemographicsSpec::default().scaled(scale), 1, &mut rng);
    let cfg = GameConfig::at_scale(scale);

    println!("--- Fig. 8: poisoning-action categories (Epinions) ---");
    for (label, toggles) in [
        ("ratings only", ActionToggles::ratings_only()),
        ("ratings+item", ActionToggles::ratings_and_item()),
        ("ratings+user", ActionToggles::ratings_and_social()),
        ("full MSOPDS", ActionToggles::all()),
    ] {
        let out = run_game(&data, &market, AttackMethod::Msopds(toggles), &cfg);
        println!(
            "{:<14} r̄ = {:.3}  HR@3 = {:.3}  ({} actions)",
            label, out.avg_rating, out.hit_rate_at_3, out.attacker_actions
        );
    }

    println!("\n--- Fig. 9: real users vs fake accounts (item edges excluded) ---");
    for (label, toggles) in [
        ("MSOPDS-real", ActionToggles::real_only()),
        ("MSOPDS-fake", ActionToggles::fake_only()),
        ("MSOPDS", ActionToggles::no_item_edges()),
    ] {
        let out = run_game(&data, &market, AttackMethod::Msopds(toggles), &cfg);
        println!(
            "{:<14} r̄ = {:.3}  HR@3 = {:.3}  ({} actions)",
            label, out.avg_rating, out.hit_rate_at_3, out.attacker_actions
        );
    }

    println!(
        "\nThe full capacity dominates because rating poison moves the target's \
         baseline bias while graph edges re-route the convolution of eq. (15); \
         each channel alone only covers part of the score model."
    );
}
