//! Dataset tour: the synthetic Ciao / Epinions / LibraryThing equivalents.
//!
//! Prints each generated dataset's statistics next to the published numbers
//! from §VI-A.1 (at full scale the counts match by construction; the tour
//! generates at 1/16 scale and reports both).
//!
//! ```text
//! cargo run --release --example dataset_tour
//! ```

use msopds::het_graph::graph_stats;
use msopds::prelude::*;

fn main() {
    let published = [
        ("Ciao", DatasetSpec::ciao(), (2611, 3823, 44_453, 49_953)),
        ("Epinions", DatasetSpec::epinions(), (1929, 9962, 12_612, 41_270)),
        ("LibraryThing", DatasetSpec::library_thing(), (1108, 8583, 19_615, 14_508)),
    ];
    let scale = 16.0;

    for (name, spec, (users, items, ratings, links)) in published {
        let data = spec.scaled(scale).generate(1);
        let social = graph_stats(&data.social);
        let item = graph_stats(&data.item_graph);
        println!("=== {name} ===");
        println!("  paper (full) : {users} users, {items} items, {ratings} ratings, {links} links");
        println!(
            "  synth (1/{scale:.0}) : {} users, {} items, {} ratings, {} links",
            data.n_users(),
            data.n_items(),
            data.ratings.len(),
            data.social.num_edges()
        );
        println!(
            "  social graph : mean degree {:.2}, max degree {}, clustering {:.3}, {} components",
            social.mean_degree,
            social.max_degree,
            social.clustering,
            data.social.connected_components()
        );
        println!(
            "  item graph   : {} co-rating edges (overlap > 50 %), mean degree {:.2}",
            item.edges, item.mean_degree
        );
        println!(
            "  ratings      : global mean {:.2} stars, most-rated item has {} ratings",
            data.ratings.global_mean().unwrap_or(f64::NAN),
            data.ratings
                .items_by_popularity()
                .first()
                .map(|&i| data.ratings.item_degree(i))
                .unwrap_or(0)
        );
        // Rating histogram.
        let mut hist = [0usize; 5];
        for r in data.ratings.ratings() {
            hist[(r.value as usize).clamp(1, 5) - 1] += 1;
        }
        let total = data.ratings.len().max(1);
        print!("  star shares  : ");
        for (i, h) in hist.iter().enumerate() {
            print!("{}★ {:.0}%  ", i + 1, 100.0 * *h as f64 / total as f64);
        }
        println!("\n");
    }
    println!(
        "The generators plant a latent-factor model with genre clusters, a \
         preferential-attachment social network, and Zipf popularity — the \
         structure the poisoning attacks exploit (DESIGN.md §2)."
    );
}
