//! Inside the planner: Progressive Differentiable Surrogate gradients.
//!
//! Demonstrates the machinery of Algorithm 1 directly on the public API:
//! record a PDS training run, differentiate the CA loss with respect to the
//! binarized importance vector, inspect per-action-type gradient magnitudes,
//! and run the conjugate-gradient Stackelberg correction of step 9 by hand.
//!
//! ```text
//! cargo run --release --example surrogate_gradients
//! ```

use msopds::autograd::{conjugate_gradient, Tape, Tensor};
use msopds::core::{build_ca_capacity, CaCapacitySpec};
use msopds::prelude::*;
use msopds::recsys::losses::{ca_loss, demotion_loss};
use msopds::recsys::pds::{build_pds, PdsConfig, PlayerInput};
use rand::SeedableRng;

fn main() {
    let scale = 24.0;
    let mut data = DatasetSpec::ciao().scaled(scale).generate(2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let market = sample_market(&data, &DemographicsSpec::default().scaled(scale), 1, &mut rng);

    // Build the attacker's CA capacity (eq. 6) and the opponent's demotion
    // capacity; both inject their candidates into the surrogate.
    let atk = build_ca_capacity(
        &mut data,
        &market.players[0],
        market.target_item,
        &CaCapacitySpec::promote(5),
    );
    let opp = build_ca_capacity(
        &mut data,
        &market.players[1],
        market.target_item,
        &CaCapacitySpec::demote(2),
    );
    let planning = data.apply_poison(&atk.fixed);
    println!(
        "attacker capacity: {} candidates in {} budget groups (+{} fixed fake ratings)",
        atk.importance.len(),
        atk.importance.groups.len(),
        atk.fixed.len()
    );

    // Record one PDS training run with both players' binarized vectors.
    let tape = Tape::new();
    let pds = build_pds(
        &tape,
        &planning,
        &[
            PlayerInput { candidates: &atk.importance.candidates, xhat: atk.importance.binarize() },
            PlayerInput { candidates: &opp.importance.candidates, xhat: opp.importance.binarize() },
        ],
        &PdsConfig::default(),
    );
    println!(
        "PDS inner losses: {:?}",
        pds.inner_losses.iter().map(|l| (l * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    println!("tape holds {} nodes after the unrolled training run", tape.len());

    // First-order gradients of both objectives (Algorithm 1 step 8).
    let scores = pds.scores();
    let lp = ca_loss(&scores, &market.target_audience, market.target_item, &market.competing_items);
    let lq = demotion_loss(&scores, &market.target_audience, market.target_item);
    let gp = tape.grad(lp, &[pds.xhats[0]]).remove(0);
    let gq_var = tape.grad_vars(lq, &[pds.xhats[1]])[0];

    // Per-action-type gradient magnitudes for the attacker.
    let mut by_kind: std::collections::BTreeMap<&str, (f64, usize)> = Default::default();
    for (action, g) in atk.importance.candidates.iter().zip(gp.data()) {
        let entry = by_kind
            .entry(match action.kind() {
                msopds::recdata::ActionKind::Rating => "rating",
                msopds::recdata::ActionKind::SocialEdge => "social edge",
                msopds::recdata::ActionKind::ItemEdge => "item edge",
            })
            .or_insert((0.0, 0));
        entry.0 += g.abs();
        entry.1 += 1;
    }
    println!("\nmean |∂L^p/∂x̂| by action type:");
    for (kind, (sum, count)) in by_kind {
        println!("  {kind:<12} {:.3e}  ({count} candidates)", sum / count as f64);
    }

    // Stackelberg correction (step 9): solve ξ ∂²L^q/∂X̂^q² = ∂L^p/∂X̂^q via
    // CG over exact Hessian-vector products (double backward on the tape).
    let rhs = tape.grad(lp, &[pds.xhats[1]]).remove(0);
    let sol = conjugate_gradient(
        |v| {
            let vc = tape.constant(Tensor::from_vec(v.to_vec(), rhs.shape()));
            let gv = gq_var.mul(vc).sum();
            tape.grad(gv, &[pds.xhats[1]]).remove(0).to_vec()
        },
        rhs.data(),
        8,
        1e-6,
        1e-3,
    );
    println!(
        "\nCG solve for ξ: {} iterations, residual {:.3e}, converged = {}",
        sol.iterations, sol.residual, sol.converged
    );
    let xi = tape.constant(Tensor::from_vec(sol.x, rhs.shape()));
    let correction = tape.grad(gq_var.mul(xi).sum(), &[pds.xhats[0]]).remove(0);
    println!(
        "total-derivative correction norm ‖ξ·∂²L^q/∂X̂^p∂X̂^q‖ = {:.3e} (vs ‖∂L^p/∂X̂^p‖ = {:.3e})",
        correction.norm(),
        gp.norm()
    );
    println!("\nThese are exactly the quantities MSO consumes in eqs. (10) and (13).");
}
