//! Quickstart: generate a heterogeneous dataset, train the victim recommender,
//! plan an MSOPDS attack against one opponent, and measure its effect.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Set `MSOPDS_METRICS=1` to print a telemetry tree summary at the end, or
//! `MSOPDS_METRICS=metrics.json` to write the machine-readable report instead
//! (see `msopds::telemetry`).

use msopds::prelude::*;
use rand::SeedableRng;

fn main() {
    // 1. A synthetic heterogeneous dataset calibrated to Ciao's statistics,
    //    scaled down 16× for a fast demo.
    let scale = 16.0;
    let data = DatasetSpec::ciao().scaled(scale).generate(42);
    println!("dataset: {}", data.summary());

    // 2. Sample the market of §VI-A.2: a target audience, competing items,
    //    the attacker's target (the lowest-rated competitor) and per-player
    //    assets (customer base, company products).
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let market = sample_market(&data, &DemographicsSpec::default().scaled(scale), 1, &mut rng);
    println!(
        "market: target item {} (mean {:.2}), |TA| = {}, {} competitors",
        market.target_item,
        data.ratings.item_mean(market.target_item).unwrap_or(f64::NAN),
        market.target_audience.len(),
        market.competing_items.len()
    );

    // 3. Reference point: nobody attacks, but the opponent still demotes.
    let cfg = GameConfig::at_scale(scale);
    let clean = run_game(&data, &market, AttackMethod::Baseline(Baseline::None), &cfg);
    println!(
        "\nno attack      : r̄ = {:.3}, HR@3 = {:.3}  (victim RMSE {:.3})",
        clean.avg_rating, clean.hit_rate_at_3, clean.victim_rmse
    );

    // 4. MSOPDS: plan a Multiplayer Comprehensive Attack that anticipates the
    //    opponent's subsequent demotion, then let the game play out.
    let msopds = run_game(&data, &market, AttackMethod::Msopds(ActionToggles::all()), &cfg);
    println!(
        "MSOPDS (MCA)   : r̄ = {:.3}, HR@3 = {:.3}  ({} poison actions committed)",
        msopds.avg_rating, msopds.hit_rate_at_3, msopds.attacker_actions
    );

    // 5. A classic injection baseline for comparison.
    let random = run_game(&data, &market, AttackMethod::Baseline(Baseline::Random), &cfg);
    println!(
        "Random (IA)    : r̄ = {:.3}, HR@3 = {:.3}  ({} poison actions committed)",
        random.avg_rating, random.hit_rate_at_3, random.attacker_actions
    );

    println!(
        "\nMSOPDS lift over no-attack: {:+.3} stars; over Random: {:+.3} stars",
        msopds.avg_rating - clean.avg_rating,
        msopds.avg_rating - random.avg_rating
    );

    // 6. When MSOPDS_METRICS requested recording, emit the collected metrics
    //    (tree summary to stderr, or JSON to the requested path).
    msopds::telemetry::export(None);
}
