//! Marketplace war: the paper's Fig. 1 scenario, played out.
//!
//! A seller (the attacker) promotes his worst-rated product to a target
//! audience. A rival seller poisons *afterwards*, demoting that same product.
//! We compare three strategies for the first seller:
//!
//! * do nothing,
//! * plan greedily with BOPDS (Comprehensive Attack, oblivious to the rival),
//! * plan with MSOPDS (Multiplayer Comprehensive Attack, anticipating the
//!   rival's best response),
//!
//! and then escalate the number of rivals, reproducing the qualitative story
//! of Fig. 6: the oblivious plans decay fastest as opposition grows.
//!
//! ```text
//! cargo run --release --example marketplace_war
//! ```

use msopds::prelude::*;
use rand::SeedableRng;

fn main() {
    let scale = 24.0;
    let data = DatasetSpec::epinions().scaled(scale).generate(11);
    println!("dataset: {}", data.summary());

    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let market = sample_market(&data, &DemographicsSpec::default().scaled(scale), 4, &mut rng);
    println!(
        "the contested product: item {} (current mean rating {:.2})\n",
        market.target_item,
        data.ratings.item_mean(market.target_item).unwrap_or(f64::NAN)
    );

    println!("{:<10} {:>8} {:>8} {:>8}", "rivals", "none", "BOPDS", "MSOPDS");
    for rivals in [1usize, 2, 3] {
        // A lighter planner budget than the experiment harness — this is a demo.
        let mut cfg = GameConfig { n_opponents: rivals, ..GameConfig::at_scale(scale) };
        cfg.planner.mso.iters = 8;
        cfg.planner.mso.cg_iters = 4;
        cfg.opponent_planner.mso.iters = 5;
        let none = run_game(&data, &market, AttackMethod::Baseline(Baseline::None), &cfg);
        let bopds = run_game(&data, &market, AttackMethod::Bopds(ActionToggles::all()), &cfg);
        let msopds = run_game(&data, &market, AttackMethod::Msopds(ActionToggles::all()), &cfg);
        println!(
            "{:<10} {:>8.3} {:>8.3} {:>8.3}",
            rivals, none.avg_rating, bopds.avg_rating, msopds.avg_rating
        );
    }

    println!(
        "\nEach row is the product's average predicted rating over the target \
         audience after all rivals responded. MSOPDS plans survive opposition \
         best because the Stackelberg total derivative (eq. 13/14) prices in \
         the rivals' best responses."
    );
}
