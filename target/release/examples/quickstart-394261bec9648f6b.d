/root/repo/target/release/examples/quickstart-394261bec9648f6b.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-394261bec9648f6b: examples/quickstart.rs

examples/quickstart.rs:
