/root/repo/target/release/examples/_probe_lift-cbb4891b192a3a86.d: examples/_probe_lift.rs

/root/repo/target/release/examples/_probe_lift-cbb4891b192a3a86: examples/_probe_lift.rs

examples/_probe_lift.rs:
