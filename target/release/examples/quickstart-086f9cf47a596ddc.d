/root/repo/target/release/examples/quickstart-086f9cf47a596ddc.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-086f9cf47a596ddc: examples/quickstart.rs

examples/quickstart.rs:
