/root/repo/target/release/deps/msopds_het_graph-2474fb46ba8e3bfa.d: crates/het-graph/src/lib.rs crates/het-graph/src/csr.rs crates/het-graph/src/generate.rs crates/het-graph/src/item_graph.rs crates/het-graph/src/stats.rs

/root/repo/target/release/deps/libmsopds_het_graph-2474fb46ba8e3bfa.rlib: crates/het-graph/src/lib.rs crates/het-graph/src/csr.rs crates/het-graph/src/generate.rs crates/het-graph/src/item_graph.rs crates/het-graph/src/stats.rs

/root/repo/target/release/deps/libmsopds_het_graph-2474fb46ba8e3bfa.rmeta: crates/het-graph/src/lib.rs crates/het-graph/src/csr.rs crates/het-graph/src/generate.rs crates/het-graph/src/item_graph.rs crates/het-graph/src/stats.rs

crates/het-graph/src/lib.rs:
crates/het-graph/src/csr.rs:
crates/het-graph/src/generate.rs:
crates/het-graph/src/item_graph.rs:
crates/het-graph/src/stats.rs:
