/root/repo/target/release/deps/msopds_gameplay-3d588c2e4ab63eda.d: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/release/deps/libmsopds_gameplay-3d588c2e4ab63eda.rlib: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/release/deps/libmsopds_gameplay-3d588c2e4ab63eda.rmeta: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

crates/gameplay/src/lib.rs:
crates/gameplay/src/defense.rs:
crates/gameplay/src/game.rs:
