/root/repo/target/release/deps/kernels-5fc1b72a8ee1706b.d: crates/bench/benches/kernels.rs

/root/repo/target/release/deps/kernels-5fc1b72a8ee1706b: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:

# env-dep:CARGO_CRATE_NAME=kernels
