/root/repo/target/release/deps/msopds_telemetry-526842d27acd38ae.d: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libmsopds_telemetry-526842d27acd38ae.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libmsopds_telemetry-526842d27acd38ae.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counter.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/span.rs:
