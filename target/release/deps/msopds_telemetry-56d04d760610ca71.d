/root/repo/target/release/deps/msopds_telemetry-56d04d760610ca71.d: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libmsopds_telemetry-56d04d760610ca71.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libmsopds_telemetry-56d04d760610ca71.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counter.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/span.rs:
