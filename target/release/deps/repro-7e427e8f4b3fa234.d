/root/repo/target/release/deps/repro-7e427e8f4b3fa234.d: crates/xp/src/bin/repro.rs

/root/repo/target/release/deps/repro-7e427e8f4b3fa234: crates/xp/src/bin/repro.rs

crates/xp/src/bin/repro.rs:
