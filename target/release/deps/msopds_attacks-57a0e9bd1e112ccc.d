/root/repo/target/release/deps/msopds_attacks-57a0e9bd1e112ccc.d: crates/attacks/src/lib.rs crates/attacks/src/common.rs crates/attacks/src/heuristic.rs crates/attacks/src/pga.rs crates/attacks/src/registry.rs crates/attacks/src/rev_adv.rs crates/attacks/src/s_attack.rs crates/attacks/src/trial.rs

/root/repo/target/release/deps/libmsopds_attacks-57a0e9bd1e112ccc.rlib: crates/attacks/src/lib.rs crates/attacks/src/common.rs crates/attacks/src/heuristic.rs crates/attacks/src/pga.rs crates/attacks/src/registry.rs crates/attacks/src/rev_adv.rs crates/attacks/src/s_attack.rs crates/attacks/src/trial.rs

/root/repo/target/release/deps/libmsopds_attacks-57a0e9bd1e112ccc.rmeta: crates/attacks/src/lib.rs crates/attacks/src/common.rs crates/attacks/src/heuristic.rs crates/attacks/src/pga.rs crates/attacks/src/registry.rs crates/attacks/src/rev_adv.rs crates/attacks/src/s_attack.rs crates/attacks/src/trial.rs

crates/attacks/src/lib.rs:
crates/attacks/src/common.rs:
crates/attacks/src/heuristic.rs:
crates/attacks/src/pga.rs:
crates/attacks/src/registry.rs:
crates/attacks/src/rev_adv.rs:
crates/attacks/src/s_attack.rs:
crates/attacks/src/trial.rs:
