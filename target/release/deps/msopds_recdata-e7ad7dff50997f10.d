/root/repo/target/release/deps/msopds_recdata-e7ad7dff50997f10.d: crates/recdata/src/lib.rs crates/recdata/src/dataset.rs crates/recdata/src/demographics.rs crates/recdata/src/io.rs crates/recdata/src/poison.rs crates/recdata/src/ratings.rs crates/recdata/src/synth.rs

/root/repo/target/release/deps/libmsopds_recdata-e7ad7dff50997f10.rlib: crates/recdata/src/lib.rs crates/recdata/src/dataset.rs crates/recdata/src/demographics.rs crates/recdata/src/io.rs crates/recdata/src/poison.rs crates/recdata/src/ratings.rs crates/recdata/src/synth.rs

/root/repo/target/release/deps/libmsopds_recdata-e7ad7dff50997f10.rmeta: crates/recdata/src/lib.rs crates/recdata/src/dataset.rs crates/recdata/src/demographics.rs crates/recdata/src/io.rs crates/recdata/src/poison.rs crates/recdata/src/ratings.rs crates/recdata/src/synth.rs

crates/recdata/src/lib.rs:
crates/recdata/src/dataset.rs:
crates/recdata/src/demographics.rs:
crates/recdata/src/io.rs:
crates/recdata/src/poison.rs:
crates/recdata/src/ratings.rs:
crates/recdata/src/synth.rs:
