/root/repo/target/release/deps/msopds_gameplay-28fe7f34b6f952c1.d: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/release/deps/libmsopds_gameplay-28fe7f34b6f952c1.rlib: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/release/deps/libmsopds_gameplay-28fe7f34b6f952c1.rmeta: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

crates/gameplay/src/lib.rs:
crates/gameplay/src/defense.rs:
crates/gameplay/src/game.rs:
