/root/repo/target/release/deps/msopds_recsys-df7e571335316d80.d: crates/recsys/src/lib.rs crates/recsys/src/bias.rs crates/recsys/src/convolve.rs crates/recsys/src/hetrec.rs crates/recsys/src/losses.rs crates/recsys/src/metrics.rs crates/recsys/src/mf.rs crates/recsys/src/pds.rs

/root/repo/target/release/deps/libmsopds_recsys-df7e571335316d80.rlib: crates/recsys/src/lib.rs crates/recsys/src/bias.rs crates/recsys/src/convolve.rs crates/recsys/src/hetrec.rs crates/recsys/src/losses.rs crates/recsys/src/metrics.rs crates/recsys/src/mf.rs crates/recsys/src/pds.rs

/root/repo/target/release/deps/libmsopds_recsys-df7e571335316d80.rmeta: crates/recsys/src/lib.rs crates/recsys/src/bias.rs crates/recsys/src/convolve.rs crates/recsys/src/hetrec.rs crates/recsys/src/losses.rs crates/recsys/src/metrics.rs crates/recsys/src/mf.rs crates/recsys/src/pds.rs

crates/recsys/src/lib.rs:
crates/recsys/src/bias.rs:
crates/recsys/src/convolve.rs:
crates/recsys/src/hetrec.rs:
crates/recsys/src/losses.rs:
crates/recsys/src/metrics.rs:
crates/recsys/src/mf.rs:
crates/recsys/src/pds.rs:
