/root/repo/target/release/deps/msopds_core-64eb3d0d49e89dc1.d: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

/root/repo/target/release/deps/libmsopds_core-64eb3d0d49e89dc1.rlib: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

/root/repo/target/release/deps/libmsopds_core-64eb3d0d49e89dc1.rmeta: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

crates/core/src/lib.rs:
crates/core/src/capacity.rs:
crates/core/src/diagnostics.rs:
crates/core/src/mso.rs:
crates/core/src/msopds.rs:
crates/core/src/plan.rs:
