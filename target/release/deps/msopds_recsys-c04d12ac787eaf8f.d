/root/repo/target/release/deps/msopds_recsys-c04d12ac787eaf8f.d: crates/recsys/src/lib.rs crates/recsys/src/bias.rs crates/recsys/src/convolve.rs crates/recsys/src/hetrec.rs crates/recsys/src/losses.rs crates/recsys/src/metrics.rs crates/recsys/src/mf.rs crates/recsys/src/pds.rs

/root/repo/target/release/deps/libmsopds_recsys-c04d12ac787eaf8f.rlib: crates/recsys/src/lib.rs crates/recsys/src/bias.rs crates/recsys/src/convolve.rs crates/recsys/src/hetrec.rs crates/recsys/src/losses.rs crates/recsys/src/metrics.rs crates/recsys/src/mf.rs crates/recsys/src/pds.rs

/root/repo/target/release/deps/libmsopds_recsys-c04d12ac787eaf8f.rmeta: crates/recsys/src/lib.rs crates/recsys/src/bias.rs crates/recsys/src/convolve.rs crates/recsys/src/hetrec.rs crates/recsys/src/losses.rs crates/recsys/src/metrics.rs crates/recsys/src/mf.rs crates/recsys/src/pds.rs

crates/recsys/src/lib.rs:
crates/recsys/src/bias.rs:
crates/recsys/src/convolve.rs:
crates/recsys/src/hetrec.rs:
crates/recsys/src/losses.rs:
crates/recsys/src/metrics.rs:
crates/recsys/src/mf.rs:
crates/recsys/src/pds.rs:
