/root/repo/target/release/deps/msopds_gameplay-8ddb710c12d25bf3.d: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/release/deps/libmsopds_gameplay-8ddb710c12d25bf3.rlib: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/release/deps/libmsopds_gameplay-8ddb710c12d25bf3.rmeta: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

crates/gameplay/src/lib.rs:
crates/gameplay/src/defense.rs:
crates/gameplay/src/game.rs:
