/root/repo/target/release/deps/kernels-65031799fd6e7fcb.d: crates/bench/benches/kernels.rs

/root/repo/target/release/deps/kernels-65031799fd6e7fcb: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:

# env-dep:CARGO_CRATE_NAME=kernels
