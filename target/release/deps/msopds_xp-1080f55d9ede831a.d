/root/repo/target/release/deps/msopds_xp-1080f55d9ede831a.d: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/release/deps/libmsopds_xp-1080f55d9ede831a.rlib: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/release/deps/libmsopds_xp-1080f55d9ede831a.rmeta: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

crates/xp/src/lib.rs:
crates/xp/src/config.rs:
crates/xp/src/experiments.rs:
crates/xp/src/runner.rs:
