/root/repo/target/release/deps/msopds_recsys-fe0b6e2cbdaf2347.d: crates/recsys/src/lib.rs crates/recsys/src/bias.rs crates/recsys/src/convolve.rs crates/recsys/src/hetrec.rs crates/recsys/src/losses.rs crates/recsys/src/metrics.rs crates/recsys/src/mf.rs crates/recsys/src/pds.rs

/root/repo/target/release/deps/libmsopds_recsys-fe0b6e2cbdaf2347.rlib: crates/recsys/src/lib.rs crates/recsys/src/bias.rs crates/recsys/src/convolve.rs crates/recsys/src/hetrec.rs crates/recsys/src/losses.rs crates/recsys/src/metrics.rs crates/recsys/src/mf.rs crates/recsys/src/pds.rs

/root/repo/target/release/deps/libmsopds_recsys-fe0b6e2cbdaf2347.rmeta: crates/recsys/src/lib.rs crates/recsys/src/bias.rs crates/recsys/src/convolve.rs crates/recsys/src/hetrec.rs crates/recsys/src/losses.rs crates/recsys/src/metrics.rs crates/recsys/src/mf.rs crates/recsys/src/pds.rs

crates/recsys/src/lib.rs:
crates/recsys/src/bias.rs:
crates/recsys/src/convolve.rs:
crates/recsys/src/hetrec.rs:
crates/recsys/src/losses.rs:
crates/recsys/src/metrics.rs:
crates/recsys/src/mf.rs:
crates/recsys/src/pds.rs:
