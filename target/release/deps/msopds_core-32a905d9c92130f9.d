/root/repo/target/release/deps/msopds_core-32a905d9c92130f9.d: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

/root/repo/target/release/deps/libmsopds_core-32a905d9c92130f9.rlib: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

/root/repo/target/release/deps/libmsopds_core-32a905d9c92130f9.rmeta: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

crates/core/src/lib.rs:
crates/core/src/capacity.rs:
crates/core/src/diagnostics.rs:
crates/core/src/mso.rs:
crates/core/src/msopds.rs:
crates/core/src/plan.rs:
