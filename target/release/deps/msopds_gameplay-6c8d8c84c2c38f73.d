/root/repo/target/release/deps/msopds_gameplay-6c8d8c84c2c38f73.d: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/release/deps/libmsopds_gameplay-6c8d8c84c2c38f73.rlib: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/release/deps/libmsopds_gameplay-6c8d8c84c2c38f73.rmeta: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

crates/gameplay/src/lib.rs:
crates/gameplay/src/defense.rs:
crates/gameplay/src/game.rs:
