/root/repo/target/release/deps/msopds_bench-a0adbec5db6877a1.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmsopds_bench-a0adbec5db6877a1.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmsopds_bench-a0adbec5db6877a1.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
