/root/repo/target/release/deps/msopds-a5ab12945a0411d8.d: src/lib.rs

/root/repo/target/release/deps/libmsopds-a5ab12945a0411d8.rlib: src/lib.rs

/root/repo/target/release/deps/libmsopds-a5ab12945a0411d8.rmeta: src/lib.rs

src/lib.rs:
