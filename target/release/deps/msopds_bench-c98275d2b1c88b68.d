/root/repo/target/release/deps/msopds_bench-c98275d2b1c88b68.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmsopds_bench-c98275d2b1c88b68.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmsopds_bench-c98275d2b1c88b68.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
