/root/repo/target/release/deps/msopds-0d4689b88acad985.d: src/lib.rs

/root/repo/target/release/deps/libmsopds-0d4689b88acad985.rlib: src/lib.rs

/root/repo/target/release/deps/libmsopds-0d4689b88acad985.rmeta: src/lib.rs

src/lib.rs:
