/root/repo/target/release/deps/msopds_bench-536950a08b7aa6b2.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmsopds_bench-536950a08b7aa6b2.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmsopds_bench-536950a08b7aa6b2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
