/root/repo/target/release/deps/msopds_xp-97e4b393a823e5e0.d: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/release/deps/libmsopds_xp-97e4b393a823e5e0.rlib: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/release/deps/libmsopds_xp-97e4b393a823e5e0.rmeta: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

crates/xp/src/lib.rs:
crates/xp/src/config.rs:
crates/xp/src/experiments.rs:
crates/xp/src/runner.rs:
