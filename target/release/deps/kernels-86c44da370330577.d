/root/repo/target/release/deps/kernels-86c44da370330577.d: crates/bench/benches/kernels.rs

/root/repo/target/release/deps/kernels-86c44da370330577: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:

# env-dep:CARGO_CRATE_NAME=kernels
