/root/repo/target/release/deps/repro-74ab789b2deb7df7.d: crates/xp/src/bin/repro.rs

/root/repo/target/release/deps/repro-74ab789b2deb7df7: crates/xp/src/bin/repro.rs

crates/xp/src/bin/repro.rs:
