/root/repo/target/release/deps/msopds_xp-a075456dd9861877.d: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/release/deps/libmsopds_xp-a075456dd9861877.rlib: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/release/deps/libmsopds_xp-a075456dd9861877.rmeta: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

crates/xp/src/lib.rs:
crates/xp/src/config.rs:
crates/xp/src/experiments.rs:
crates/xp/src/runner.rs:
