/root/repo/target/release/deps/msopds_bench-9cdb335ba3d288c5.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmsopds_bench-9cdb335ba3d288c5.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmsopds_bench-9cdb335ba3d288c5.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
