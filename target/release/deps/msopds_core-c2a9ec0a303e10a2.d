/root/repo/target/release/deps/msopds_core-c2a9ec0a303e10a2.d: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

/root/repo/target/release/deps/libmsopds_core-c2a9ec0a303e10a2.rlib: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

/root/repo/target/release/deps/libmsopds_core-c2a9ec0a303e10a2.rmeta: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

crates/core/src/lib.rs:
crates/core/src/capacity.rs:
crates/core/src/diagnostics.rs:
crates/core/src/mso.rs:
crates/core/src/msopds.rs:
crates/core/src/plan.rs:
