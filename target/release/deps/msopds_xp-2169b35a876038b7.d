/root/repo/target/release/deps/msopds_xp-2169b35a876038b7.d: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/release/deps/libmsopds_xp-2169b35a876038b7.rlib: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/release/deps/libmsopds_xp-2169b35a876038b7.rmeta: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

crates/xp/src/lib.rs:
crates/xp/src/config.rs:
crates/xp/src/experiments.rs:
crates/xp/src/runner.rs:
