/root/repo/target/release/deps/msopds-87acc0b5565ed92e.d: src/lib.rs

/root/repo/target/release/deps/libmsopds-87acc0b5565ed92e.rlib: src/lib.rs

/root/repo/target/release/deps/libmsopds-87acc0b5565ed92e.rmeta: src/lib.rs

src/lib.rs:
