/root/repo/target/release/deps/kernels-2fc94502d0bd5c56.d: crates/bench/benches/kernels.rs

/root/repo/target/release/deps/kernels-2fc94502d0bd5c56: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:

# env-dep:CARGO_CRATE_NAME=kernels
