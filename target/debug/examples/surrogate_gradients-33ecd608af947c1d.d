/root/repo/target/debug/examples/surrogate_gradients-33ecd608af947c1d.d: examples/surrogate_gradients.rs Cargo.toml

/root/repo/target/debug/examples/libsurrogate_gradients-33ecd608af947c1d.rmeta: examples/surrogate_gradients.rs Cargo.toml

examples/surrogate_gradients.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
