/root/repo/target/debug/examples/surrogate_gradients-0ad83e31cd2aca11.d: examples/surrogate_gradients.rs

/root/repo/target/debug/examples/surrogate_gradients-0ad83e31cd2aca11: examples/surrogate_gradients.rs

examples/surrogate_gradients.rs:
