/root/repo/target/debug/examples/marketplace_war-fa47c5aa62687339.d: examples/marketplace_war.rs Cargo.toml

/root/repo/target/debug/examples/libmarketplace_war-fa47c5aa62687339.rmeta: examples/marketplace_war.rs Cargo.toml

examples/marketplace_war.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
