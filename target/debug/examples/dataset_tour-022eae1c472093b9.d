/root/repo/target/debug/examples/dataset_tour-022eae1c472093b9.d: examples/dataset_tour.rs

/root/repo/target/debug/examples/dataset_tour-022eae1c472093b9: examples/dataset_tour.rs

examples/dataset_tour.rs:
