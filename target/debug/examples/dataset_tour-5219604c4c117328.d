/root/repo/target/debug/examples/dataset_tour-5219604c4c117328.d: examples/dataset_tour.rs Cargo.toml

/root/repo/target/debug/examples/libdataset_tour-5219604c4c117328.rmeta: examples/dataset_tour.rs Cargo.toml

examples/dataset_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
