/root/repo/target/debug/examples/calibrate_victim-f56be2c2292370ef.d: crates/xp/examples/calibrate_victim.rs

/root/repo/target/debug/examples/calibrate_victim-f56be2c2292370ef: crates/xp/examples/calibrate_victim.rs

crates/xp/examples/calibrate_victim.rs:
