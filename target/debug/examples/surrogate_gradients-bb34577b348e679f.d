/root/repo/target/debug/examples/surrogate_gradients-bb34577b348e679f.d: examples/surrogate_gradients.rs Cargo.toml

/root/repo/target/debug/examples/libsurrogate_gradients-bb34577b348e679f.rmeta: examples/surrogate_gradients.rs Cargo.toml

examples/surrogate_gradients.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
