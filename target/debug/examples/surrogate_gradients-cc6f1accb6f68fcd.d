/root/repo/target/debug/examples/surrogate_gradients-cc6f1accb6f68fcd.d: examples/surrogate_gradients.rs

/root/repo/target/debug/examples/surrogate_gradients-cc6f1accb6f68fcd: examples/surrogate_gradients.rs

examples/surrogate_gradients.rs:
