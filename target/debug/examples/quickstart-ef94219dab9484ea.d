/root/repo/target/debug/examples/quickstart-ef94219dab9484ea.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ef94219dab9484ea: examples/quickstart.rs

examples/quickstart.rs:
