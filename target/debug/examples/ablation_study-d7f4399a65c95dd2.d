/root/repo/target/debug/examples/ablation_study-d7f4399a65c95dd2.d: examples/ablation_study.rs

/root/repo/target/debug/examples/ablation_study-d7f4399a65c95dd2: examples/ablation_study.rs

examples/ablation_study.rs:
