/root/repo/target/debug/examples/marketplace_war-c46be5491c7797f3.d: examples/marketplace_war.rs

/root/repo/target/debug/examples/marketplace_war-c46be5491c7797f3: examples/marketplace_war.rs

examples/marketplace_war.rs:
