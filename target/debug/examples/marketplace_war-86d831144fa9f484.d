/root/repo/target/debug/examples/marketplace_war-86d831144fa9f484.d: examples/marketplace_war.rs

/root/repo/target/debug/examples/marketplace_war-86d831144fa9f484: examples/marketplace_war.rs

examples/marketplace_war.rs:
