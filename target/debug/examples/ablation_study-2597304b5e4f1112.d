/root/repo/target/debug/examples/ablation_study-2597304b5e4f1112.d: examples/ablation_study.rs

/root/repo/target/debug/examples/ablation_study-2597304b5e4f1112: examples/ablation_study.rs

examples/ablation_study.rs:
