/root/repo/target/debug/examples/calibrate_victim-406ed4324db2b627.d: crates/xp/examples/calibrate_victim.rs

/root/repo/target/debug/examples/calibrate_victim-406ed4324db2b627: crates/xp/examples/calibrate_victim.rs

crates/xp/examples/calibrate_victim.rs:
