/root/repo/target/debug/examples/quickstart-cb8174c2a30e97e5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-cb8174c2a30e97e5: examples/quickstart.rs

examples/quickstart.rs:
