/root/repo/target/debug/examples/marketplace_war-9817e089f691dd4d.d: examples/marketplace_war.rs

/root/repo/target/debug/examples/marketplace_war-9817e089f691dd4d: examples/marketplace_war.rs

examples/marketplace_war.rs:
