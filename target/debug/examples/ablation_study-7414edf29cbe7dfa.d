/root/repo/target/debug/examples/ablation_study-7414edf29cbe7dfa.d: examples/ablation_study.rs Cargo.toml

/root/repo/target/debug/examples/libablation_study-7414edf29cbe7dfa.rmeta: examples/ablation_study.rs Cargo.toml

examples/ablation_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
