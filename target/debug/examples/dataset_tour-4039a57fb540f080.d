/root/repo/target/debug/examples/dataset_tour-4039a57fb540f080.d: examples/dataset_tour.rs

/root/repo/target/debug/examples/dataset_tour-4039a57fb540f080: examples/dataset_tour.rs

examples/dataset_tour.rs:
