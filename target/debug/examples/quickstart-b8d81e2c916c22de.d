/root/repo/target/debug/examples/quickstart-b8d81e2c916c22de.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b8d81e2c916c22de: examples/quickstart.rs

examples/quickstart.rs:
