/root/repo/target/debug/examples/marketplace_war-6f488e6d79d5c494.d: examples/marketplace_war.rs Cargo.toml

/root/repo/target/debug/examples/libmarketplace_war-6f488e6d79d5c494.rmeta: examples/marketplace_war.rs Cargo.toml

examples/marketplace_war.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
