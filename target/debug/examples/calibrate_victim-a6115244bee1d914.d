/root/repo/target/debug/examples/calibrate_victim-a6115244bee1d914.d: crates/xp/examples/calibrate_victim.rs

/root/repo/target/debug/examples/calibrate_victim-a6115244bee1d914: crates/xp/examples/calibrate_victim.rs

crates/xp/examples/calibrate_victim.rs:
