/root/repo/target/debug/examples/dataset_tour-222f57d860f3fa36.d: examples/dataset_tour.rs

/root/repo/target/debug/examples/dataset_tour-222f57d860f3fa36: examples/dataset_tour.rs

examples/dataset_tour.rs:
