/root/repo/target/debug/examples/calibrate_victim-625d0a16cd76b639.d: crates/xp/examples/calibrate_victim.rs Cargo.toml

/root/repo/target/debug/examples/libcalibrate_victim-625d0a16cd76b639.rmeta: crates/xp/examples/calibrate_victim.rs Cargo.toml

crates/xp/examples/calibrate_victim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
