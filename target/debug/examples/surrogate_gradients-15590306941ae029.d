/root/repo/target/debug/examples/surrogate_gradients-15590306941ae029.d: examples/surrogate_gradients.rs

/root/repo/target/debug/examples/surrogate_gradients-15590306941ae029: examples/surrogate_gradients.rs

examples/surrogate_gradients.rs:
