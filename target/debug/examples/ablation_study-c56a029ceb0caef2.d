/root/repo/target/debug/examples/ablation_study-c56a029ceb0caef2.d: examples/ablation_study.rs

/root/repo/target/debug/examples/ablation_study-c56a029ceb0caef2: examples/ablation_study.rs

examples/ablation_study.rs:
