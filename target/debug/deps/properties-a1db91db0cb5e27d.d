/root/repo/target/debug/deps/properties-a1db91db0cb5e27d.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-a1db91db0cb5e27d: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
