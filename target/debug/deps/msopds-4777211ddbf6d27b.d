/root/repo/target/debug/deps/msopds-4777211ddbf6d27b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmsopds-4777211ddbf6d27b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
