/root/repo/target/debug/deps/repro-40ec505f3947bf30.d: crates/xp/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-40ec505f3947bf30.rmeta: crates/xp/src/bin/repro.rs Cargo.toml

crates/xp/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
