/root/repo/target/debug/deps/pds_gradients-7a78ce4756676b5f.d: crates/recsys/tests/pds_gradients.rs Cargo.toml

/root/repo/target/debug/deps/libpds_gradients-7a78ce4756676b5f.rmeta: crates/recsys/tests/pds_gradients.rs Cargo.toml

crates/recsys/tests/pds_gradients.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
