/root/repo/target/debug/deps/msopds_telemetry-55341e9b25b2df1f.d: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libmsopds_telemetry-55341e9b25b2df1f.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counter.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/span.rs:
