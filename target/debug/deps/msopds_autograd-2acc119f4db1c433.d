/root/repo/target/debug/deps/msopds_autograd-2acc119f4db1c433.d: crates/autograd/src/lib.rs crates/autograd/src/backward.rs crates/autograd/src/cg.rs crates/autograd/src/functional.rs crates/autograd/src/hvp.rs crates/autograd/src/ndiff.rs crates/autograd/src/optim.rs crates/autograd/src/pool.rs crates/autograd/src/tape.rs crates/autograd/src/tensor.rs crates/autograd/src/var.rs

/root/repo/target/debug/deps/libmsopds_autograd-2acc119f4db1c433.rmeta: crates/autograd/src/lib.rs crates/autograd/src/backward.rs crates/autograd/src/cg.rs crates/autograd/src/functional.rs crates/autograd/src/hvp.rs crates/autograd/src/ndiff.rs crates/autograd/src/optim.rs crates/autograd/src/pool.rs crates/autograd/src/tape.rs crates/autograd/src/tensor.rs crates/autograd/src/var.rs

crates/autograd/src/lib.rs:
crates/autograd/src/backward.rs:
crates/autograd/src/cg.rs:
crates/autograd/src/functional.rs:
crates/autograd/src/hvp.rs:
crates/autograd/src/ndiff.rs:
crates/autograd/src/optim.rs:
crates/autograd/src/pool.rs:
crates/autograd/src/tape.rs:
crates/autograd/src/tensor.rs:
crates/autograd/src/var.rs:
