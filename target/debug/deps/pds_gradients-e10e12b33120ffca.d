/root/repo/target/debug/deps/pds_gradients-e10e12b33120ffca.d: crates/recsys/tests/pds_gradients.rs

/root/repo/target/debug/deps/libpds_gradients-e10e12b33120ffca.rmeta: crates/recsys/tests/pds_gradients.rs

crates/recsys/tests/pds_gradients.rs:
