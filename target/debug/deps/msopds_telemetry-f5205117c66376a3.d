/root/repo/target/debug/deps/msopds_telemetry-f5205117c66376a3.d: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libmsopds_telemetry-f5205117c66376a3.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/counter.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
