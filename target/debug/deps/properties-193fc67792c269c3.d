/root/repo/target/debug/deps/properties-193fc67792c269c3.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-193fc67792c269c3: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
