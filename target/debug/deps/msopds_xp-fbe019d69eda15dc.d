/root/repo/target/debug/deps/msopds_xp-fbe019d69eda15dc.d: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/debug/deps/libmsopds_xp-fbe019d69eda15dc.rlib: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/debug/deps/libmsopds_xp-fbe019d69eda15dc.rmeta: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

crates/xp/src/lib.rs:
crates/xp/src/config.rs:
crates/xp/src/experiments.rs:
crates/xp/src/runner.rs:
