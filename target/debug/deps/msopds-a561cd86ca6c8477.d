/root/repo/target/debug/deps/msopds-a561cd86ca6c8477.d: src/lib.rs

/root/repo/target/debug/deps/libmsopds-a561cd86ca6c8477.rlib: src/lib.rs

/root/repo/target/debug/deps/libmsopds-a561cd86ca6c8477.rmeta: src/lib.rs

src/lib.rs:
