/root/repo/target/debug/deps/properties-07f67debfc9204a0.d: crates/recdata/tests/properties.rs

/root/repo/target/debug/deps/libproperties-07f67debfc9204a0.rmeta: crates/recdata/tests/properties.rs

crates/recdata/tests/properties.rs:
