/root/repo/target/debug/deps/msopds_het_graph-c6cb8cc9f7b1aa4f.d: crates/het-graph/src/lib.rs crates/het-graph/src/csr.rs crates/het-graph/src/generate.rs crates/het-graph/src/item_graph.rs crates/het-graph/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmsopds_het_graph-c6cb8cc9f7b1aa4f.rmeta: crates/het-graph/src/lib.rs crates/het-graph/src/csr.rs crates/het-graph/src/generate.rs crates/het-graph/src/item_graph.rs crates/het-graph/src/stats.rs Cargo.toml

crates/het-graph/src/lib.rs:
crates/het-graph/src/csr.rs:
crates/het-graph/src/generate.rs:
crates/het-graph/src/item_graph.rs:
crates/het-graph/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
