/root/repo/target/debug/deps/properties-efb7e28cebe9d76a.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-efb7e28cebe9d76a.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
