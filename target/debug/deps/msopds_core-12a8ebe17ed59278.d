/root/repo/target/debug/deps/msopds_core-12a8ebe17ed59278.d: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

/root/repo/target/debug/deps/libmsopds_core-12a8ebe17ed59278.rmeta: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

crates/core/src/lib.rs:
crates/core/src/capacity.rs:
crates/core/src/diagnostics.rs:
crates/core/src/mso.rs:
crates/core/src/msopds.rs:
crates/core/src/plan.rs:
