/root/repo/target/debug/deps/end_to_end-2f89102fa861a448.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-2f89102fa861a448: tests/end_to_end.rs

tests/end_to_end.rs:
