/root/repo/target/debug/deps/properties-00b0daf059167d93.d: crates/het-graph/tests/properties.rs

/root/repo/target/debug/deps/properties-00b0daf059167d93: crates/het-graph/tests/properties.rs

crates/het-graph/tests/properties.rs:
