/root/repo/target/debug/deps/parallel-c06664a441ded3de.d: crates/autograd/tests/parallel.rs Cargo.toml

/root/repo/target/debug/deps/libparallel-c06664a441ded3de.rmeta: crates/autograd/tests/parallel.rs Cargo.toml

crates/autograd/tests/parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
