/root/repo/target/debug/deps/msopds_gameplay-ebad85773a44d1a9.d: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/debug/deps/msopds_gameplay-ebad85773a44d1a9: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

crates/gameplay/src/lib.rs:
crates/gameplay/src/defense.rs:
crates/gameplay/src/game.rs:
