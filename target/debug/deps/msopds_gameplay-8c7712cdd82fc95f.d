/root/repo/target/debug/deps/msopds_gameplay-8c7712cdd82fc95f.d: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/debug/deps/libmsopds_gameplay-8c7712cdd82fc95f.rlib: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/debug/deps/libmsopds_gameplay-8c7712cdd82fc95f.rmeta: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

crates/gameplay/src/lib.rs:
crates/gameplay/src/defense.rs:
crates/gameplay/src/game.rs:
