/root/repo/target/debug/deps/msopds_xp-058d7c10ebc6d495.d: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/debug/deps/msopds_xp-058d7c10ebc6d495: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

crates/xp/src/lib.rs:
crates/xp/src/config.rs:
crates/xp/src/experiments.rs:
crates/xp/src/runner.rs:
