/root/repo/target/debug/deps/msopds_bench-961448d382047d01.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmsopds_bench-961448d382047d01.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmsopds_bench-961448d382047d01.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
