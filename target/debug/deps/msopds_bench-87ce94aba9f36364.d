/root/repo/target/debug/deps/msopds_bench-87ce94aba9f36364.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmsopds_bench-87ce94aba9f36364.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmsopds_bench-87ce94aba9f36364.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
