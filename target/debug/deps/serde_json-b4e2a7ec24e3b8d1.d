/root/repo/target/debug/deps/serde_json-b4e2a7ec24e3b8d1.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-b4e2a7ec24e3b8d1.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
