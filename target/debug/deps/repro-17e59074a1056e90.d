/root/repo/target/debug/deps/repro-17e59074a1056e90.d: crates/xp/src/bin/repro.rs

/root/repo/target/debug/deps/repro-17e59074a1056e90: crates/xp/src/bin/repro.rs

crates/xp/src/bin/repro.rs:
