/root/repo/target/debug/deps/pds_gradients-ee29d6637131742d.d: crates/recsys/tests/pds_gradients.rs

/root/repo/target/debug/deps/pds_gradients-ee29d6637131742d: crates/recsys/tests/pds_gradients.rs

crates/recsys/tests/pds_gradients.rs:
