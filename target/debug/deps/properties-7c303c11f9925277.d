/root/repo/target/debug/deps/properties-7c303c11f9925277.d: crates/autograd/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-7c303c11f9925277.rmeta: crates/autograd/tests/properties.rs Cargo.toml

crates/autograd/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
