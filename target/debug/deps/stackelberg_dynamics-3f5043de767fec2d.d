/root/repo/target/debug/deps/stackelberg_dynamics-3f5043de767fec2d.d: tests/stackelberg_dynamics.rs

/root/repo/target/debug/deps/libstackelberg_dynamics-3f5043de767fec2d.rmeta: tests/stackelberg_dynamics.rs

tests/stackelberg_dynamics.rs:
