/root/repo/target/debug/deps/msopds_core-dd7a03d335905b1a.d: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

/root/repo/target/debug/deps/libmsopds_core-dd7a03d335905b1a.rlib: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

/root/repo/target/debug/deps/libmsopds_core-dd7a03d335905b1a.rmeta: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

crates/core/src/lib.rs:
crates/core/src/capacity.rs:
crates/core/src/diagnostics.rs:
crates/core/src/mso.rs:
crates/core/src/msopds.rs:
crates/core/src/plan.rs:
