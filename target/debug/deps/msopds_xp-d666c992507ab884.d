/root/repo/target/debug/deps/msopds_xp-d666c992507ab884.d: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/debug/deps/libmsopds_xp-d666c992507ab884.rlib: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/debug/deps/libmsopds_xp-d666c992507ab884.rmeta: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

crates/xp/src/lib.rs:
crates/xp/src/config.rs:
crates/xp/src/experiments.rs:
crates/xp/src/runner.rs:
