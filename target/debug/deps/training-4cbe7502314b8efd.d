/root/repo/target/debug/deps/training-4cbe7502314b8efd.d: crates/bench/benches/training.rs

/root/repo/target/debug/deps/training-4cbe7502314b8efd: crates/bench/benches/training.rs

crates/bench/benches/training.rs:

# env-dep:CARGO_CRATE_NAME=training
