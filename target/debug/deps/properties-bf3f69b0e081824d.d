/root/repo/target/debug/deps/properties-bf3f69b0e081824d.d: crates/het-graph/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-bf3f69b0e081824d.rmeta: crates/het-graph/tests/properties.rs Cargo.toml

crates/het-graph/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
