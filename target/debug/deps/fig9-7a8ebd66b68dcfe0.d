/root/repo/target/debug/deps/fig9-7a8ebd66b68dcfe0.d: crates/bench/benches/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-7a8ebd66b68dcfe0.rmeta: crates/bench/benches/fig9.rs Cargo.toml

crates/bench/benches/fig9.rs:
Cargo.toml:

# env-dep:CARGO_CRATE_NAME=fig9
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
