/root/repo/target/debug/deps/msopds_bench-46da6b1787994692.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmsopds_bench-46da6b1787994692.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmsopds_bench-46da6b1787994692.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
