/root/repo/target/debug/deps/msopds_xp-428785162d78098a.d: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/debug/deps/libmsopds_xp-428785162d78098a.rlib: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/debug/deps/libmsopds_xp-428785162d78098a.rmeta: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

crates/xp/src/lib.rs:
crates/xp/src/config.rs:
crates/xp/src/experiments.rs:
crates/xp/src/runner.rs:
