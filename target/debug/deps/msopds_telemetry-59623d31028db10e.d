/root/repo/target/debug/deps/msopds_telemetry-59623d31028db10e.d: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libmsopds_telemetry-59623d31028db10e.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libmsopds_telemetry-59623d31028db10e.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counter.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/span.rs:
