/root/repo/target/debug/deps/msopds_core-d6883e30156454ea.d: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

/root/repo/target/debug/deps/msopds_core-d6883e30156454ea: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

crates/core/src/lib.rs:
crates/core/src/capacity.rs:
crates/core/src/diagnostics.rs:
crates/core/src/mso.rs:
crates/core/src/msopds.rs:
crates/core/src/plan.rs:
