/root/repo/target/debug/deps/kernels-5e95ddc45e635041.d: crates/bench/benches/kernels.rs

/root/repo/target/debug/deps/kernels-5e95ddc45e635041: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:

# env-dep:CARGO_CRATE_NAME=kernels
