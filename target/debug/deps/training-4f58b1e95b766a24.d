/root/repo/target/debug/deps/training-4f58b1e95b766a24.d: crates/bench/benches/training.rs Cargo.toml

/root/repo/target/debug/deps/libtraining-4f58b1e95b766a24.rmeta: crates/bench/benches/training.rs Cargo.toml

crates/bench/benches/training.rs:
Cargo.toml:

# env-dep:CARGO_CRATE_NAME=training
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
