/root/repo/target/debug/deps/msopds-c50e3211f2824095.d: src/lib.rs

/root/repo/target/debug/deps/libmsopds-c50e3211f2824095.rmeta: src/lib.rs

src/lib.rs:
