/root/repo/target/debug/deps/parallel-2022cdd5ebfd9731.d: crates/autograd/tests/parallel.rs

/root/repo/target/debug/deps/libparallel-2022cdd5ebfd9731.rmeta: crates/autograd/tests/parallel.rs

crates/autograd/tests/parallel.rs:
