/root/repo/target/debug/deps/pds_gradients-9f76cab310b53ee4.d: crates/recsys/tests/pds_gradients.rs

/root/repo/target/debug/deps/pds_gradients-9f76cab310b53ee4: crates/recsys/tests/pds_gradients.rs

crates/recsys/tests/pds_gradients.rs:
