/root/repo/target/debug/deps/table3-a37af2f270a61c39.d: crates/bench/benches/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-a37af2f270a61c39.rmeta: crates/bench/benches/table3.rs Cargo.toml

crates/bench/benches/table3.rs:
Cargo.toml:

# env-dep:CARGO_CRATE_NAME=table3
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
