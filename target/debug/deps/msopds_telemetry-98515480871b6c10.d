/root/repo/target/debug/deps/msopds_telemetry-98515480871b6c10.d: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libmsopds_telemetry-98515480871b6c10.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counter.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/span.rs:
