/root/repo/target/debug/deps/kernels-94cdc299d584795f.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-94cdc299d584795f.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CARGO_CRATE_NAME=kernels
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
