/root/repo/target/debug/deps/msopds_gameplay-769e7410a55083b3.d: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/debug/deps/libmsopds_gameplay-769e7410a55083b3.rlib: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/debug/deps/libmsopds_gameplay-769e7410a55083b3.rmeta: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

crates/gameplay/src/lib.rs:
crates/gameplay/src/defense.rs:
crates/gameplay/src/game.rs:
