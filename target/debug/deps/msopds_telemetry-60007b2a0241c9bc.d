/root/repo/target/debug/deps/msopds_telemetry-60007b2a0241c9bc.d: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/msopds_telemetry-60007b2a0241c9bc: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counter.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/span.rs:
