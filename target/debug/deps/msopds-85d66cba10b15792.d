/root/repo/target/debug/deps/msopds-85d66cba10b15792.d: src/lib.rs

/root/repo/target/debug/deps/msopds-85d66cba10b15792: src/lib.rs

src/lib.rs:
