/root/repo/target/debug/deps/repro-81577e73ee34202d.d: crates/xp/src/bin/repro.rs

/root/repo/target/debug/deps/repro-81577e73ee34202d: crates/xp/src/bin/repro.rs

crates/xp/src/bin/repro.rs:
