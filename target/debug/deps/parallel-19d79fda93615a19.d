/root/repo/target/debug/deps/parallel-19d79fda93615a19.d: crates/autograd/tests/parallel.rs

/root/repo/target/debug/deps/parallel-19d79fda93615a19: crates/autograd/tests/parallel.rs

crates/autograd/tests/parallel.rs:
