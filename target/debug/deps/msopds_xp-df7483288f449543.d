/root/repo/target/debug/deps/msopds_xp-df7483288f449543.d: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libmsopds_xp-df7483288f449543.rmeta: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs Cargo.toml

crates/xp/src/lib.rs:
crates/xp/src/config.rs:
crates/xp/src/experiments.rs:
crates/xp/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
