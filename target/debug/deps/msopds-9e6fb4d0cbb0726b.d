/root/repo/target/debug/deps/msopds-9e6fb4d0cbb0726b.d: src/lib.rs

/root/repo/target/debug/deps/libmsopds-9e6fb4d0cbb0726b.rlib: src/lib.rs

/root/repo/target/debug/deps/libmsopds-9e6fb4d0cbb0726b.rmeta: src/lib.rs

src/lib.rs:
