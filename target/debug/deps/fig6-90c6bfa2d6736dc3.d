/root/repo/target/debug/deps/fig6-90c6bfa2d6736dc3.d: crates/bench/benches/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-90c6bfa2d6736dc3.rmeta: crates/bench/benches/fig6.rs Cargo.toml

crates/bench/benches/fig6.rs:
Cargo.toml:

# env-dep:CARGO_CRATE_NAME=fig6
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
