/root/repo/target/debug/deps/msopds_gameplay-04f52876238632b6.d: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/debug/deps/msopds_gameplay-04f52876238632b6: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

crates/gameplay/src/lib.rs:
crates/gameplay/src/defense.rs:
crates/gameplay/src/game.rs:
