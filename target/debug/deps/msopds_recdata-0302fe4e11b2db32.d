/root/repo/target/debug/deps/msopds_recdata-0302fe4e11b2db32.d: crates/recdata/src/lib.rs crates/recdata/src/dataset.rs crates/recdata/src/demographics.rs crates/recdata/src/io.rs crates/recdata/src/poison.rs crates/recdata/src/ratings.rs crates/recdata/src/synth.rs

/root/repo/target/debug/deps/libmsopds_recdata-0302fe4e11b2db32.rmeta: crates/recdata/src/lib.rs crates/recdata/src/dataset.rs crates/recdata/src/demographics.rs crates/recdata/src/io.rs crates/recdata/src/poison.rs crates/recdata/src/ratings.rs crates/recdata/src/synth.rs

crates/recdata/src/lib.rs:
crates/recdata/src/dataset.rs:
crates/recdata/src/demographics.rs:
crates/recdata/src/io.rs:
crates/recdata/src/poison.rs:
crates/recdata/src/ratings.rs:
crates/recdata/src/synth.rs:
