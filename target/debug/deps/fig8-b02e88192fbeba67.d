/root/repo/target/debug/deps/fig8-b02e88192fbeba67.d: crates/bench/benches/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-b02e88192fbeba67.rmeta: crates/bench/benches/fig8.rs Cargo.toml

crates/bench/benches/fig8.rs:
Cargo.toml:

# env-dep:CARGO_CRATE_NAME=fig8
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
