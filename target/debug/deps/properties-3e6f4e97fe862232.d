/root/repo/target/debug/deps/properties-3e6f4e97fe862232.d: crates/autograd/tests/properties.rs

/root/repo/target/debug/deps/properties-3e6f4e97fe862232: crates/autograd/tests/properties.rs

crates/autograd/tests/properties.rs:
