/root/repo/target/debug/deps/msopds_xp-e8f628681f613dae.d: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/debug/deps/libmsopds_xp-e8f628681f613dae.rlib: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/debug/deps/libmsopds_xp-e8f628681f613dae.rmeta: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

crates/xp/src/lib.rs:
crates/xp/src/config.rs:
crates/xp/src/experiments.rs:
crates/xp/src/runner.rs:
