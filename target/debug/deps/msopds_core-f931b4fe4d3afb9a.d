/root/repo/target/debug/deps/msopds_core-f931b4fe4d3afb9a.d: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

/root/repo/target/debug/deps/msopds_core-f931b4fe4d3afb9a: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

crates/core/src/lib.rs:
crates/core/src/capacity.rs:
crates/core/src/diagnostics.rs:
crates/core/src/mso.rs:
crates/core/src/msopds.rs:
crates/core/src/plan.rs:
