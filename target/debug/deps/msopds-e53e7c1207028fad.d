/root/repo/target/debug/deps/msopds-e53e7c1207028fad.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmsopds-e53e7c1207028fad.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
