/root/repo/target/debug/deps/msopds_gameplay-33f1b009050c3741.d: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs Cargo.toml

/root/repo/target/debug/deps/libmsopds_gameplay-33f1b009050c3741.rmeta: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs Cargo.toml

crates/gameplay/src/lib.rs:
crates/gameplay/src/defense.rs:
crates/gameplay/src/game.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
