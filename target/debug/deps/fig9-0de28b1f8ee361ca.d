/root/repo/target/debug/deps/fig9-0de28b1f8ee361ca.d: crates/bench/benches/fig9.rs

/root/repo/target/debug/deps/fig9-0de28b1f8ee361ca: crates/bench/benches/fig9.rs

crates/bench/benches/fig9.rs:

# env-dep:CARGO_CRATE_NAME=fig9
