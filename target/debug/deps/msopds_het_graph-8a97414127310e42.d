/root/repo/target/debug/deps/msopds_het_graph-8a97414127310e42.d: crates/het-graph/src/lib.rs crates/het-graph/src/csr.rs crates/het-graph/src/generate.rs crates/het-graph/src/item_graph.rs crates/het-graph/src/stats.rs

/root/repo/target/debug/deps/msopds_het_graph-8a97414127310e42: crates/het-graph/src/lib.rs crates/het-graph/src/csr.rs crates/het-graph/src/generate.rs crates/het-graph/src/item_graph.rs crates/het-graph/src/stats.rs

crates/het-graph/src/lib.rs:
crates/het-graph/src/csr.rs:
crates/het-graph/src/generate.rs:
crates/het-graph/src/item_graph.rs:
crates/het-graph/src/stats.rs:
