/root/repo/target/debug/deps/msopds-a5113e12cdb92fbf.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmsopds-a5113e12cdb92fbf.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
