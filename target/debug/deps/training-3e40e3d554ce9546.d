/root/repo/target/debug/deps/training-3e40e3d554ce9546.d: crates/bench/benches/training.rs Cargo.toml

/root/repo/target/debug/deps/libtraining-3e40e3d554ce9546.rmeta: crates/bench/benches/training.rs Cargo.toml

crates/bench/benches/training.rs:
Cargo.toml:

# env-dep:CARGO_CRATE_NAME=training
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
