/root/repo/target/debug/deps/properties-8da0e5615a400439.d: crates/recdata/tests/properties.rs

/root/repo/target/debug/deps/properties-8da0e5615a400439: crates/recdata/tests/properties.rs

crates/recdata/tests/properties.rs:
