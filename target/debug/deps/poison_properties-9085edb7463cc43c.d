/root/repo/target/debug/deps/poison_properties-9085edb7463cc43c.d: crates/recdata/tests/poison_properties.rs

/root/repo/target/debug/deps/poison_properties-9085edb7463cc43c: crates/recdata/tests/poison_properties.rs

crates/recdata/tests/poison_properties.rs:
