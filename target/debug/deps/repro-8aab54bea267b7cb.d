/root/repo/target/debug/deps/repro-8aab54bea267b7cb.d: crates/xp/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-8aab54bea267b7cb.rmeta: crates/xp/src/bin/repro.rs

crates/xp/src/bin/repro.rs:
