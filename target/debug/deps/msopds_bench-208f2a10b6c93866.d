/root/repo/target/debug/deps/msopds_bench-208f2a10b6c93866.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/msopds_bench-208f2a10b6c93866: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
