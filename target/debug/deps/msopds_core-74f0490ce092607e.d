/root/repo/target/debug/deps/msopds_core-74f0490ce092607e.d: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

/root/repo/target/debug/deps/libmsopds_core-74f0490ce092607e.rlib: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

/root/repo/target/debug/deps/libmsopds_core-74f0490ce092607e.rmeta: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

crates/core/src/lib.rs:
crates/core/src/capacity.rs:
crates/core/src/diagnostics.rs:
crates/core/src/mso.rs:
crates/core/src/msopds.rs:
crates/core/src/plan.rs:
