/root/repo/target/debug/deps/telemetry_determinism-efd9bc4a85cf9c40.d: crates/gameplay/tests/telemetry_determinism.rs

/root/repo/target/debug/deps/libtelemetry_determinism-efd9bc4a85cf9c40.rmeta: crates/gameplay/tests/telemetry_determinism.rs

crates/gameplay/tests/telemetry_determinism.rs:
