/root/repo/target/debug/deps/msopds_recsys-5745b9b3eaaa80ea.d: crates/recsys/src/lib.rs crates/recsys/src/bias.rs crates/recsys/src/convolve.rs crates/recsys/src/hetrec.rs crates/recsys/src/losses.rs crates/recsys/src/metrics.rs crates/recsys/src/mf.rs crates/recsys/src/pds.rs Cargo.toml

/root/repo/target/debug/deps/libmsopds_recsys-5745b9b3eaaa80ea.rmeta: crates/recsys/src/lib.rs crates/recsys/src/bias.rs crates/recsys/src/convolve.rs crates/recsys/src/hetrec.rs crates/recsys/src/losses.rs crates/recsys/src/metrics.rs crates/recsys/src/mf.rs crates/recsys/src/pds.rs Cargo.toml

crates/recsys/src/lib.rs:
crates/recsys/src/bias.rs:
crates/recsys/src/convolve.rs:
crates/recsys/src/hetrec.rs:
crates/recsys/src/losses.rs:
crates/recsys/src/metrics.rs:
crates/recsys/src/mf.rs:
crates/recsys/src/pds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
