/root/repo/target/debug/deps/msopds_bench-f605433090e04ad8.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmsopds_bench-f605433090e04ad8.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
