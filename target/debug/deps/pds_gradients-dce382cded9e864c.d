/root/repo/target/debug/deps/pds_gradients-dce382cded9e864c.d: crates/recsys/tests/pds_gradients.rs

/root/repo/target/debug/deps/pds_gradients-dce382cded9e864c: crates/recsys/tests/pds_gradients.rs

crates/recsys/tests/pds_gradients.rs:
