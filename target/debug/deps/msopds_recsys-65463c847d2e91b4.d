/root/repo/target/debug/deps/msopds_recsys-65463c847d2e91b4.d: crates/recsys/src/lib.rs crates/recsys/src/bias.rs crates/recsys/src/convolve.rs crates/recsys/src/hetrec.rs crates/recsys/src/losses.rs crates/recsys/src/metrics.rs crates/recsys/src/mf.rs crates/recsys/src/pds.rs

/root/repo/target/debug/deps/libmsopds_recsys-65463c847d2e91b4.rlib: crates/recsys/src/lib.rs crates/recsys/src/bias.rs crates/recsys/src/convolve.rs crates/recsys/src/hetrec.rs crates/recsys/src/losses.rs crates/recsys/src/metrics.rs crates/recsys/src/mf.rs crates/recsys/src/pds.rs

/root/repo/target/debug/deps/libmsopds_recsys-65463c847d2e91b4.rmeta: crates/recsys/src/lib.rs crates/recsys/src/bias.rs crates/recsys/src/convolve.rs crates/recsys/src/hetrec.rs crates/recsys/src/losses.rs crates/recsys/src/metrics.rs crates/recsys/src/mf.rs crates/recsys/src/pds.rs

crates/recsys/src/lib.rs:
crates/recsys/src/bias.rs:
crates/recsys/src/convolve.rs:
crates/recsys/src/hetrec.rs:
crates/recsys/src/losses.rs:
crates/recsys/src/metrics.rs:
crates/recsys/src/mf.rs:
crates/recsys/src/pds.rs:
