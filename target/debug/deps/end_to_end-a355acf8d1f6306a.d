/root/repo/target/debug/deps/end_to_end-a355acf8d1f6306a.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a355acf8d1f6306a: tests/end_to_end.rs

tests/end_to_end.rs:
