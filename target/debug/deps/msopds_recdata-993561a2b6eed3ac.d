/root/repo/target/debug/deps/msopds_recdata-993561a2b6eed3ac.d: crates/recdata/src/lib.rs crates/recdata/src/dataset.rs crates/recdata/src/demographics.rs crates/recdata/src/io.rs crates/recdata/src/poison.rs crates/recdata/src/ratings.rs crates/recdata/src/synth.rs

/root/repo/target/debug/deps/libmsopds_recdata-993561a2b6eed3ac.rlib: crates/recdata/src/lib.rs crates/recdata/src/dataset.rs crates/recdata/src/demographics.rs crates/recdata/src/io.rs crates/recdata/src/poison.rs crates/recdata/src/ratings.rs crates/recdata/src/synth.rs

/root/repo/target/debug/deps/libmsopds_recdata-993561a2b6eed3ac.rmeta: crates/recdata/src/lib.rs crates/recdata/src/dataset.rs crates/recdata/src/demographics.rs crates/recdata/src/io.rs crates/recdata/src/poison.rs crates/recdata/src/ratings.rs crates/recdata/src/synth.rs

crates/recdata/src/lib.rs:
crates/recdata/src/dataset.rs:
crates/recdata/src/demographics.rs:
crates/recdata/src/io.rs:
crates/recdata/src/poison.rs:
crates/recdata/src/ratings.rs:
crates/recdata/src/synth.rs:
