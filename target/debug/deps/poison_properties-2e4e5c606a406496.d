/root/repo/target/debug/deps/poison_properties-2e4e5c606a406496.d: crates/recdata/tests/poison_properties.rs

/root/repo/target/debug/deps/libpoison_properties-2e4e5c606a406496.rmeta: crates/recdata/tests/poison_properties.rs

crates/recdata/tests/poison_properties.rs:
