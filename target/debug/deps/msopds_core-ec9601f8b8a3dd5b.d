/root/repo/target/debug/deps/msopds_core-ec9601f8b8a3dd5b.d: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

/root/repo/target/debug/deps/libmsopds_core-ec9601f8b8a3dd5b.rmeta: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

crates/core/src/lib.rs:
crates/core/src/capacity.rs:
crates/core/src/diagnostics.rs:
crates/core/src/mso.rs:
crates/core/src/msopds.rs:
crates/core/src/plan.rs:
