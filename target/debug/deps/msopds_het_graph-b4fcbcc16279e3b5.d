/root/repo/target/debug/deps/msopds_het_graph-b4fcbcc16279e3b5.d: crates/het-graph/src/lib.rs crates/het-graph/src/csr.rs crates/het-graph/src/generate.rs crates/het-graph/src/item_graph.rs crates/het-graph/src/stats.rs

/root/repo/target/debug/deps/libmsopds_het_graph-b4fcbcc16279e3b5.rmeta: crates/het-graph/src/lib.rs crates/het-graph/src/csr.rs crates/het-graph/src/generate.rs crates/het-graph/src/item_graph.rs crates/het-graph/src/stats.rs

crates/het-graph/src/lib.rs:
crates/het-graph/src/csr.rs:
crates/het-graph/src/generate.rs:
crates/het-graph/src/item_graph.rs:
crates/het-graph/src/stats.rs:
