/root/repo/target/debug/deps/fig8-0d3ebd0209d4cc65.d: crates/bench/benches/fig8.rs

/root/repo/target/debug/deps/fig8-0d3ebd0209d4cc65: crates/bench/benches/fig8.rs

crates/bench/benches/fig8.rs:

# env-dep:CARGO_CRATE_NAME=fig8
