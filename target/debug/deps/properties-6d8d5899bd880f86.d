/root/repo/target/debug/deps/properties-6d8d5899bd880f86.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/libproperties-6d8d5899bd880f86.rmeta: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
