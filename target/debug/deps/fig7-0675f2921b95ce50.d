/root/repo/target/debug/deps/fig7-0675f2921b95ce50.d: crates/bench/benches/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-0675f2921b95ce50.rmeta: crates/bench/benches/fig7.rs Cargo.toml

crates/bench/benches/fig7.rs:
Cargo.toml:

# env-dep:CARGO_CRATE_NAME=fig7
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
