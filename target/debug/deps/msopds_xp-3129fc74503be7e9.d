/root/repo/target/debug/deps/msopds_xp-3129fc74503be7e9.d: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/debug/deps/libmsopds_xp-3129fc74503be7e9.rmeta: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

crates/xp/src/lib.rs:
crates/xp/src/config.rs:
crates/xp/src/experiments.rs:
crates/xp/src/runner.rs:
