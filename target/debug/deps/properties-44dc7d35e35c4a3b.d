/root/repo/target/debug/deps/properties-44dc7d35e35c4a3b.d: crates/autograd/tests/properties.rs

/root/repo/target/debug/deps/libproperties-44dc7d35e35c4a3b.rmeta: crates/autograd/tests/properties.rs

crates/autograd/tests/properties.rs:
