/root/repo/target/debug/deps/telemetry_determinism-c2639742a90cff7a.d: crates/gameplay/tests/telemetry_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_determinism-c2639742a90cff7a.rmeta: crates/gameplay/tests/telemetry_determinism.rs Cargo.toml

crates/gameplay/tests/telemetry_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
