/root/repo/target/debug/deps/msopds_telemetry-297148956e815a3c.d: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/msopds_telemetry-297148956e815a3c: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counter.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/span.rs:
