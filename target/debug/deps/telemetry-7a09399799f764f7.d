/root/repo/target/debug/deps/telemetry-7a09399799f764f7.d: crates/telemetry/tests/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-7a09399799f764f7.rmeta: crates/telemetry/tests/telemetry.rs Cargo.toml

crates/telemetry/tests/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
