/root/repo/target/debug/deps/msopds_core-e3f0cb8ad5750162.d: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

/root/repo/target/debug/deps/libmsopds_core-e3f0cb8ad5750162.rlib: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

/root/repo/target/debug/deps/libmsopds_core-e3f0cb8ad5750162.rmeta: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

crates/core/src/lib.rs:
crates/core/src/capacity.rs:
crates/core/src/diagnostics.rs:
crates/core/src/mso.rs:
crates/core/src/msopds.rs:
crates/core/src/plan.rs:
