/root/repo/target/debug/deps/msopds-632a432bed80ddf4.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmsopds-632a432bed80ddf4.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
