/root/repo/target/debug/deps/msopds_recdata-16e869013ea4406d.d: crates/recdata/src/lib.rs crates/recdata/src/dataset.rs crates/recdata/src/demographics.rs crates/recdata/src/io.rs crates/recdata/src/poison.rs crates/recdata/src/ratings.rs crates/recdata/src/synth.rs Cargo.toml

/root/repo/target/debug/deps/libmsopds_recdata-16e869013ea4406d.rmeta: crates/recdata/src/lib.rs crates/recdata/src/dataset.rs crates/recdata/src/demographics.rs crates/recdata/src/io.rs crates/recdata/src/poison.rs crates/recdata/src/ratings.rs crates/recdata/src/synth.rs Cargo.toml

crates/recdata/src/lib.rs:
crates/recdata/src/dataset.rs:
crates/recdata/src/demographics.rs:
crates/recdata/src/io.rs:
crates/recdata/src/poison.rs:
crates/recdata/src/ratings.rs:
crates/recdata/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
