/root/repo/target/debug/deps/properties-048371deb67548b7.d: crates/autograd/tests/properties.rs

/root/repo/target/debug/deps/properties-048371deb67548b7: crates/autograd/tests/properties.rs

crates/autograd/tests/properties.rs:
