/root/repo/target/debug/deps/telemetry-6d7d702198e68fbe.d: crates/telemetry/tests/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-6d7d702198e68fbe.rmeta: crates/telemetry/tests/telemetry.rs Cargo.toml

crates/telemetry/tests/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
