/root/repo/target/debug/deps/serde_json-598115fa2c634334.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-598115fa2c634334.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
