/root/repo/target/debug/deps/msopds-855563e5230513ea.d: src/lib.rs

/root/repo/target/debug/deps/msopds-855563e5230513ea: src/lib.rs

src/lib.rs:
