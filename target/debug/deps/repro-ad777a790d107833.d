/root/repo/target/debug/deps/repro-ad777a790d107833.d: crates/xp/src/bin/repro.rs

/root/repo/target/debug/deps/repro-ad777a790d107833: crates/xp/src/bin/repro.rs

crates/xp/src/bin/repro.rs:
