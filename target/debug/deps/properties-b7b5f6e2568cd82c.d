/root/repo/target/debug/deps/properties-b7b5f6e2568cd82c.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-b7b5f6e2568cd82c.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
