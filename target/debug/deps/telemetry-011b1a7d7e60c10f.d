/root/repo/target/debug/deps/telemetry-011b1a7d7e60c10f.d: crates/telemetry/tests/telemetry.rs

/root/repo/target/debug/deps/libtelemetry-011b1a7d7e60c10f.rmeta: crates/telemetry/tests/telemetry.rs

crates/telemetry/tests/telemetry.rs:
