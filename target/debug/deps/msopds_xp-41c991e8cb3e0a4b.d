/root/repo/target/debug/deps/msopds_xp-41c991e8cb3e0a4b.d: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/debug/deps/libmsopds_xp-41c991e8cb3e0a4b.rlib: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/debug/deps/libmsopds_xp-41c991e8cb3e0a4b.rmeta: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

crates/xp/src/lib.rs:
crates/xp/src/config.rs:
crates/xp/src/experiments.rs:
crates/xp/src/runner.rs:
