/root/repo/target/debug/deps/msopds_bench-f21ff278342d9fa5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/msopds_bench-f21ff278342d9fa5: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
