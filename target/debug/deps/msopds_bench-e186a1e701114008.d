/root/repo/target/debug/deps/msopds_bench-e186a1e701114008.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmsopds_bench-e186a1e701114008.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
