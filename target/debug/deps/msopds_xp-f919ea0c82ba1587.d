/root/repo/target/debug/deps/msopds_xp-f919ea0c82ba1587.d: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/debug/deps/msopds_xp-f919ea0c82ba1587: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

crates/xp/src/lib.rs:
crates/xp/src/config.rs:
crates/xp/src/experiments.rs:
crates/xp/src/runner.rs:
