/root/repo/target/debug/deps/msopds_gameplay-d4aab1d28fed0e11.d: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/debug/deps/libmsopds_gameplay-d4aab1d28fed0e11.rlib: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/debug/deps/libmsopds_gameplay-d4aab1d28fed0e11.rmeta: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

crates/gameplay/src/lib.rs:
crates/gameplay/src/defense.rs:
crates/gameplay/src/game.rs:
