/root/repo/target/debug/deps/msopds_gameplay-9bd3bcb0096f60c7.d: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/debug/deps/libmsopds_gameplay-9bd3bcb0096f60c7.rmeta: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

crates/gameplay/src/lib.rs:
crates/gameplay/src/defense.rs:
crates/gameplay/src/game.rs:
