/root/repo/target/debug/deps/msopds-c3d6c44f7433911e.d: src/lib.rs

/root/repo/target/debug/deps/libmsopds-c3d6c44f7433911e.rlib: src/lib.rs

/root/repo/target/debug/deps/libmsopds-c3d6c44f7433911e.rmeta: src/lib.rs

src/lib.rs:
