/root/repo/target/debug/deps/msopds_bench-785359c960aed3d9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmsopds_bench-785359c960aed3d9.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmsopds_bench-785359c960aed3d9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
