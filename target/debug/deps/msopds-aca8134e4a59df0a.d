/root/repo/target/debug/deps/msopds-aca8134e4a59df0a.d: src/lib.rs

/root/repo/target/debug/deps/msopds-aca8134e4a59df0a: src/lib.rs

src/lib.rs:
