/root/repo/target/debug/deps/stackelberg_dynamics-9b1d8b5b48283f66.d: tests/stackelberg_dynamics.rs

/root/repo/target/debug/deps/stackelberg_dynamics-9b1d8b5b48283f66: tests/stackelberg_dynamics.rs

tests/stackelberg_dynamics.rs:
