/root/repo/target/debug/deps/msopds_attacks-fce4caab7659e946.d: crates/attacks/src/lib.rs crates/attacks/src/common.rs crates/attacks/src/heuristic.rs crates/attacks/src/pga.rs crates/attacks/src/registry.rs crates/attacks/src/rev_adv.rs crates/attacks/src/s_attack.rs crates/attacks/src/trial.rs

/root/repo/target/debug/deps/libmsopds_attacks-fce4caab7659e946.rmeta: crates/attacks/src/lib.rs crates/attacks/src/common.rs crates/attacks/src/heuristic.rs crates/attacks/src/pga.rs crates/attacks/src/registry.rs crates/attacks/src/rev_adv.rs crates/attacks/src/s_attack.rs crates/attacks/src/trial.rs

crates/attacks/src/lib.rs:
crates/attacks/src/common.rs:
crates/attacks/src/heuristic.rs:
crates/attacks/src/pga.rs:
crates/attacks/src/registry.rs:
crates/attacks/src/rev_adv.rs:
crates/attacks/src/s_attack.rs:
crates/attacks/src/trial.rs:
