/root/repo/target/debug/deps/msopds_core-d5d151b97395b248.d: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs Cargo.toml

/root/repo/target/debug/deps/libmsopds_core-d5d151b97395b248.rmeta: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/capacity.rs:
crates/core/src/diagnostics.rs:
crates/core/src/mso.rs:
crates/core/src/msopds.rs:
crates/core/src/plan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
