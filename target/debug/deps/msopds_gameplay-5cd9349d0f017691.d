/root/repo/target/debug/deps/msopds_gameplay-5cd9349d0f017691.d: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/debug/deps/libmsopds_gameplay-5cd9349d0f017691.rmeta: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

crates/gameplay/src/lib.rs:
crates/gameplay/src/defense.rs:
crates/gameplay/src/game.rs:
