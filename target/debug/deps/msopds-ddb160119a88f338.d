/root/repo/target/debug/deps/msopds-ddb160119a88f338.d: src/lib.rs

/root/repo/target/debug/deps/libmsopds-ddb160119a88f338.rlib: src/lib.rs

/root/repo/target/debug/deps/libmsopds-ddb160119a88f338.rmeta: src/lib.rs

src/lib.rs:
