/root/repo/target/debug/deps/telemetry-fbdf34d7096f734c.d: crates/telemetry/tests/telemetry.rs

/root/repo/target/debug/deps/telemetry-fbdf34d7096f734c: crates/telemetry/tests/telemetry.rs

crates/telemetry/tests/telemetry.rs:
