/root/repo/target/debug/deps/repro-0532e2ea54a05d23.d: crates/xp/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-0532e2ea54a05d23.rmeta: crates/xp/src/bin/repro.rs Cargo.toml

crates/xp/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
