/root/repo/target/debug/deps/end_to_end-ba1e73c7db0c7036.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ba1e73c7db0c7036: tests/end_to_end.rs

tests/end_to_end.rs:
