/root/repo/target/debug/deps/parallel-d3ecce179cdb8026.d: crates/autograd/tests/parallel.rs

/root/repo/target/debug/deps/parallel-d3ecce179cdb8026: crates/autograd/tests/parallel.rs

crates/autograd/tests/parallel.rs:
