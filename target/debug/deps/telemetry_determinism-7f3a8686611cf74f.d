/root/repo/target/debug/deps/telemetry_determinism-7f3a8686611cf74f.d: crates/gameplay/tests/telemetry_determinism.rs

/root/repo/target/debug/deps/telemetry_determinism-7f3a8686611cf74f: crates/gameplay/tests/telemetry_determinism.rs

crates/gameplay/tests/telemetry_determinism.rs:
