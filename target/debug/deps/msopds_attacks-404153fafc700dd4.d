/root/repo/target/debug/deps/msopds_attacks-404153fafc700dd4.d: crates/attacks/src/lib.rs crates/attacks/src/common.rs crates/attacks/src/heuristic.rs crates/attacks/src/pga.rs crates/attacks/src/registry.rs crates/attacks/src/rev_adv.rs crates/attacks/src/s_attack.rs crates/attacks/src/trial.rs

/root/repo/target/debug/deps/libmsopds_attacks-404153fafc700dd4.rmeta: crates/attacks/src/lib.rs crates/attacks/src/common.rs crates/attacks/src/heuristic.rs crates/attacks/src/pga.rs crates/attacks/src/registry.rs crates/attacks/src/rev_adv.rs crates/attacks/src/s_attack.rs crates/attacks/src/trial.rs

crates/attacks/src/lib.rs:
crates/attacks/src/common.rs:
crates/attacks/src/heuristic.rs:
crates/attacks/src/pga.rs:
crates/attacks/src/registry.rs:
crates/attacks/src/rev_adv.rs:
crates/attacks/src/s_attack.rs:
crates/attacks/src/trial.rs:
