/root/repo/target/debug/deps/repro-51fbdd24687d8ade.d: crates/xp/src/bin/repro.rs

/root/repo/target/debug/deps/repro-51fbdd24687d8ade: crates/xp/src/bin/repro.rs

crates/xp/src/bin/repro.rs:
