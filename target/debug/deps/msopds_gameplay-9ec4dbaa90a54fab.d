/root/repo/target/debug/deps/msopds_gameplay-9ec4dbaa90a54fab.d: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/debug/deps/libmsopds_gameplay-9ec4dbaa90a54fab.rlib: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/debug/deps/libmsopds_gameplay-9ec4dbaa90a54fab.rmeta: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

crates/gameplay/src/lib.rs:
crates/gameplay/src/defense.rs:
crates/gameplay/src/game.rs:
