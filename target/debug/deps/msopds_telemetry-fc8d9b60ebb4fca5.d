/root/repo/target/debug/deps/msopds_telemetry-fc8d9b60ebb4fca5.d: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libmsopds_telemetry-fc8d9b60ebb4fca5.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libmsopds_telemetry-fc8d9b60ebb4fca5.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counter.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/span.rs:
