/root/repo/target/debug/deps/msopds_xp-33b02bff6e3bea2b.d: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/debug/deps/msopds_xp-33b02bff6e3bea2b: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

crates/xp/src/lib.rs:
crates/xp/src/config.rs:
crates/xp/src/experiments.rs:
crates/xp/src/runner.rs:
