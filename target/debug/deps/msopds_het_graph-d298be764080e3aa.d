/root/repo/target/debug/deps/msopds_het_graph-d298be764080e3aa.d: crates/het-graph/src/lib.rs crates/het-graph/src/csr.rs crates/het-graph/src/generate.rs crates/het-graph/src/item_graph.rs crates/het-graph/src/stats.rs

/root/repo/target/debug/deps/libmsopds_het_graph-d298be764080e3aa.rlib: crates/het-graph/src/lib.rs crates/het-graph/src/csr.rs crates/het-graph/src/generate.rs crates/het-graph/src/item_graph.rs crates/het-graph/src/stats.rs

/root/repo/target/debug/deps/libmsopds_het_graph-d298be764080e3aa.rmeta: crates/het-graph/src/lib.rs crates/het-graph/src/csr.rs crates/het-graph/src/generate.rs crates/het-graph/src/item_graph.rs crates/het-graph/src/stats.rs

crates/het-graph/src/lib.rs:
crates/het-graph/src/csr.rs:
crates/het-graph/src/generate.rs:
crates/het-graph/src/item_graph.rs:
crates/het-graph/src/stats.rs:
