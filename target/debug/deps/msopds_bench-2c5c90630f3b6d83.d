/root/repo/target/debug/deps/msopds_bench-2c5c90630f3b6d83.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/msopds_bench-2c5c90630f3b6d83: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
