/root/repo/target/debug/deps/msopds_bench-24edc7ef663788b4.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmsopds_bench-24edc7ef663788b4.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmsopds_bench-24edc7ef663788b4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
