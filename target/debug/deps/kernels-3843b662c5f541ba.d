/root/repo/target/debug/deps/kernels-3843b662c5f541ba.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-3843b662c5f541ba.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CARGO_CRATE_NAME=kernels
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
