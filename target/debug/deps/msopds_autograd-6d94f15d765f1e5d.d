/root/repo/target/debug/deps/msopds_autograd-6d94f15d765f1e5d.d: crates/autograd/src/lib.rs crates/autograd/src/backward.rs crates/autograd/src/cg.rs crates/autograd/src/functional.rs crates/autograd/src/hvp.rs crates/autograd/src/ndiff.rs crates/autograd/src/optim.rs crates/autograd/src/pool.rs crates/autograd/src/tape.rs crates/autograd/src/tensor.rs crates/autograd/src/var.rs Cargo.toml

/root/repo/target/debug/deps/libmsopds_autograd-6d94f15d765f1e5d.rmeta: crates/autograd/src/lib.rs crates/autograd/src/backward.rs crates/autograd/src/cg.rs crates/autograd/src/functional.rs crates/autograd/src/hvp.rs crates/autograd/src/ndiff.rs crates/autograd/src/optim.rs crates/autograd/src/pool.rs crates/autograd/src/tape.rs crates/autograd/src/tensor.rs crates/autograd/src/var.rs Cargo.toml

crates/autograd/src/lib.rs:
crates/autograd/src/backward.rs:
crates/autograd/src/cg.rs:
crates/autograd/src/functional.rs:
crates/autograd/src/hvp.rs:
crates/autograd/src/ndiff.rs:
crates/autograd/src/optim.rs:
crates/autograd/src/pool.rs:
crates/autograd/src/tape.rs:
crates/autograd/src/tensor.rs:
crates/autograd/src/var.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
