/root/repo/target/debug/deps/properties-cda2a4276c196ea6.d: crates/het-graph/tests/properties.rs

/root/repo/target/debug/deps/libproperties-cda2a4276c196ea6.rmeta: crates/het-graph/tests/properties.rs

crates/het-graph/tests/properties.rs:
