/root/repo/target/debug/deps/msopds_telemetry-79de46c87454bb4d.d: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/msopds_telemetry-79de46c87454bb4d: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counter.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/span.rs:
