/root/repo/target/debug/deps/msopds-ff1864e8ca4fc5ad.d: src/lib.rs

/root/repo/target/debug/deps/libmsopds-ff1864e8ca4fc5ad.rmeta: src/lib.rs

src/lib.rs:
