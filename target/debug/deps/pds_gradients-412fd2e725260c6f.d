/root/repo/target/debug/deps/pds_gradients-412fd2e725260c6f.d: crates/recsys/tests/pds_gradients.rs Cargo.toml

/root/repo/target/debug/deps/libpds_gradients-412fd2e725260c6f.rmeta: crates/recsys/tests/pds_gradients.rs Cargo.toml

crates/recsys/tests/pds_gradients.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
