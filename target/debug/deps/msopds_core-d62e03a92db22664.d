/root/repo/target/debug/deps/msopds_core-d62e03a92db22664.d: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

/root/repo/target/debug/deps/msopds_core-d62e03a92db22664: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

crates/core/src/lib.rs:
crates/core/src/capacity.rs:
crates/core/src/diagnostics.rs:
crates/core/src/mso.rs:
crates/core/src/msopds.rs:
crates/core/src/plan.rs:
