/root/repo/target/debug/deps/msopds_gameplay-ffc5b91653b8d18d.d: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/debug/deps/msopds_gameplay-ffc5b91653b8d18d: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

crates/gameplay/src/lib.rs:
crates/gameplay/src/defense.rs:
crates/gameplay/src/game.rs:
