/root/repo/target/debug/deps/table3-19198f88c6ba6ad3.d: crates/bench/benches/table3.rs

/root/repo/target/debug/deps/table3-19198f88c6ba6ad3: crates/bench/benches/table3.rs

crates/bench/benches/table3.rs:

# env-dep:CARGO_CRATE_NAME=table3
