/root/repo/target/debug/deps/telemetry-b1fce874617137c0.d: crates/telemetry/tests/telemetry.rs

/root/repo/target/debug/deps/telemetry-b1fce874617137c0: crates/telemetry/tests/telemetry.rs

crates/telemetry/tests/telemetry.rs:
