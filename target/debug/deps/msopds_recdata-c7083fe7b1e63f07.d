/root/repo/target/debug/deps/msopds_recdata-c7083fe7b1e63f07.d: crates/recdata/src/lib.rs crates/recdata/src/dataset.rs crates/recdata/src/demographics.rs crates/recdata/src/io.rs crates/recdata/src/poison.rs crates/recdata/src/ratings.rs crates/recdata/src/synth.rs

/root/repo/target/debug/deps/libmsopds_recdata-c7083fe7b1e63f07.rmeta: crates/recdata/src/lib.rs crates/recdata/src/dataset.rs crates/recdata/src/demographics.rs crates/recdata/src/io.rs crates/recdata/src/poison.rs crates/recdata/src/ratings.rs crates/recdata/src/synth.rs

crates/recdata/src/lib.rs:
crates/recdata/src/dataset.rs:
crates/recdata/src/demographics.rs:
crates/recdata/src/io.rs:
crates/recdata/src/poison.rs:
crates/recdata/src/ratings.rs:
crates/recdata/src/synth.rs:
