/root/repo/target/debug/deps/msopds_xp-f791934984211b92.d: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

/root/repo/target/debug/deps/libmsopds_xp-f791934984211b92.rmeta: crates/xp/src/lib.rs crates/xp/src/config.rs crates/xp/src/experiments.rs crates/xp/src/runner.rs

crates/xp/src/lib.rs:
crates/xp/src/config.rs:
crates/xp/src/experiments.rs:
crates/xp/src/runner.rs:
