/root/repo/target/debug/deps/end_to_end-b3e06e7f89201339.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-b3e06e7f89201339.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
