/root/repo/target/debug/deps/msopds_het_graph-f0b3ecdf2c2205ac.d: crates/het-graph/src/lib.rs crates/het-graph/src/csr.rs crates/het-graph/src/generate.rs crates/het-graph/src/item_graph.rs crates/het-graph/src/stats.rs

/root/repo/target/debug/deps/libmsopds_het_graph-f0b3ecdf2c2205ac.rlib: crates/het-graph/src/lib.rs crates/het-graph/src/csr.rs crates/het-graph/src/generate.rs crates/het-graph/src/item_graph.rs crates/het-graph/src/stats.rs

/root/repo/target/debug/deps/libmsopds_het_graph-f0b3ecdf2c2205ac.rmeta: crates/het-graph/src/lib.rs crates/het-graph/src/csr.rs crates/het-graph/src/generate.rs crates/het-graph/src/item_graph.rs crates/het-graph/src/stats.rs

crates/het-graph/src/lib.rs:
crates/het-graph/src/csr.rs:
crates/het-graph/src/generate.rs:
crates/het-graph/src/item_graph.rs:
crates/het-graph/src/stats.rs:
