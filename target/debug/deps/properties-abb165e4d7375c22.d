/root/repo/target/debug/deps/properties-abb165e4d7375c22.d: crates/autograd/tests/properties.rs

/root/repo/target/debug/deps/properties-abb165e4d7375c22: crates/autograd/tests/properties.rs

crates/autograd/tests/properties.rs:
