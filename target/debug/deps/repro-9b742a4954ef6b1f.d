/root/repo/target/debug/deps/repro-9b742a4954ef6b1f.d: crates/xp/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-9b742a4954ef6b1f.rmeta: crates/xp/src/bin/repro.rs Cargo.toml

crates/xp/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
