/root/repo/target/debug/deps/msopds_recsys-2422ff7827fade24.d: crates/recsys/src/lib.rs crates/recsys/src/bias.rs crates/recsys/src/convolve.rs crates/recsys/src/hetrec.rs crates/recsys/src/losses.rs crates/recsys/src/metrics.rs crates/recsys/src/mf.rs crates/recsys/src/pds.rs

/root/repo/target/debug/deps/libmsopds_recsys-2422ff7827fade24.rmeta: crates/recsys/src/lib.rs crates/recsys/src/bias.rs crates/recsys/src/convolve.rs crates/recsys/src/hetrec.rs crates/recsys/src/losses.rs crates/recsys/src/metrics.rs crates/recsys/src/mf.rs crates/recsys/src/pds.rs

crates/recsys/src/lib.rs:
crates/recsys/src/bias.rs:
crates/recsys/src/convolve.rs:
crates/recsys/src/hetrec.rs:
crates/recsys/src/losses.rs:
crates/recsys/src/metrics.rs:
crates/recsys/src/mf.rs:
crates/recsys/src/pds.rs:
