/root/repo/target/debug/deps/fig7-fde3f68376dec1df.d: crates/bench/benches/fig7.rs

/root/repo/target/debug/deps/fig7-fde3f68376dec1df: crates/bench/benches/fig7.rs

crates/bench/benches/fig7.rs:

# env-dep:CARGO_CRATE_NAME=fig7
