/root/repo/target/debug/deps/fig6-6e2a53e5ed7ca2bf.d: crates/bench/benches/fig6.rs

/root/repo/target/debug/deps/fig6-6e2a53e5ed7ca2bf: crates/bench/benches/fig6.rs

crates/bench/benches/fig6.rs:

# env-dep:CARGO_CRATE_NAME=fig6
