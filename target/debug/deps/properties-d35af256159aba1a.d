/root/repo/target/debug/deps/properties-d35af256159aba1a.d: crates/recdata/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-d35af256159aba1a.rmeta: crates/recdata/tests/properties.rs Cargo.toml

crates/recdata/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
