/root/repo/target/debug/deps/repro-5c34a754695d5d53.d: crates/xp/src/bin/repro.rs

/root/repo/target/debug/deps/repro-5c34a754695d5d53: crates/xp/src/bin/repro.rs

crates/xp/src/bin/repro.rs:
