/root/repo/target/debug/deps/msopds_core-43e410ba9b51e67c.d: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

/root/repo/target/debug/deps/libmsopds_core-43e410ba9b51e67c.rlib: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

/root/repo/target/debug/deps/libmsopds_core-43e410ba9b51e67c.rmeta: crates/core/src/lib.rs crates/core/src/capacity.rs crates/core/src/diagnostics.rs crates/core/src/mso.rs crates/core/src/msopds.rs crates/core/src/plan.rs

crates/core/src/lib.rs:
crates/core/src/capacity.rs:
crates/core/src/diagnostics.rs:
crates/core/src/mso.rs:
crates/core/src/msopds.rs:
crates/core/src/plan.rs:
