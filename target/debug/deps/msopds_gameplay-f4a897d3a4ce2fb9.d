/root/repo/target/debug/deps/msopds_gameplay-f4a897d3a4ce2fb9.d: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/debug/deps/libmsopds_gameplay-f4a897d3a4ce2fb9.rlib: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

/root/repo/target/debug/deps/libmsopds_gameplay-f4a897d3a4ce2fb9.rmeta: crates/gameplay/src/lib.rs crates/gameplay/src/defense.rs crates/gameplay/src/game.rs

crates/gameplay/src/lib.rs:
crates/gameplay/src/defense.rs:
crates/gameplay/src/game.rs:
