/root/repo/target/debug/deps/msopds_attacks-2a64df64bb712423.d: crates/attacks/src/lib.rs crates/attacks/src/common.rs crates/attacks/src/heuristic.rs crates/attacks/src/pga.rs crates/attacks/src/registry.rs crates/attacks/src/rev_adv.rs crates/attacks/src/s_attack.rs crates/attacks/src/trial.rs Cargo.toml

/root/repo/target/debug/deps/libmsopds_attacks-2a64df64bb712423.rmeta: crates/attacks/src/lib.rs crates/attacks/src/common.rs crates/attacks/src/heuristic.rs crates/attacks/src/pga.rs crates/attacks/src/registry.rs crates/attacks/src/rev_adv.rs crates/attacks/src/s_attack.rs crates/attacks/src/trial.rs Cargo.toml

crates/attacks/src/lib.rs:
crates/attacks/src/common.rs:
crates/attacks/src/heuristic.rs:
crates/attacks/src/pga.rs:
crates/attacks/src/registry.rs:
crates/attacks/src/rev_adv.rs:
crates/attacks/src/s_attack.rs:
crates/attacks/src/trial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
