/root/repo/target/debug/deps/poison_properties-6bfed4fda7e6e77b.d: crates/recdata/tests/poison_properties.rs Cargo.toml

/root/repo/target/debug/deps/libpoison_properties-6bfed4fda7e6e77b.rmeta: crates/recdata/tests/poison_properties.rs Cargo.toml

crates/recdata/tests/poison_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
