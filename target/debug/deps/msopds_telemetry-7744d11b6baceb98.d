/root/repo/target/debug/deps/msopds_telemetry-7744d11b6baceb98.d: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/msopds_telemetry-7744d11b6baceb98: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counter.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/span.rs:
