/root/repo/target/debug/deps/stackelberg_dynamics-f50c57e3150c20be.d: tests/stackelberg_dynamics.rs Cargo.toml

/root/repo/target/debug/deps/libstackelberg_dynamics-f50c57e3150c20be.rmeta: tests/stackelberg_dynamics.rs Cargo.toml

tests/stackelberg_dynamics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
