/root/repo/target/debug/deps/msopds_het_graph-4f03cd9ff75d265b.d: crates/het-graph/src/lib.rs crates/het-graph/src/csr.rs crates/het-graph/src/generate.rs crates/het-graph/src/item_graph.rs crates/het-graph/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmsopds_het_graph-4f03cd9ff75d265b.rmeta: crates/het-graph/src/lib.rs crates/het-graph/src/csr.rs crates/het-graph/src/generate.rs crates/het-graph/src/item_graph.rs crates/het-graph/src/stats.rs Cargo.toml

crates/het-graph/src/lib.rs:
crates/het-graph/src/csr.rs:
crates/het-graph/src/generate.rs:
crates/het-graph/src/item_graph.rs:
crates/het-graph/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
