/root/repo/target/debug/deps/msopds_bench-2d78f02cdc88fcad.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmsopds_bench-2d78f02cdc88fcad.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
