/root/repo/target/debug/deps/properties-5a6027974f07aff5.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-5a6027974f07aff5: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
