/root/repo/target/debug/deps/stackelberg_dynamics-b61c1b1b8d873718.d: tests/stackelberg_dynamics.rs Cargo.toml

/root/repo/target/debug/deps/libstackelberg_dynamics-b61c1b1b8d873718.rmeta: tests/stackelberg_dynamics.rs Cargo.toml

tests/stackelberg_dynamics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
