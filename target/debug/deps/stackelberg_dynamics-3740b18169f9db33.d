/root/repo/target/debug/deps/stackelberg_dynamics-3740b18169f9db33.d: tests/stackelberg_dynamics.rs

/root/repo/target/debug/deps/stackelberg_dynamics-3740b18169f9db33: tests/stackelberg_dynamics.rs

tests/stackelberg_dynamics.rs:
