/root/repo/target/debug/deps/msopds_bench-c11bce138b88245f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmsopds_bench-c11bce138b88245f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
