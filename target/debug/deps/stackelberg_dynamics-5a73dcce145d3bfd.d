/root/repo/target/debug/deps/stackelberg_dynamics-5a73dcce145d3bfd.d: tests/stackelberg_dynamics.rs

/root/repo/target/debug/deps/stackelberg_dynamics-5a73dcce145d3bfd: tests/stackelberg_dynamics.rs

tests/stackelberg_dynamics.rs:
