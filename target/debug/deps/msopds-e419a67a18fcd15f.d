/root/repo/target/debug/deps/msopds-e419a67a18fcd15f.d: src/lib.rs

/root/repo/target/debug/deps/libmsopds-e419a67a18fcd15f.rlib: src/lib.rs

/root/repo/target/debug/deps/libmsopds-e419a67a18fcd15f.rmeta: src/lib.rs

src/lib.rs:
